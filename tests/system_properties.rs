//! System-level property tests: randomized fault injection must always
//! be detected and correctly attributed; randomized honest workloads
//! must always audit clean.
//!
//! Each proptest case spins up a full cluster, so case counts are kept
//! small.

use fides::core::behavior::Behavior;
use fides::core::system::{ClusterConfig, FidesCluster};
use fides::store::{Key, Value};
use proptest::prelude::*;

/// Which auditable fault to inject (protocol-time faults like
/// equivocation are covered by `crates/core/tests/fault_detection.rs`;
/// here we focus on audit-time detection).
#[derive(Debug, Clone, Copy)]
enum FaultKind {
    StaleRead,
    SkipWrite,
    CorruptStore,
    TamperLog,
    TruncateLog,
}

fn fault_strategy() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        Just(FaultKind::StaleRead),
        Just(FaultKind::SkipWrite),
        Just(FaultKind::CorruptStore),
        Just(FaultKind::TamperLog),
        Just(FaultKind::TruncateLog),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        max_shrink_iters: 0,
    })]

    /// For any fault kind, any faulty server and any target item, the
    /// audit detects the fault and attributes it to the right server —
    /// with no false accusations (the paper's two §3.3 guarantees).
    #[test]
    fn any_injected_fault_is_detected_and_attributed(
        fault in fault_strategy(),
        faulty_server in 0u32..3,
        item in 0usize..4,
        extra_txns in 2usize..5,
    ) {
        let target = Key::new(format!("s{faulty_server:03}:item-{item:06}"));
        let behavior = match fault {
            FaultKind::StaleRead => Behavior {
                stale_read_keys: vec![target.clone()],
                ..Behavior::default()
            },
            FaultKind::SkipWrite => Behavior {
                skip_write_keys: vec![target.clone()],
                ..Behavior::default()
            },
            FaultKind::CorruptStore => Behavior {
                corrupt_after_commit: Some((target.clone(), Value::from_i64(-999))),
                ..Behavior::default()
            },
            FaultKind::TamperLog => Behavior {
                tamper_log_at: Some(0),
                ..Behavior::default()
            },
            FaultKind::TruncateLog => Behavior {
                truncate_log_to: Some(1),
                ..Behavior::default()
            },
        };
        let cluster = FidesCluster::start(
            ClusterConfig::new(3)
                .items_per_shard(4)
                .behavior(faulty_server, behavior),
        );
        let mut client = cluster.client(0);

        // Touch the target twice (stale reads need a second access) and
        // run extra traffic so log faults have material to distort.
        for _ in 0..2 {
            let outcome = client.run_rmw(std::slice::from_ref(&target), 1).unwrap();
            prop_assert!(!outcome.is_anomaly());
        }
        for i in 0..extra_txns {
            let other = cluster.key_of((faulty_server + 1) % 3, i % 4);
            let outcome = client.run_rmw(&[other], 1).unwrap();
            prop_assert!(outcome.committed());
        }

        let report = cluster.audit();
        prop_assert!(!report.is_clean(), "fault {fault:?} went undetected");
        prop_assert!(
            !report.against_server(faulty_server).is_empty(),
            "fault {fault:?} not attributed to server {faulty_server}: {report}"
        );
        for s in 0..3 {
            if s != faulty_server {
                prop_assert!(
                    report.against_server(s).is_empty(),
                    "benign server {s} falsely accused under {fault:?}: {report}"
                );
            }
        }
        cluster.shutdown();
    }

    /// Honest clusters never produce violations, regardless of topology,
    /// batching or access pattern.
    #[test]
    fn honest_clusters_always_audit_clean(
        n_servers in 2u32..5,
        batch in 1usize..4,
        txns in 1usize..8,
        seed in any::<u64>(),
    ) {
        let cluster = FidesCluster::start(
            ClusterConfig::new(n_servers)
                .items_per_shard(8)
                .batch_size(batch),
        );
        let mut client = cluster.client(0);
        let mut committed = 0;
        for i in 0..txns {
            // A pseudo-random 2-key cross-shard transaction.
            let k1 = cluster.key_of((seed as u32 + i as u32) % n_servers, i % 8);
            let k2 = cluster.key_of((seed as u32 + 1 + i as u32) % n_servers, (i + 3) % 8);
            let keys = if k1 == k2 { vec![k1] } else { vec![k1, k2] };
            if client.run_rmw(&keys, 1).unwrap().committed() {
                committed += 1;
            }
        }
        cluster.flush();
        let report = cluster.audit();
        prop_assert!(report.is_clean(), "{report}");
        prop_assert!(report.blocks_replayed <= txns);
        prop_assert!(committed <= txns);
        cluster.shutdown();
    }
}
