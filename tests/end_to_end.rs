//! End-to-end integration: workload generation → client sessions →
//! TFCommit → tamper-proof log → audit, across every crate.

use std::time::Duration;

use fides::core::messages::CommitProtocol;
use fides::core::system::{ClusterConfig, FidesCluster};
use fides::workload::{WorkloadConfig, WorkloadGenerator};

/// Drives `total_txns` transactions from `n_clients` concurrent client
/// threads using the paper's workload shape. Returns (committed,
/// aborted, anomalies).
fn drive_workload(
    cluster: &FidesCluster,
    n_clients: u32,
    total_txns: usize,
    ops_per_txn: usize,
) -> (usize, usize, usize) {
    let config = cluster.config().clone();
    // One conflict-free window spanning the whole run: concurrent
    // clients interleave arbitrarily, so only full disjointness keeps
    // every interleaving conflict-free (the §4.6 "non-conflicting
    // transactions" batching assumption).
    let mut generator = WorkloadGenerator::new(
        WorkloadConfig::paper_default(config.n_servers, config.items_per_shard)
            .ops_per_txn(ops_per_txn)
            .conflict_free_window(total_txns),
        FidesCluster::key_name,
    );
    let per_client = total_txns / n_clients as usize;
    let mut handles = Vec::new();
    for c in 0..n_clients {
        let mut client = cluster.client(c);
        let specs: Vec<_> = generator.take_txns(per_client);
        handles.push(std::thread::spawn(move || {
            let mut counts = (0usize, 0usize, 0usize);
            for spec in specs {
                match client.run_rmw(&spec.keys, 1) {
                    Ok(outcome) if outcome.committed() => counts.0 += 1,
                    Ok(outcome) if outcome.is_anomaly() => counts.2 += 1,
                    Ok(_) => counts.1 += 1,
                    Err(_) => counts.1 += 1,
                }
            }
            counts
        }));
    }
    let mut total = (0, 0, 0);
    for h in handles {
        let (c, a, x) = h.join().unwrap();
        total.0 += c;
        total.1 += a;
        total.2 += x;
    }
    total
}

#[test]
fn tfcommit_workload_runs_clean() {
    let cluster = FidesCluster::start(
        ClusterConfig::new(4)
            .items_per_shard(128)
            .batch_size(8)
            .max_clients(16),
    );
    let (committed, _aborted, anomalies) = drive_workload(&cluster, 8, 64, 5);
    assert_eq!(anomalies, 0);
    assert!(committed >= 56, "most txns commit, got {committed}");
    cluster.flush();
    let report = cluster.audit();
    assert!(report.is_clean(), "{report}");
    assert!(report.blocks_replayed >= committed / 8);
    cluster.shutdown();
}

#[test]
fn twopc_workload_runs() {
    let cluster = FidesCluster::start(
        ClusterConfig::new(4)
            .items_per_shard(128)
            .batch_size(8)
            .max_clients(16)
            .protocol(CommitProtocol::TwoPhaseCommit),
    );
    let (committed, _aborted, anomalies) = drive_workload(&cluster, 8, 64, 5);
    assert_eq!(anomalies, 0);
    assert!(committed >= 56, "most txns commit, got {committed}");
    cluster.shutdown();
}

#[test]
fn mht_stats_accumulate_under_tfcommit_only() {
    // TFCommit performs Merkle maintenance; 2PC does not (§6.1: the MHT
    // updates are part of TFCommit's overhead).
    let tfc = FidesCluster::start(ClusterConfig::new(3).items_per_shard(128).max_clients(4));
    drive_workload(&tfc, 2, 10, 3);
    tfc.flush();
    tfc.settle(Duration::from_secs(2));
    let tfc_updates: u64 = tfc.mht_stats().iter().map(|s| s.leaf_updates).sum();
    assert!(tfc_updates > 0, "TFCommit must touch Merkle trees");
    tfc.shutdown();

    let twopc = FidesCluster::start(
        ClusterConfig::new(3)
            .items_per_shard(128)
            .max_clients(4)
            .protocol(CommitProtocol::TwoPhaseCommit),
    );
    drive_workload(&twopc, 2, 10, 3);
    twopc.flush();
    twopc.settle(Duration::from_secs(2));
    let twopc_updates: u64 = twopc.mht_stats().iter().map(|s| s.leaf_updates).sum();
    assert_eq!(twopc_updates, 0, "2PC must not touch Merkle trees");
    twopc.shutdown();
}

#[test]
fn network_counts_messages() {
    let cluster = FidesCluster::start(ClusterConfig::new(3).items_per_shard(8));
    let mut client = cluster.client(0);
    let key = cluster.key_of(0, 0);
    client.run_rmw(&[key], 1).unwrap();
    // Begin + read + write + end-txn + 4 protocol phases × 2 cohorts…
    assert!(cluster.network_stats().messages_sent() > 10);
    assert_eq!(cluster.network_stats().messages_dropped(), 0);
    cluster.shutdown();
}

#[test]
fn logs_identical_across_servers() {
    let cluster = FidesCluster::start(ClusterConfig::new(4).items_per_shard(16).max_clients(4));
    drive_workload(&cluster, 2, 12, 2);
    cluster.flush();
    cluster.settle(Duration::from_secs(2)).expect("converges");
    let reference: Vec<_> = cluster
        .server_state(0)
        .log()
        .iter()
        .map(|b| b.hash())
        .collect();
    assert!(!reference.is_empty());
    for s in 1..4 {
        let hashes: Vec<_> = cluster
            .server_state(s)
            .log()
            .iter()
            .map(|b| b.hash())
            .collect();
        assert_eq!(hashes, reference, "server {s} log diverges");
    }
    cluster.shutdown();
}

#[test]
fn multi_versioned_store_preserves_history() {
    let cluster = FidesCluster::start(ClusterConfig::new(2).items_per_shard(4));
    let mut client = cluster.client(0);
    let key = cluster.key_of(0, 0);
    for _ in 0..3 {
        assert!(client
            .run_rmw(std::slice::from_ref(&key), 10)
            .unwrap()
            .committed());
    }
    cluster.settle(Duration::from_secs(2));
    let state = cluster.server_state(0);
    state.with_shard(|shard| {
        // Initial version + 3 committed versions.
        assert_eq!(shard.store().version_count(&key), 4);
        // The latest value reflects all increments.
        assert_eq!(shard.read(&key).unwrap().value.as_i64(), Some(130));
    });
    cluster.shutdown();
}
