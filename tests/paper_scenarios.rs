//! Faithful re-creations of the paper's worked examples, with the
//! exact numbers from Figures 10 and 11.

use fides::core::audit::ViolationKind;
use fides::core::behavior::Behavior;
use fides::core::system::{ClusterConfig, FidesCluster};
use fides::store::{Key, Value};

/// Figure 10: T1 deducts $100 from accounts x ($1000) and y ($500);
/// T2 then deducts another $100 but observes a stale $1000 for x with
/// up-to-date timestamps. The auditor must flag the server storing x.
#[test]
fn figure_10_isolation_violation() {
    let x = Key::new("s001:item-000000"); // account x on server 1
    let cluster = FidesCluster::start(
        ClusterConfig::new(3)
            .items_per_shard(4)
            .initial_value(1000)
            .behavior(
                1,
                Behavior {
                    stale_read_keys: vec![x.clone()],
                    ..Behavior::default()
                },
            ),
    );
    let y = cluster.key_of(2, 0);
    let mut client = cluster.client(0);

    // Seed y with $500 (x keeps its initial $1000).
    {
        let mut txn = client.begin();
        client.write(&mut txn, &y, Value::from_i64(500)).unwrap();
        assert!(client.commit(txn).unwrap().committed());
    }

    // T1: x 1000 → 900, y 500 → 400.
    {
        let mut txn = client.begin();
        let vx = client.read(&mut txn, &x).unwrap();
        let vy = client.read(&mut txn, &y).unwrap();
        assert_eq!(vx.as_i64(), Some(1000));
        assert_eq!(vy.as_i64(), Some(500));
        client.write(&mut txn, &x, Value::from_i64(900)).unwrap();
        client.write(&mut txn, &y, Value::from_i64(400)).unwrap();
        assert!(client.commit(txn).unwrap().committed());
    }

    // T2: the malicious server serves x = $1000 again (stale) with
    // fresh timestamps, so the transaction commits.
    {
        let mut txn = client.begin();
        let vx = client.read(&mut txn, &x).unwrap();
        assert_eq!(vx.as_i64(), Some(1000), "server 1 serves the stale value");
        let vy = client.read(&mut txn, &y).unwrap();
        assert_eq!(vy.as_i64(), Some(400));
        client
            .write(&mut txn, &x, Value::from_i64(vx.as_i64().unwrap() - 100))
            .unwrap();
        client
            .write(&mut txn, &y, Value::from_i64(vy.as_i64().unwrap() - 100))
            .unwrap();
        assert!(client.commit(txn).unwrap().committed());
    }

    let report = cluster.audit();
    assert!(!report.is_clean());
    let against = report.against_server(1);
    let incorrect_read = against.iter().find_map(|v| match &v.kind {
        ViolationKind::IncorrectRead {
            key,
            expected,
            observed,
            ..
        } if *key == x => Some((expected.clone(), observed.clone())),
        _ => None,
    });
    let (expected, observed) = incorrect_read.expect("incorrect read on x flagged");
    assert_eq!(expected.as_i64(), Some(900), "log says x was $900");
    assert_eq!(observed.as_i64(), Some(1000), "server returned $1000");
    // Benign servers are not accused.
    assert!(report.against_server(0).is_empty());
    assert!(report.against_server(2).is_empty());
    cluster.shutdown();
}

/// Figure 11: server Sm commits a transaction writing x = 900 at
/// ts-100 but never updates its datastore. Auditing version ts reveals
/// that the verification object no longer matches the co-signed root —
/// at precisely the corrupted version.
#[test]
fn figure_11_data_corruption_version_pinpointed() {
    let x = Key::new("s001:item-000002");
    let cluster = FidesCluster::start(
        ClusterConfig::new(3)
            .items_per_shard(4)
            .initial_value(1000)
            .behavior(
                1,
                Behavior {
                    skip_write_keys: vec![x.clone()],
                    ..Behavior::default()
                },
            ),
    );
    let mut client = cluster.client(0);

    // A few unrelated committed blocks first, then the poisoned write.
    for i in 0..2 {
        let k = cluster.key_of(0, i);
        assert!(client.run_rmw(&[k], 1).unwrap().committed());
    }
    // Block 2: x := 900 — committed and co-signed but never applied on
    // server 1.
    {
        let mut txn = client.begin();
        let v = client.read(&mut txn, &x).unwrap();
        assert_eq!(v.as_i64(), Some(1000));
        client.write(&mut txn, &x, Value::from_i64(900)).unwrap();
        assert!(client.commit(txn).unwrap().committed());
    }
    // More traffic afterwards.
    for i in 0..2 {
        let k = cluster.key_of(2, i);
        assert!(client.run_rmw(&[k], 1).unwrap().committed());
    }

    let report = cluster.audit();
    assert!(!report.is_clean());
    let corruption = report
        .against_server(1)
        .iter()
        .find_map(|v| match &v.kind {
            ViolationKind::DatastoreCorruption { key, .. } if *key == x => Some(v.height),
            _ => None,
        })
        .flatten();
    // Pinpointed at block 2, the block whose version was corrupted.
    assert_eq!(corruption, Some(2));
    cluster.shutdown();
}

/// §4.5: with multiple violations, the auditor identifies the *first*
/// occurrence; everything after it is suspect anyway.
#[test]
fn first_violation_identified() {
    let early = Key::new("s001:item-000000");
    let late = Key::new("s002:item-000000");
    let cluster = FidesCluster::start(
        ClusterConfig::new(3)
            .items_per_shard(4)
            .behavior(
                1,
                Behavior {
                    skip_write_keys: vec![early.clone()],
                    ..Behavior::default()
                },
            )
            .behavior(
                2,
                Behavior {
                    skip_write_keys: vec![late.clone()],
                    ..Behavior::default()
                },
            ),
    );
    let mut client = cluster.client(0);
    assert!(client.run_rmw(&[early], 1).unwrap().committed()); // block 0
    assert!(client.run_rmw(&[late], 1).unwrap().committed()); // block 1

    let report = cluster.audit();
    let first = report.first().expect("violations exist");
    assert_eq!(first.height, Some(0));
    assert_eq!(first.server, Some(1));
    cluster.shutdown();
}

/// The multi-version rollback path the paper motivates: "the data can
/// be reset to the last sanitized version and the application can
/// resume execution from there" (§4.2.1).
#[test]
fn recovery_by_rollback_to_sanitized_version() {
    let cluster = FidesCluster::start(ClusterConfig::new(2).items_per_shard(4));
    let mut client = cluster.client(0);
    let key = cluster.key_of(0, 0);
    let mut commit_ts = Vec::new();
    for _ in 0..3 {
        match client.run_rmw(std::slice::from_ref(&key), 10).unwrap() {
            fides::core::client::TxnOutcome::Committed { ts, .. } => commit_ts.push(ts),
            other => panic!("expected commit, got {other:?}"),
        }
    }
    cluster.settle(std::time::Duration::from_secs(2));

    let state = cluster.server_state(0);
    state.with_shard_mut(|shard| {
        assert_eq!(shard.read(&key).unwrap().value.as_i64(), Some(130));
        // Roll back to the first committed version.
        shard.store_mut().rollback_to(commit_ts[0]);
        assert_eq!(shard.read(&key).unwrap().value.as_i64(), Some(110));
        assert_eq!(shard.store().version_count(&key), 2); // initial + first
    });
    cluster.shutdown();
}
