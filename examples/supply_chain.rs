//! Supply-chain management on mutually distrusting infrastructure —
//! the motivating application of the paper's introduction ("applications
//! such as supply chain management execute transactions on data
//! repositories maintained by multiple administrative domains that
//! mutually distrust each other").
//!
//! Four organisations (farm, factory, warehouse, retailer) each run one
//! untrusted server holding their inventory shard. Shipments are
//! distributed transactions that decrement one org's stock and
//! increment the next. One org later tries to rewrite history — the
//! audit exposes it.
//!
//! ```text
//! cargo run --release --example supply_chain
//! ```

use fides::core::behavior::Behavior;
use fides::core::client::ClientSession;
use fides::core::system::{ClusterConfig, FidesCluster};
use fides::store::{Key, Value};

const ORGS: [&str; 4] = ["farm", "factory", "warehouse", "retailer"];

fn ship(
    client: &mut ClientSession,
    from: &Key,
    to: &Key,
    quantity: i64,
) -> Result<bool, Box<dyn std::error::Error>> {
    let mut txn = client.begin();
    let stock_from = client.read(&mut txn, from)?.as_i64().unwrap_or(0);
    let stock_to = client.read(&mut txn, to)?.as_i64().unwrap_or(0);
    if stock_from < quantity {
        return Ok(false); // abandoned client-side; nothing committed
    }
    client.write(&mut txn, from, Value::from_i64(stock_from - quantity))?;
    client.write(&mut txn, to, Value::from_i64(stock_to + quantity))?;
    Ok(client.commit(txn)?.committed())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Server i belongs to organisation ORGS[i]; item 0 of each shard is
    // that org's stock of "good-0".
    // The retailer (server 3) will later hand the auditor a truncated
    // log, hiding the newest shipments (§4.4 (iii)).
    let cluster = FidesCluster::start(
        ClusterConfig::new(4)
            .items_per_shard(4)
            .initial_value(0)
            .behavior(
                3,
                Behavior {
                    truncate_log_to: Some(2),
                    ..Behavior::default()
                },
            ),
    );
    let stock: Vec<Key> = (0..4).map(|org| cluster.key_of(org, 0)).collect();
    let mut client = cluster.client(0);

    // The farm produces 100 units (a blind write).
    {
        let mut txn = client.begin();
        client.write(&mut txn, &stock[0], Value::from_i64(100))?;
        assert!(client.commit(txn)?.committed());
        println!("farm produced 100 units");
    }

    // Goods flow down the chain in four shipments.
    for hop in 0..3 {
        let quantity = 100 - (hop as i64) * 20;
        let ok = ship(&mut client, &stock[hop], &stock[hop + 1], quantity)?;
        println!(
            "shipment {}: {} → {} ({} units): {}",
            hop + 1,
            ORGS[hop],
            ORGS[hop + 1],
            quantity,
            if ok { "committed" } else { "aborted" }
        );
    }

    // An over-shipment aborts client-side (insufficient stock).
    let ok = ship(&mut client, &stock[0], &stock[1], 9999)?;
    assert!(!ok);
    println!("over-shipment correctly refused");

    // Current stocks.
    let mut txn = client.begin();
    println!("\nfinal stocks:");
    for (org, key) in ORGS.iter().zip(&stock) {
        let units = client.read(&mut txn, key)?.as_i64().unwrap_or(0);
        println!("  {org:<10} {units:>5} units");
    }

    // The audit: the retailer's doctored (truncated) log is exposed;
    // the other three logs prove the full history.
    let report = cluster.audit();
    println!("\n{report}");
    assert!(!report.is_clean());
    assert!(!report.against_server(3).is_empty(), "retailer exposed");
    assert!(report.against_server(0).is_empty());
    println!("=> the retailer's hidden shipments were exposed by the audit");

    cluster.shutdown();
    Ok(())
}
