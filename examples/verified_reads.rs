//! The verified read plane, end to end: proof-carrying reads served by
//! owners and checkpoint mirrors, absence proofs for negative reads,
//! and one Byzantine server caught forging a read — refuted by the
//! client alone and pinned by the audit.
//!
//! ```text
//! cargo run --release --example verified_reads
//! ```

use std::time::Duration;

use fides::core::client::ClientError;
use fides::core::system::{ClusterConfig, FidesCluster};
use fides::core::{Behavior, PersistenceConfig, ReadConsistency, ViolationKind};
use fides::durability::testutil::TempDir;
use fides::store::Key;

fn main() {
    let dir = TempDir::new("verified-reads-example");
    // Three servers, persistence on with frequent checkpoints so every
    // peer soon holds a verified mirror of every other shard. Server 2
    // is Byzantine: it forges the value of one key in snapshot reads.
    let forged_key = Key::new("s000:item-000002");
    let cluster = FidesCluster::start(
        ClusterConfig::new(3)
            .items_per_shard(16)
            .persistence(PersistenceConfig::files(dir.path()).snapshot_interval(4))
            .behavior(
                2,
                Behavior {
                    forge_read_values: vec![forged_key.clone()],
                    ..Behavior::default()
                },
            ),
    );

    // Some committed history so co-signed roots (and mirrors) exist.
    let mut writer = cluster.client(0);
    let hot = cluster.key_of(0, 0);
    for _ in 0..8 {
        let outcome = writer
            .run_rmw_batched(std::slice::from_ref(&hot), 5)
            .expect("commit");
        assert!(outcome.committed());
    }
    cluster.settle(Duration::from_secs(5)).expect("settle");

    // ---- 1. A verified read: no commit round, proof checked locally.
    let mut reader = cluster.client(1);
    let rounds_before = cluster.round_stats().rounds;
    let values = reader
        .read_only(std::slice::from_ref(&hot), ReadConsistency::Fresh)
        .expect("fresh verified read");
    println!(
        "fresh read of {hot}: {} (proof-verified, {} commit rounds ran for it)",
        values[0].as_ref().unwrap(),
        cluster.round_stats().rounds - rounds_before,
    );
    assert_eq!(cluster.round_stats().rounds, rounds_before);

    // ---- 2. A negative read is just as tamper-evident: the absence
    // of a key is *proven* (a bracket of adjacent keys in the sorted
    // key tree), not taken on faith.
    let phantom = Key::new("s000:no-such-item");
    let values = reader
        .read_only(std::slice::from_ref(&phantom), ReadConsistency::Fresh)
        .expect("verified absence");
    println!("read of {phantom}: proven absent = {}", values[0].is_none());
    assert!(values[0].is_none());

    // ---- 3. Mirror-served reads: ask server 1 for shard 0's data.
    // The proof anchors to the same co-signed root the owner would use;
    // the response reports exactly how stale the mirror is.
    match reader.read_only_from(
        1,
        std::slice::from_ref(&hot),
        ReadConsistency::BoundedStaleness(64),
    ) {
        Ok(verified) => println!(
            "mirror read from server 1: value {}, covered height {}, staleness {} block(s)",
            verified.values[0].as_ref().unwrap(),
            verified.covered_height,
            verified.staleness,
        ),
        Err(e) => println!("mirror read refused (no mirror formed yet): {e}"),
    }

    // ---- 4. The Byzantine forged-proof refutation: server 2 serves a
    // corrupted value for `forged_key`. The genuine multiproof cannot
    // link the forged value to the co-signed root, so the *client*
    // refutes it — no auditor round-trip, no honest-server quorum
    // needed at read time.
    let err = reader
        .read_only_from(
            2,
            std::slice::from_ref(&forged_key),
            ReadConsistency::BoundedStaleness(64),
        )
        .expect_err("the forgery must not verify");
    match &err {
        ClientError::ReadRefuted(fault) => {
            println!("server 2's forged read REFUTED client-side: {fault}")
        }
        other => panic!("expected a refutation, got {other:?}"),
    }

    // ---- 5. ...and the audit pins the evidence on exactly server 2.
    let report = cluster.audit();
    let against_2 = report.against_server(2);
    let tampered_reads = against_2
        .iter()
        .filter(|v| matches!(&v.kind, ViolationKind::TamperedRead { .. }))
        .count();
    println!(
        "audit: {} violation(s) against server 2 ({tampered_reads} tampered read(s)); \
         servers 0 and 1 clean: {}",
        against_2.len(),
        report.against_server(0).is_empty() && report.against_server(1).is_empty(),
    );
    assert!(tampered_reads >= 1);
    assert!(report.against_server(0).is_empty());
    assert!(report.against_server(1).is_empty());

    cluster.shutdown();
    println!("done.");
}
