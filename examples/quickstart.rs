//! Quickstart: bring up a Fides cluster, run transactions through
//! TFCommit, inspect the tamper-proof log and audit the servers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fides::core::system::{ClusterConfig, FidesCluster};
use fides::store::Value;

fn main() {
    // A three-server Fides deployment; each server stores one shard of
    // 16 items, all preloaded with the value 100. One transaction per
    // block (the paper's Figure 12 setting).
    let cluster = FidesCluster::start(ClusterConfig::new(3).items_per_shard(16));
    println!("started {cluster:?}");

    let mut client = cluster.client(0);

    // --- A single-shard transaction ---------------------------------
    let key = cluster.key_of(0, 3);
    let mut txn = client.begin();
    let balance = client.read(&mut txn, &key).expect("read");
    println!("read {key} = {balance}");
    client
        .write(
            &mut txn,
            &key,
            Value::from_i64(balance.as_i64().unwrap() - 25),
        )
        .expect("write");
    let outcome = client.commit(txn).expect("commit");
    println!("single-shard txn: {outcome:?}");

    // --- A distributed transaction across all three shards ----------
    let keys = [
        cluster.key_of(0, 0),
        cluster.key_of(1, 0),
        cluster.key_of(2, 0),
    ];
    let outcome = client.run_rmw(&keys, 7).expect("rmw");
    println!("cross-shard txn: {outcome:?}");

    // --- The tamper-proof log ----------------------------------------
    let state = cluster.server_state(1);
    {
        let log = state.log();
        println!("\nserver 1's log ({} blocks):", log.len());
        for block in log.iter() {
            println!(
                "  block {}: {} txn(s), decision={}, prev={}, roots from {:?}",
                block.height,
                block.txns.len(),
                block.decision,
                block.prev_hash.short(),
                block.roots.iter().map(|r| r.server).collect::<Vec<_>>(),
            );
        }
    }

    // --- The audit ----------------------------------------------------
    let report = cluster.audit();
    println!("\n{report}");
    assert!(report.is_clean());

    cluster.shutdown();
    println!("done.");
}
