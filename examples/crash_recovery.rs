//! Crash recovery end to end: run a persisted Fides cluster, kill it,
//! restart it from its write-ahead logs and snapshots, and watch the
//! verified recovery path accept honest disks and refuse tampered ones.
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```

use std::time::Duration;

use fides::core::recovery::PersistenceConfig;
use fides::core::system::{ClusterConfig, FidesCluster};
use fides::durability::testutil::TempDir;
use fides::durability::{recover_ledger, SegmentedWal, WalBlockLog, WalConfig};
use fides::ledger::validate::select_canonical_log;

fn main() {
    let dir = TempDir::new("example");
    println!("persisting to {}\n", dir.path().display());
    let config = || {
        ClusterConfig::new(3)
            .items_per_shard(16)
            .persistence(PersistenceConfig::files(dir.path()).snapshot_interval(4))
    };

    // --- Phase 1: a working cluster commits transactions -------------
    let cluster = FidesCluster::start(config());
    let mut client = cluster.client(0);
    for i in 0..10u32 {
        let keys = [cluster.key_of(i % 3, i as usize % 16)];
        let outcome = client.run_rmw(&keys, -3).expect("commit");
        assert!(outcome.committed());
    }
    cluster.settle(Duration::from_secs(5)).expect("converged");
    let state = cluster.server_state(0);
    let (len, tip, root) = {
        let log = state.log();
        (log.len(), log.tip_hash(), state.with_shard(|s| s.root()))
    };
    println!("before crash: {len} blocks, tip {tip}, shard-0 root {root}");
    drop(state);
    cluster.shutdown();
    println!("cluster crashed (all in-memory state discarded)\n");

    // --- Phase 2: restart = verified recovery ------------------------
    // Every server reopens its WAL, re-checks the hash chain, batch-
    // verifies all collective signatures, binds its snapshot to the
    // verified chain and replays only the suffix above it.
    let cluster = FidesCluster::start(config());
    let state = cluster.server_state(0);
    let (len2, tip2, root2) = {
        let log = state.log();
        (log.len(), log.tip_hash(), state.with_shard(|s| s.root()))
    };
    println!("after restart: {len2} blocks, tip {tip2}, shard-0 root {root2}");
    assert_eq!((len, tip, root), (len2, tip2, root2));
    println!("recovered state is identical — tip hash and Merkle root match\n");

    // The restarted cluster keeps serving traffic.
    drop(state);
    let mut client = cluster.client(1);
    let outcome = client
        .run_rmw(&[cluster.key_of(1, 2)], 5)
        .expect("commit after restart");
    assert!(outcome.committed());
    let report = cluster.audit();
    assert!(report.is_clean(), "{report}");
    println!("post-restart commit + audit: clean\n");
    cluster.shutdown();

    // --- Phase 3: the auditor can read the disks directly ------------
    // The WALs double as audit inputs: recover each server's ledger
    // offline and run the Lemma 7 log selection over them.
    let wal_config = WalConfig::default();
    let server_pks: Vec<_> = (0..3)
        .map(|i| {
            fides::crypto::schnorr::KeyPair::from_seed(format!("fides-server-{i}").as_bytes())
                .public_key()
        })
        .collect();
    let logs: Vec<_> = (0..3u32)
        .map(|s| {
            let wal_dir = PersistenceConfig::server_dir(dir.path(), s).join("wal");
            let (_, blocks) = WalBlockLog::open(wal_dir, wal_config).expect("open wal");
            recover_ledger(blocks, None, &server_pks, true)
                .expect("verified recovery")
                .log
        })
        .collect();
    let selection = select_canonical_log(&logs, &server_pks);
    println!(
        "offline audit over the WALs: canonical log has {} blocks, all copies complete: {}",
        selection.canonical.len(),
        selection.assessments.iter().all(|a| a.is_complete())
    );

    // --- Phase 4: torn tails are repaired ----------------------------
    // A crash mid-write leaves a half-written record at the very end of
    // the newest segment. That is not tampering: open truncates the
    // tail back to the last complete record and carries on.
    let wal0 = PersistenceConfig::server_dir(dir.path(), 0).join("wal");
    let seg0 = {
        let mut segs: Vec<_> = std::fs::read_dir(&wal0)
            .expect("wal dir")
            .map(|e| e.expect("entry").path())
            .collect();
        segs.sort();
        segs.pop().expect("segments exist")
    };
    let len_before = std::fs::metadata(&seg0).expect("metadata").len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&seg0)
        .and_then(|f| f.set_len(len_before - 7))
        .expect("simulate torn write");
    let (_, report) = SegmentedWal::open(&wal0, wal_config).expect("repairing open");
    println!(
        "\ntorn tail on server 0: {} of a record discarded, {} whole blocks survive",
        format_args!("{} bytes", report.repaired_bytes),
        report.records.len()
    );
    assert!(report.repaired_bytes > 0);

    // --- Phase 5: tampered disks are refused -------------------------
    let segment = {
        let wal_dir = PersistenceConfig::server_dir(dir.path(), 2).join("wal");
        let mut segs: Vec<_> = std::fs::read_dir(wal_dir)
            .expect("wal dir")
            .map(|e| e.expect("entry").path())
            .collect();
        segs.sort();
        segs[0].clone()
    };
    let mut bytes = std::fs::read(&segment).expect("read segment");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x08; // one flipped bit anywhere in any segment
    std::fs::write(&segment, &bytes).expect("tamper");
    println!("\nflipped one bit in {}", segment.display());

    match FidesCluster::try_start(config()) {
        Err(e) => println!("startup refused, as required:\n  {e}"),
        Ok(_) => panic!("tampered WAL must not start"),
    }
}
