//! The paper's worked failure examples (§5) on a banking workload.
//!
//! Scenario 1 (Figure 10): a malicious server returns a **stale
//! balance** with up-to-date timestamps; the auditor detects the
//! incorrect read and names the server.
//!
//! Scenario 3 (Figure 11): a malicious server **corrupts its
//! datastore** (never applies a committed withdrawal); the auditor's
//! Merkle-proof check pinpoints the corrupted version.
//!
//! ```text
//! cargo run --release --example banking
//! ```

use fides::core::behavior::Behavior;
use fides::core::system::{ClusterConfig, FidesCluster};
use fides::store::{Key, Value};

fn scenario_1_incorrect_reads() {
    println!("=== Scenario 1: incorrect reads (paper Figure 10) ===");
    // Accounts x and y live on servers 1 and 2. Server 1 will lie about
    // x's balance: it returns the previous version with fresh
    // timestamps.
    let account_x = Key::new("s001:item-000000");
    let cluster = FidesCluster::start(
        ClusterConfig::new(3)
            .items_per_shard(8)
            .initial_value(1000) // all accounts start with $1000
            .behavior(
                1,
                Behavior {
                    stale_read_keys: vec![account_x.clone()],
                    ..Behavior::default()
                },
            ),
    );
    let account_y = cluster.key_of(2, 0);
    let mut client = cluster.client(0);

    // T1: deduct $100 from x and y (the paper's example).
    let t1 = client
        .run_rmw(&[account_x.clone(), account_y.clone()], -100)
        .expect("t1");
    println!("T1 (deduct $100 from x and y): {t1:?}");

    // T2: deduct another $100. Server 1 serves the *stale* $1000 for x.
    let t2 = client
        .run_rmw(&[account_x.clone(), account_y.clone()], -100)
        .expect("t2");
    println!("T2 (deduct $100 again):        {t2:?}");

    let report = cluster.audit();
    println!("{report}");
    assert!(!report.is_clean());
    let culprits = report.against_server(1);
    assert!(!culprits.is_empty(), "server 1 must be named");
    println!("=> the auditor attributed the incorrect read to server 1\n");
    cluster.shutdown();
}

fn scenario_3_data_corruption() {
    println!("=== Scenario 3: datastore corruption (paper Figure 11) ===");
    // Server m = 2 never applies committed withdrawals to account x —
    // its datastore silently keeps the old balance.
    let account = Key::new("s002:item-000003");
    let cluster = FidesCluster::start(
        ClusterConfig::new(3)
            .items_per_shard(8)
            .initial_value(1000)
            .behavior(
                2,
                Behavior {
                    skip_write_keys: vec![account.clone()],
                    ..Behavior::default()
                },
            ),
    );
    let mut client = cluster.client(0);

    // A committed withdrawal: the log (and the co-signed Merkle root)
    // say $900, but server 2's datastore still says $1000.
    let outcome = client
        .run_rmw(std::slice::from_ref(&account), -100)
        .expect("withdraw");
    println!("withdrawal committed: {outcome:?}");

    let report = cluster.audit();
    println!("{report}");
    assert!(!report.is_clean());
    let culprits = report.against_server(2);
    assert!(!culprits.is_empty(), "server 2 must be named");
    let first = report.first().expect("has violations");
    println!(
        "=> corruption detected at block {} and attributed to server 2\n",
        first.height.unwrap()
    );
    cluster.shutdown();
}

fn honest_baseline() {
    println!("=== Honest baseline: transfers audit clean ===");
    let cluster = FidesCluster::start(ClusterConfig::new(3).items_per_shard(8).initial_value(1000));
    let mut client = cluster.client(0);
    // A chain of transfers between accounts on different shards.
    for i in 0..5 {
        let from = cluster.key_of(i % 3, (i as usize) % 8);
        let to = cluster.key_of((i + 1) % 3, (i as usize + 1) % 8);
        let mut txn = client.begin();
        let a = client.read(&mut txn, &from).unwrap().as_i64().unwrap();
        let b = client.read(&mut txn, &to).unwrap().as_i64().unwrap();
        client
            .write(&mut txn, &from, Value::from_i64(a - 50))
            .unwrap();
        client
            .write(&mut txn, &to, Value::from_i64(b + 50))
            .unwrap();
        let outcome = client.commit(txn).unwrap();
        assert!(outcome.committed());
    }
    let report = cluster.audit();
    println!("{report}");
    assert!(report.is_clean());
    cluster.shutdown();
}

fn main() {
    honest_baseline();
    scenario_1_incorrect_reads();
    scenario_3_data_corruption();
    println!("all scenarios behaved as the paper describes.");
}
