//! The §4.6 scaling extension: per-group TFCommit with an ordering
//! service.
//!
//! Six servers are split into transaction-specific groups; each group
//! co-signs a block proposal, and two alternative OrdServ
//! implementations produce the single global stream:
//!
//! 1. a [`Sequencer`] with dependency tracking (`Gi ∩ Gj ≠ ∅` ⇒
//!    ordered),
//! 2. a from-scratch PBFT among four group coordinators.
//!
//! ```text
//! cargo run --release --example scaling
//! ```

use fides::crypto::encoding::{Decodable, Encodable};
use fides::crypto::schnorr::KeyPair;
use fides::ledger::block::{Decision, TxnRecord};
use fides::ordserv::{GroupLog, GroupProposal, OrderingService, PbftConfig, PbftNode, Sequencer};
use fides::store::rwset::WriteEntry;
use fides::store::{Key, Timestamp, Value};

fn server_keys(n: u32) -> Vec<KeyPair> {
    (0..n)
        .map(|i| KeyPair::from_seed(format!("scale-server-{i}").as_bytes()))
        .collect()
}

fn sample_txn(ts: u64, key: &str) -> TxnRecord {
    TxnRecord {
        id: Timestamp::new(ts, 0),
        read_set: vec![],
        write_set: vec![WriteEntry {
            key: Key::new(key),
            new_value: Value::from_i64(ts as i64),
            old_value: None,
            rts: Timestamp::ZERO,
            wts: Timestamp::ZERO,
        }],
    }
}

fn group_proposal(keys: &[KeyPair], group: &[u32], ts: u64, item: &str) -> GroupProposal {
    let members: Vec<(u32, KeyPair)> = group.iter().map(|s| (*s, keys[*s as usize])).collect();
    GroupProposal::build_signed(
        &members,
        vec![sample_txn(ts, item)],
        vec![],
        Decision::Commit,
    )
}

fn main() {
    let n_servers = 6;
    let keys = server_keys(n_servers);
    let pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();

    // --- Groups form around transactions (Figure 9) ------------------
    println!("=== group proposals ===");
    let proposals = vec![
        ("T1 on {0,1}", group_proposal(&keys, &[0, 1], 10, "a")),
        ("T2 on {2,3}", group_proposal(&keys, &[2, 3], 11, "b")),
        ("T3 on {1,2}", group_proposal(&keys, &[1, 2], 12, "c")), // overlaps both
        ("T4 on {4,5}", group_proposal(&keys, &[4, 5], 13, "d")), // disjoint
    ];
    for (name, p) in &proposals {
        println!(
            "  {name}: group={:?}, co-sign valid={}",
            p.group,
            p.verify(&pks)
        );
        assert!(p.verify(&pks));
    }

    // --- OrdServ #1: sequencer with dependency tracking --------------
    println!("\n=== sequencer OrdServ ===");
    let mut ordserv = Sequencer::new(pks.clone());
    let mut replica = GroupLog::new(); // every server replays this stream
    for (name, p) in &proposals {
        let block = ordserv.submit(p.clone()).expect("valid proposal");
        println!(
            "  seq {} ({name}): depends_on={:?}",
            block.seq, block.depends_on
        );
        replica.append(block);
    }
    replica.validate(&pks).expect("replica validates");
    // T3 (seq 2) overlaps groups of seq 0 and seq 1 → both dependencies;
    // T4 (seq 3) is disjoint → none.
    assert_eq!(replica.blocks()[2].depends_on, vec![0, 1]);
    assert!(replica.blocks()[3].depends_on.is_empty());
    println!("  replica validated: dependency order preserved");

    // --- OrdServ #2: PBFT among four group coordinators --------------
    println!("\n=== PBFT OrdServ (4 coordinators, f = 1) ===");
    let config = PbftConfig::for_faults(1);
    let mut nodes: Vec<PbftNode> = (0..config.n).map(|i| PbftNode::new(i, config)).collect();
    for (_, p) in &proposals {
        let out = nodes[0].propose(p.encode());
        let initial: Vec<_> = out.into_iter().map(|o| (0, o)).collect();
        fides::ordserv::pbft::run_to_quiescence(&mut nodes, initial);
    }
    // Every coordinator committed the same stream; decode and verify.
    let reference: Vec<Vec<u8>> = nodes[0].committed().values().cloned().collect();
    for node in &nodes {
        let stream: Vec<Vec<u8>> = node.committed().values().cloned().collect();
        assert_eq!(stream, reference, "identical order everywhere");
    }
    for (i, payload) in reference.iter().enumerate() {
        let p = GroupProposal::decode(payload).expect("decodes");
        assert!(p.verify(&pks));
        println!("  PBFT slot {i}: group {:?} proposal committed", p.group);
    }

    println!("\nscaling extension: both OrdServ variants produced one consistent stream.");
}
