//! The full fault gallery: every malicious behaviour of the paper's
//! failure model (§3.2, §5) injected one at a time, with the detection
//! mechanism that catches it.
//!
//! | fault | layer | caught by |
//! |-------|-------|-----------|
//! | stale reads            | execution  | audit replay (Lemma 1) |
//! | skipped writes         | datastore  | Merkle proofs (Lemma 2) |
//! | silent corruption      | datastore  | Merkle proofs (Lemma 2) |
//! | fake root in block     | commit     | benign cohort refusal (Scenario 2) |
//! | wrong CoSi response    | commit     | coordinator culprit check (Lemma 4) |
//! | equivocating decision  | commit     | challenge recomputation (Lemma 5) |
//! | tampered log           | log        | co-sign per block (Lemma 6) |
//! | reordered log          | log        | hash chain (Lemma 6) |
//! | truncated log          | log        | canonical-log selection (Lemma 7) |
//! | tampered state transfer | repair    | transfer verification + audit evidence |
//!
//! The repair case also demonstrates the converse guarantee: a server
//! that is merely **repairing** (lagging behind while the repair plane
//! resynchronizes it) is *not* reported as misbehaving — its short log
//! is excused as lagging until the grace deadline.
//!
//! ```text
//! cargo run --release --example byzantine_audit
//! ```

use std::time::Duration;

use fides::core::behavior::Behavior;
use fides::core::recovery::PersistenceConfig;
use fides::core::system::{ClusterConfig, FidesCluster};
use fides::store::{Key, Value};

/// Runs a 3-server cluster with `behavior` on `faulty_server`, executes
/// a few transactions, and reports how the fault surfaced.
fn run_case(name: &str, faulty_server: u32, behavior: Behavior, expect_anomaly: bool) {
    println!("--- {name} (server {faulty_server} misbehaves) ---");
    let cluster = FidesCluster::start(
        ClusterConfig::new(3)
            .items_per_shard(8)
            .behavior(faulty_server, behavior),
    );
    let mut client = cluster.client(0);

    let mut anomalies = 0;
    for i in 0..4 {
        // Server 1's item 0 is revisited by every transaction so that
        // version-dependent faults (stale reads) have a stale version
        // to serve.
        let keys = [
            cluster.key_of(0, i),
            cluster.key_of(1, 0),
            cluster.key_of(2, i),
        ];
        match client.run_rmw(&keys, 1) {
            Ok(outcome) => {
                if outcome.is_anomaly() {
                    anomalies += 1;
                }
            }
            Err(e) => println!("  client error (expected for stalls): {e}"),
        }
    }

    if expect_anomaly {
        assert!(anomalies > 0, "{name}: client should detect an anomaly");
        println!("  => client-side detection: {anomalies} anomalous outcome(s)");
        // Protocol-level evidence at the servers:
        for s in 0..3 {
            let state = cluster.server_state(s);
            for (height, refusal) in state.refusals() {
                println!("  => server {s} refused block {height}: {refusal}");
            }
            for (height, culprits) in state.cosi_culprits() {
                println!(
                    "  => coordinator identified CoSi culprit(s) {culprits:?} at block {height}"
                );
            }
        }
    } else {
        let report = cluster.audit();
        assert!(!report.is_clean(), "{name}: audit must find the fault");
        let against = report.against_server(faulty_server);
        assert!(
            !against.is_empty(),
            "{name}: fault must be attributed to server {faulty_server}; report: {report}"
        );
        for v in against.iter().take(2) {
            println!("  => audit: {v}");
        }
        // No false accusations.
        for s in 0..3 {
            if s != faulty_server {
                assert!(
                    report.against_server(s).is_empty(),
                    "benign server {s} falsely accused"
                );
            }
        }
    }
    cluster.shutdown();
    println!();
}

fn main() {
    let item = |s: u32, i: usize| Key::new(format!("s{s:03}:item-{i:06}"));

    run_case(
        "stale reads (Scenario 1)",
        1,
        Behavior {
            stale_read_keys: vec![item(1, 0), item(1, 1), item(1, 2), item(1, 3)],
            ..Behavior::default()
        },
        false,
    );

    run_case(
        "skipped writes (Scenario 3)",
        2,
        Behavior {
            skip_write_keys: vec![item(2, 0), item(2, 1)],
            ..Behavior::default()
        },
        false,
    );

    run_case(
        "silent datastore corruption (Scenario 3)",
        1,
        Behavior {
            corrupt_after_commit: Some((item(1, 2), Value::from_i64(666))),
            ..Behavior::default()
        },
        false,
    );

    run_case(
        "fake Merkle root in block (Scenario 2)",
        0, // the coordinator
        Behavior {
            fake_root_for: Some(1),
            ..Behavior::default()
        },
        true,
    );

    run_case(
        "corrupt CoSi response (Lemma 4)",
        2,
        Behavior {
            corrupt_cosi_response: true,
            ..Behavior::default()
        },
        true,
    );

    run_case(
        "equivocating coordinator (Lemma 5)",
        0,
        Behavior {
            equivocate_decision: true,
            ..Behavior::default()
        },
        true,
    );

    run_case(
        "tampered log block (Lemma 6)",
        1,
        Behavior {
            tamper_log_at: Some(1),
            ..Behavior::default()
        },
        false,
    );

    run_case(
        "reordered log (Lemma 6)",
        2,
        Behavior {
            reorder_log: Some((0, 2)),
            ..Behavior::default()
        },
        false,
    );

    run_case(
        "truncated log (Lemma 7)",
        1,
        Behavior {
            truncate_log_to: Some(1),
            ..Behavior::default()
        },
        false,
    );

    run_repair_case();

    println!("all ten faults detected and attributed correctly.");
}

/// A Byzantine repair peer serves a tampered state transfer to a server
/// rejoining after total disk loss: the transfer is refuted (nothing
/// tampered is applied), the audit attributes the attempt to the
/// precise peer, and the *repairing* victim is never accused — while it
/// lags it is reported as lagging, not faulty.
fn run_repair_case() {
    println!("--- tampered state transfer (repair plane) ---");
    let dir = fides::durability::testutil::TempDir::new("byzantine-audit-repair");
    let victim = 2u32;
    let liar = 1u32;
    let config = |byzantine: bool| {
        let mut config = ClusterConfig::new(3)
            .items_per_shard(8)
            .flush_interval(Duration::from_millis(5))
            .round_timeout(Duration::from_millis(300))
            .persistence(PersistenceConfig::files(dir.path()).snapshot_interval(0));
        if byzantine {
            config = config.behavior(
                liar,
                Behavior {
                    tamper_repair_blocks: true,
                    ..Behavior::default()
                },
            );
        }
        config
    };

    let mut cluster = FidesCluster::start(config(true));
    let mut client = cluster.client(0);
    for i in 0..4 {
        let keys = [cluster.key_of(0, i), cluster.key_of(2, i)];
        assert!(client.run_rmw(&keys, 1).unwrap().committed());
    }
    cluster.settle(Duration::from_secs(5)).expect("settles");

    // The victim dies with its disk; only the liar is reachable when it
    // comes back, so the first transfer attempt is tampered.
    cluster.crash_server(victim);
    std::fs::remove_dir_all(PersistenceConfig::server_dir(dir.path(), victim))
        .expect("wipe victim disk");
    cluster
        .network()
        .partition_pair(fides::net::NodeId::new(victim), fides::net::NodeId::new(0));
    cluster.restart_server(victim).expect("restart");

    // The tampered transfer is refuted...
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while cluster.server_state(victim).repair_evidence().is_empty() {
        assert!(
            std::time::Instant::now() < deadline,
            "tampered transfer must be refuted"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    for evidence in cluster
        .server_state(victim)
        .repair_evidence()
        .iter()
        .take(2)
    {
        println!("  => victim refuted: {evidence}");
    }
    // ...and while the victim is still behind, the audit calls it
    // lagging instead of accusing it.
    let report = cluster.audit();
    assert!(
        report.against_server(victim).is_empty(),
        "a repairing server must not be reported as misbehaving: {report}"
    );
    if report.lagging.contains(&victim) {
        println!("  => audit: server {victim} is lagging (repairing), not faulty");
    }
    assert!(
        !report.against_server(liar).is_empty(),
        "the tampering peer must be attributed: {report}"
    );
    for v in report.against_server(liar).iter().take(1) {
        println!("  => audit: {v}");
    }

    // Heal: the honest peer completes the verified transfer.
    cluster.network().heal();
    assert!(
        cluster.await_rejoin(victim, Duration::from_secs(10)),
        "victim must rejoin via the honest peer"
    );
    println!(
        "  => victim rejoined at height {} with a verified transfer",
        cluster.server_state(victim).next_height()
    );
    cluster.shutdown();
    println!();
}
