//! The full fault gallery: every malicious behaviour of the paper's
//! failure model (§3.2, §5) injected one at a time, with the detection
//! mechanism that catches it.
//!
//! | fault | layer | caught by |
//! |-------|-------|-----------|
//! | stale reads            | execution  | audit replay (Lemma 1) |
//! | skipped writes         | datastore  | Merkle proofs (Lemma 2) |
//! | silent corruption      | datastore  | Merkle proofs (Lemma 2) |
//! | fake root in block     | commit     | benign cohort refusal (Scenario 2) |
//! | wrong CoSi response    | commit     | coordinator culprit check (Lemma 4) |
//! | equivocating decision  | commit     | challenge recomputation (Lemma 5) |
//! | tampered log           | log        | co-sign per block (Lemma 6) |
//! | reordered log          | log        | hash chain (Lemma 6) |
//! | truncated log          | log        | canonical-log selection (Lemma 7) |
//!
//! ```text
//! cargo run --release --example byzantine_audit
//! ```

use fides::core::behavior::Behavior;
use fides::core::system::{ClusterConfig, FidesCluster};
use fides::store::{Key, Value};

/// Runs a 3-server cluster with `behavior` on `faulty_server`, executes
/// a few transactions, and reports how the fault surfaced.
fn run_case(name: &str, faulty_server: u32, behavior: Behavior, expect_anomaly: bool) {
    println!("--- {name} (server {faulty_server} misbehaves) ---");
    let cluster = FidesCluster::start(
        ClusterConfig::new(3)
            .items_per_shard(8)
            .behavior(faulty_server, behavior),
    );
    let mut client = cluster.client(0);

    let mut anomalies = 0;
    for i in 0..4 {
        // Server 1's item 0 is revisited by every transaction so that
        // version-dependent faults (stale reads) have a stale version
        // to serve.
        let keys = [
            cluster.key_of(0, i),
            cluster.key_of(1, 0),
            cluster.key_of(2, i),
        ];
        match client.run_rmw(&keys, 1) {
            Ok(outcome) => {
                if outcome.is_anomaly() {
                    anomalies += 1;
                }
            }
            Err(e) => println!("  client error (expected for stalls): {e}"),
        }
    }

    if expect_anomaly {
        assert!(anomalies > 0, "{name}: client should detect an anomaly");
        println!("  => client-side detection: {anomalies} anomalous outcome(s)");
        // Protocol-level evidence at the servers:
        for s in 0..3 {
            let state = cluster.server_state(s);
            for (height, refusal) in state.refusals() {
                println!("  => server {s} refused block {height}: {refusal}");
            }
            for (height, culprits) in state.cosi_culprits() {
                println!(
                    "  => coordinator identified CoSi culprit(s) {culprits:?} at block {height}"
                );
            }
        }
    } else {
        let report = cluster.audit();
        assert!(!report.is_clean(), "{name}: audit must find the fault");
        let against = report.against_server(faulty_server);
        assert!(
            !against.is_empty(),
            "{name}: fault must be attributed to server {faulty_server}; report: {report}"
        );
        for v in against.iter().take(2) {
            println!("  => audit: {v}");
        }
        // No false accusations.
        for s in 0..3 {
            if s != faulty_server {
                assert!(
                    report.against_server(s).is_empty(),
                    "benign server {s} falsely accused"
                );
            }
        }
    }
    cluster.shutdown();
    println!();
}

fn main() {
    let item = |s: u32, i: usize| Key::new(format!("s{s:03}:item-{i:06}"));

    run_case(
        "stale reads (Scenario 1)",
        1,
        Behavior {
            stale_read_keys: vec![item(1, 0), item(1, 1), item(1, 2), item(1, 3)],
            ..Behavior::default()
        },
        false,
    );

    run_case(
        "skipped writes (Scenario 3)",
        2,
        Behavior {
            skip_write_keys: vec![item(2, 0), item(2, 1)],
            ..Behavior::default()
        },
        false,
    );

    run_case(
        "silent datastore corruption (Scenario 3)",
        1,
        Behavior {
            corrupt_after_commit: Some((item(1, 2), Value::from_i64(666))),
            ..Behavior::default()
        },
        false,
    );

    run_case(
        "fake Merkle root in block (Scenario 2)",
        0, // the coordinator
        Behavior {
            fake_root_for: Some(1),
            ..Behavior::default()
        },
        true,
    );

    run_case(
        "corrupt CoSi response (Lemma 4)",
        2,
        Behavior {
            corrupt_cosi_response: true,
            ..Behavior::default()
        },
        true,
    );

    run_case(
        "equivocating coordinator (Lemma 5)",
        0,
        Behavior {
            equivocate_decision: true,
            ..Behavior::default()
        },
        true,
    );

    run_case(
        "tampered log block (Lemma 6)",
        1,
        Behavior {
            tamper_log_at: Some(1),
            ..Behavior::default()
        },
        false,
    );

    run_case(
        "reordered log (Lemma 6)",
        2,
        Behavior {
            reorder_log: Some((0, 2)),
            ..Behavior::default()
        },
        false,
    );

    run_case(
        "truncated log (Lemma 7)",
        1,
        Behavior {
            truncate_log_to: Some(1),
            ..Behavior::default()
        },
        false,
    );

    println!("all nine faults detected and attributed correctly.");
}
