//! # Fides — auditable data management on untrusted infrastructure
//!
//! Umbrella crate re-exporting the full public API of the Fides
//! reproduction (Maiyya et al., *Fides: Managing Data on Untrusted
//! Infrastructure*, ICDCS 2020):
//!
//! * [`crypto`] — SHA-256, secp256k1, Schnorr, CoSi, Merkle trees,
//! * [`store`] — timestamped sharded datastores,
//! * [`net`] — in-memory network with latency/fault injection,
//! * [`ledger`] — the tamper-proof, globally replicated block log,
//! * [`durability`] — segmented WAL, shard snapshots and verified
//!   crash recovery,
//! * [`core`] — TFCommit, the Fides servers/clients and the auditor,
//! * [`workload`] — YCSB-like transactional workload generation,
//! * [`ordserv`] — the §4.6 scaling extension (groups + ordering
//!   service).
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use fides_core as core;
pub use fides_crypto as crypto;
pub use fides_durability as durability;
pub use fides_ledger as ledger;
pub use fides_net as net;
pub use fides_ordserv as ordserv;
pub use fides_read as read;
pub use fides_store as store;
pub use fides_telemetry as telemetry;
pub use fides_workload as workload;
