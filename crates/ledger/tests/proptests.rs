//! Property-based tests for the tamper-proof log: any tampering at any
//! position is detected, and the canonical-log selection always finds
//! the correct log as long as one copy is intact (Lemmas 6–7).

use fides_crypto::cosi::{self, Witness};
use fides_crypto::schnorr::{KeyPair, PublicKey};
use fides_crypto::Digest;
use fides_ledger::block::{Block, BlockBuilder, Decision, ShardRoot};
use fides_ledger::log::TamperProofLog;
use fides_ledger::validate::{select_canonical_log, validate_chain, LogAssessment};
use proptest::prelude::*;

fn keys(n: u8) -> Vec<KeyPair> {
    (0..n).map(|i| KeyPair::from_seed(&[i, 0x77])).collect()
}

fn pks(keys: &[KeyPair]) -> Vec<PublicKey> {
    keys.iter().map(|k| k.public_key()).collect()
}

fn signed_chain(n: u64, keys: &[KeyPair]) -> TamperProofLog {
    let mut log = TamperProofLog::new();
    for h in 0..n {
        let unsigned = BlockBuilder::new(h, log.tip_hash())
            .decision(if h % 3 == 0 {
                Decision::Abort
            } else {
                Decision::Commit
            })
            .root(ShardRoot {
                server: (h % 4) as u32,
                root: Digest::new([h as u8; 32]),
            })
            .build_unsigned();
        let record = unsigned.signing_bytes();
        let witnesses: Vec<Witness> = keys
            .iter()
            .map(|k| Witness::commit(k, &h.to_be_bytes(), &record))
            .collect();
        let agg = cosi::aggregate_commitments(witnesses.iter().map(|w| w.commitment()));
        let c = cosi::challenge(&agg, &record);
        let sig = cosi::CollectiveSignature::assemble(agg, witnesses.iter().map(|w| w.respond(&c)));
        log.append(Block {
            cosign: sig,
            ..unsigned
        })
        .unwrap();
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tampering with any field of any block is caught at exactly that
    /// block (Lemma 6).
    #[test]
    fn any_tamper_position_detected(
        len in 2u64..8,
        pos_seed in any::<u64>(),
        field in 0u8..3,
    ) {
        let ks = keys(3);
        let mut log = signed_chain(len, &ks);
        let pos = pos_seed % len;
        log.tamper_block(pos, |b| match field {
            0 => {
                b.decision = match b.decision {
                    Decision::Commit => Decision::Abort,
                    Decision::Abort => Decision::Commit,
                }
            }
            1 => b.roots.push(ShardRoot { server: 99, root: Digest::new([0xAB; 32]) }),
            _ => b.prev_hash = Digest::new([0xCD; 32]),
        });
        let fault = validate_chain(&log, &pks(&ks)).expect_err("must detect");
        prop_assert_eq!(fault.height, pos, "detected at the tampered block");
    }

    /// Swapping any two blocks is detected (Lemma 6, reordering).
    #[test]
    fn any_reorder_detected(len in 3u64..8, a_seed in any::<u64>(), b_seed in any::<u64>()) {
        let ks = keys(3);
        let mut log = signed_chain(len, &ks);
        let a = a_seed % len;
        let b = b_seed % len;
        prop_assume!(a != b);
        log.reorder_blocks(a, b);
        prop_assert!(validate_chain(&log, &pks(&ks)).is_err());
    }

    /// With any mix of truncated/tampered copies and at least one
    /// intact copy, selection recovers the full log and classifies every
    /// copy correctly (Lemma 7).
    #[test]
    fn selection_recovers_canonical(
        len in 2u64..8,
        faults in proptest::collection::vec(0u8..3, 1..4),
    ) {
        let ks = keys(3);
        let full = signed_chain(len, &ks);
        let mut logs = vec![full.clone()]; // one correct server (the model's requirement)
        for (i, fault) in faults.iter().enumerate() {
            let mut copy = full.clone();
            match fault {
                0 => copy.truncate(i % len as usize),
                1 => { copy.tamper_block(i as u64 % len, |b| b.height += 1); }
                _ => {} // honest copy
            }
            logs.push(copy);
        }
        let selection = select_canonical_log(&logs, &pks(&ks));
        prop_assert_eq!(selection.canonical.len(), len as usize);
        prop_assert!(selection.assessments[0].is_complete());
        for (i, fault) in faults.iter().enumerate() {
            let assessment = &selection.assessments[i + 1];
            let ok = match fault {
                0 => matches!(
                    assessment,
                    LogAssessment::Incomplete { .. } | LogAssessment::Complete
                ),
                1 => matches!(assessment, LogAssessment::Tampered(_)),
                _ => assessment.is_complete(),
            };
            prop_assert!(ok, "copy {} fault {} got {:?}", i + 1, fault, assessment);
        }
    }

    /// Block encode/decode roundtrips for arbitrary-ish contents.
    #[test]
    fn block_roundtrip(height in any::<u64>(), root_byte in any::<u8>(), commit in any::<bool>()) {
        let block = BlockBuilder::new(height, Digest::new([root_byte; 32]))
            .root(ShardRoot { server: u32::from(root_byte), root: Digest::new([root_byte; 32]) })
            .decision(if commit { Decision::Commit } else { Decision::Abort })
            .build_unsigned();
        use fides_crypto::encoding::{Decodable, Encodable};
        let decoded = Block::decode(&block.encode()).unwrap();
        prop_assert_eq!(decoded, block);
    }
}
