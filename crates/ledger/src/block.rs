//! The block structure of the tamper-proof log (paper Table 1).
//!
//! | key        | description                                          |
//! |------------|------------------------------------------------------|
//! | `TxnId`    | commit timestamp of txn                              |
//! | `R set`    | list of `⟨id : value, rts, wts⟩`                     |
//! | `W set`    | list of `⟨id : new_val, old_val, rts, wts⟩`          |
//! | `Σ roots`  | MHT roots of shards                                  |
//! | `decision` | commit or abort                                      |
//! | `h`        | hash of previous block                               |
//! | `co-sign`  | a collective signature of participants               |
//!
//! A block may carry several transactions (§4.6: "the coordinator
//! collects and inserts a set of non-conflicting client generated
//! transactions and orders them within a single block"); the evaluation
//! typically batches 100.
//!
//! The **signing bytes** of a block — what CoSi witnesses collectively
//! sign — cover every field *except* the co-sign itself. The block
//! **hash** — what the next block's `prev_hash` points to — also covers
//! only the signing bytes, so attaching the signature does not change
//! the chain link.

use core::fmt;

use fides_crypto::cosi::CollectiveSignature;
use fides_crypto::encoding::{Decodable, DecodeError, Decoder, Encodable, Encoder};
use fides_crypto::sha256::Sha256;
use fides_crypto::Digest;
use fides_store::rwset::{ReadEntry, WriteEntry};
use fides_store::types::Timestamp;

/// The commit/abort outcome of a block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Decision {
    /// All involved servers voted commit.
    Commit,
    /// At least one involved server voted abort (the block then has at
    /// least one missing shard root, §4.3.1).
    Abort,
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Commit => write!(f, "commit"),
            Decision::Abort => write!(f, "abort"),
        }
    }
}

/// One transaction's entry in a block: its id (= client-assigned commit
/// timestamp) and read/write sets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxnRecord {
    /// The commit timestamp identifying the transaction (Table 1 TxnId).
    pub id: Timestamp,
    /// The read set observed during execution.
    pub read_set: Vec<ReadEntry>,
    /// The write set produced during execution.
    pub write_set: Vec<WriteEntry>,
}

/// A Merkle root contributed by one shard/server for this block
/// (Table 1 `Σ roots`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardRoot {
    /// The contributing server's index.
    pub server: u32,
    /// The shard's Merkle root with all the block's updates applied.
    pub root: Digest,
}

/// A block of the tamper-proof log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// Position in the chain (genesis = 0).
    pub height: u64,
    /// The transactions terminated by this block.
    pub txns: Vec<TxnRecord>,
    /// Per-shard Merkle roots, sorted by server index. For an aborted
    /// block at least one involved server's root is missing (§4.3.1).
    pub roots: Vec<ShardRoot>,
    /// The collective decision.
    pub decision: Decision,
    /// Hash of the previous block ([`Digest::ZERO`] for genesis).
    pub prev_hash: Digest,
    /// The CoSi collective signature over the signing bytes.
    pub cosign: CollectiveSignature,
}

/// Computes the canonical digest of a block's transaction list — the
/// commitment that stands in for the (multi-kilobyte) transaction
/// bodies inside the signing bytes, so a [`BlockHeader`] can be
/// verified without them.
pub fn txns_digest(txns: &[TxnRecord]) -> Digest {
    let mut enc = Encoder::with_capacity(256);
    enc.put_seq(txns, |e, t| t.encode_into(e));
    Sha256::digest(enc.as_bytes())
}

impl Block {
    /// The canonical bytes that the CoSi round signs: every field except
    /// the co-sign, with the transaction list committed by its digest
    /// ([`txns_digest`]) rather than inlined. Hashing the transactions
    /// first keeps the signed record small **and** lets a
    /// [`BlockHeader`] — the block minus its transaction bodies — carry
    /// a verifiable collective signature on its own (the verified read
    /// plane's lightweight root announcement).
    pub fn signing_bytes(&self) -> Vec<u8> {
        header_signing_bytes(
            self.height,
            &txns_digest(&self.txns),
            &self.roots,
            self.decision,
            &self.prev_hash,
        )
    }

    /// Extracts this block's [`BlockHeader`]: the co-signed fields with
    /// the transactions reduced to their digest. The header's signing
    /// bytes (and therefore its collective signature and chain-link
    /// hash) are identical to the full block's.
    pub fn header(&self) -> BlockHeader {
        BlockHeader {
            height: self.height,
            txns_digest: txns_digest(&self.txns),
            roots: self.roots.clone(),
            decision: self.decision,
            prev_hash: self.prev_hash,
            cosign: self.cosign,
        }
    }

    /// The chain-link hash: SHA-256 of the signing bytes.
    pub fn hash(&self) -> Digest {
        Sha256::digest(&self.signing_bytes())
    }

    /// The root contributed by `server`, if present.
    pub fn root_of(&self, server: u32) -> Option<Digest> {
        self.roots
            .iter()
            .find(|r| r.server == server)
            .map(|r| r.root)
    }

    /// The highest transaction timestamp in the block (`None` for an
    /// empty block).
    pub fn max_txn_ts(&self) -> Option<Timestamp> {
        self.txns.iter().map(|t| t.id).max()
    }
}

/// Shared canonical encoding of the co-signed fields, used by both
/// [`Block::signing_bytes`] and [`BlockHeader::signing_bytes`] so the
/// two can never drift apart.
fn header_signing_bytes(
    height: u64,
    txns_digest: &Digest,
    roots: &[ShardRoot],
    decision: Decision,
    prev_hash: &Digest,
) -> Vec<u8> {
    let mut enc = Encoder::with_capacity(256);
    // v2: the transaction list is committed by digest (v1 inlined it).
    // Bumping the domain tag on the layout change keeps v1 signatures
    // from ever being interpreted under the v2 layout (and vice versa).
    enc.put_fixed(b"fides.block.v2");
    enc.put_u64(height);
    enc.put_digest(txns_digest);
    enc.put_seq(roots, |e, r| r.encode_into(e));
    decision.encode_into(&mut enc);
    enc.put_digest(prev_hash);
    enc.into_bytes()
}

/// A block minus its transaction bodies: the co-signed per-shard Merkle
/// roots, decision and chain link, with the transactions committed by
/// their digest.
///
/// Because [`Block::signing_bytes`] commits the transaction list as
/// [`txns_digest`], a header carries exactly the bytes the CoSi round
/// signed — its collective signature verifies stand-alone, and its
/// [`BlockHeader::hash`] equals the full block's chain-link hash. The
/// verified read plane ships headers to clients as the lightweight,
/// self-authenticating source of co-signed per-shard roots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockHeader {
    /// Position in the chain.
    pub height: u64,
    /// Digest of the block's transaction list ([`txns_digest`]).
    pub txns_digest: Digest,
    /// Per-shard Merkle roots, sorted by server index.
    pub roots: Vec<ShardRoot>,
    /// The collective decision.
    pub decision: Decision,
    /// Hash of the previous block.
    pub prev_hash: Digest,
    /// The CoSi collective signature over the signing bytes.
    pub cosign: CollectiveSignature,
}

impl BlockHeader {
    /// The canonical signed bytes — identical to the full block's.
    pub fn signing_bytes(&self) -> Vec<u8> {
        header_signing_bytes(
            self.height,
            &self.txns_digest,
            &self.roots,
            self.decision,
            &self.prev_hash,
        )
    }

    /// The chain-link hash — identical to the full block's.
    pub fn hash(&self) -> Digest {
        Sha256::digest(&self.signing_bytes())
    }

    /// Verifies the collective signature against the witness set.
    pub fn verify(&self, public_keys: &[fides_crypto::schnorr::PublicKey]) -> bool {
        self.cosign.verify(&self.signing_bytes(), public_keys)
    }

    /// The root contributed by `server`, if present.
    pub fn root_of(&self, server: u32) -> Option<Digest> {
        self.roots
            .iter()
            .find(|r| r.server == server)
            .map(|r| r.root)
    }
}

impl Encodable for BlockHeader {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_u64(self.height);
        enc.put_digest(&self.txns_digest);
        enc.put_seq(&self.roots, |e, r| r.encode_into(e));
        self.decision.encode_into(enc);
        enc.put_digest(&self.prev_hash);
        self.cosign.encode_into(enc);
    }
}

impl Decodable for BlockHeader {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(BlockHeader {
            height: dec.take_u64()?,
            txns_digest: dec.take_digest()?,
            roots: dec.take_seq(ShardRoot::decode_from)?,
            decision: Decision::decode_from(dec)?,
            prev_hash: dec.take_digest()?,
            cosign: CollectiveSignature::decode_from(dec)?,
        })
    }
}

/// Incremental construction of a block across the TFCommit phases
/// (Figure 7: the block is filled in as phases progress).
///
/// # Example
///
/// ```
/// use fides_crypto::Digest;
/// use fides_ledger::{BlockBuilder, Decision, ShardRoot};
///
/// let block = BlockBuilder::new(0, Digest::ZERO)
///     .decision(Decision::Commit)
///     .root(ShardRoot { server: 0, root: Digest::ZERO })
///     .build_unsigned();
/// assert_eq!(block.height, 0);
/// ```
#[derive(Clone, Debug)]
pub struct BlockBuilder {
    block: Block,
}

impl BlockBuilder {
    /// Starts a partially-filled block (the `<GetVote>` phase state:
    /// timestamp(s), read/write sets and previous hash known; decision,
    /// roots and co-sign pending).
    pub fn new(height: u64, prev_hash: Digest) -> Self {
        BlockBuilder {
            block: Block {
                height,
                txns: Vec::new(),
                roots: Vec::new(),
                decision: Decision::Abort,
                prev_hash,
                cosign: CollectiveSignature::placeholder(),
            },
        }
    }

    /// Adds a transaction record.
    pub fn txn(mut self, txn: TxnRecord) -> Self {
        self.block.txns.push(txn);
        self
    }

    /// Adds several transaction records.
    pub fn txns(mut self, txns: impl IntoIterator<Item = TxnRecord>) -> Self {
        self.block.txns.extend(txns);
        self
    }

    /// Records one shard root (keeps the list sorted by server index so
    /// the encoding is canonical).
    pub fn root(mut self, root: ShardRoot) -> Self {
        let pos = self.block.roots.partition_point(|r| r.server < root.server);
        self.block.roots.insert(pos, root);
        self
    }

    /// Sets the decision (the `<SchChallenge>` phase fills this in).
    pub fn decision(mut self, decision: Decision) -> Self {
        self.block.decision = decision;
        self
    }

    /// Finishes with a placeholder co-sign (before the CoSi round
    /// completes).
    pub fn build_unsigned(self) -> Block {
        self.block
    }

    /// Finishes with the assembled collective signature.
    pub fn build_signed(mut self, cosign: CollectiveSignature) -> Block {
        self.block.cosign = cosign;
        self.block
    }
}

impl Encodable for Decision {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_u8(match self {
            Decision::Commit => 1,
            Decision::Abort => 0,
        });
    }
}

impl Decodable for Decision {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.take_u8()? {
            1 => Ok(Decision::Commit),
            0 => Ok(Decision::Abort),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

impl Encodable for TxnRecord {
    fn encode_into(&self, enc: &mut Encoder) {
        self.id.encode_into(enc);
        enc.put_seq(&self.read_set, |e, r| r.encode_into(e));
        enc.put_seq(&self.write_set, |e, w| w.encode_into(e));
    }
}

impl Decodable for TxnRecord {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(TxnRecord {
            id: Timestamp::decode_from(dec)?,
            read_set: dec.take_seq(ReadEntry::decode_from)?,
            write_set: dec.take_seq(WriteEntry::decode_from)?,
        })
    }
}

impl Encodable for ShardRoot {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_u32(self.server);
        enc.put_digest(&self.root);
    }
}

impl Decodable for ShardRoot {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(ShardRoot {
            server: dec.take_u32()?,
            root: dec.take_digest()?,
        })
    }
}

impl Encodable for Block {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_u64(self.height);
        enc.put_seq(&self.txns, |e, t| t.encode_into(e));
        enc.put_seq(&self.roots, |e, r| r.encode_into(e));
        self.decision.encode_into(enc);
        enc.put_digest(&self.prev_hash);
        self.cosign.encode_into(enc);
    }
}

impl Decodable for Block {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Block {
            height: dec.take_u64()?,
            txns: dec.take_seq(TxnRecord::decode_from)?,
            roots: dec.take_seq(ShardRoot::decode_from)?,
            decision: Decision::decode_from(dec)?,
            prev_hash: dec.take_digest()?,
            cosign: CollectiveSignature::decode_from(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fides_store::types::{Key, Value};

    fn sample_txn(ts: u64) -> TxnRecord {
        TxnRecord {
            id: Timestamp::new(ts, 1),
            read_set: vec![ReadEntry {
                key: Key::new("x"),
                value: Value::from_i64(1000),
                rts: Timestamp::new(92, 0),
                wts: Timestamp::new(88, 0),
            }],
            write_set: vec![WriteEntry {
                key: Key::new("x"),
                new_value: Value::from_i64(900),
                old_value: None,
                rts: Timestamp::new(92, 0),
                wts: Timestamp::new(88, 0),
            }],
        }
    }

    fn sample_block(height: u64, prev: Digest) -> Block {
        BlockBuilder::new(height, prev)
            .txn(sample_txn(100 + height))
            .root(ShardRoot {
                server: 1,
                root: Digest::new([height as u8; 32]),
            })
            .root(ShardRoot {
                server: 0,
                root: Digest::new([7; 32]),
            })
            .decision(Decision::Commit)
            .build_unsigned()
    }

    #[test]
    fn roots_kept_sorted_by_server() {
        let b = sample_block(0, Digest::ZERO);
        assert_eq!(b.roots[0].server, 0);
        assert_eq!(b.roots[1].server, 1);
    }

    #[test]
    fn block_encoding_roundtrip() {
        let b = sample_block(3, Digest::new([9; 32]));
        assert_eq!(Block::decode(&b.encode()).unwrap(), b);
    }

    #[test]
    fn hash_covers_contents_not_cosign() {
        let b1 = sample_block(0, Digest::ZERO);
        let mut b2 = b1.clone();
        // Attaching a (placeholder) signature must not change the link.
        b2.cosign = CollectiveSignature::placeholder();
        assert_eq!(b1.hash(), b2.hash());
        // But changing content must.
        let mut b3 = b1.clone();
        b3.decision = Decision::Abort;
        assert_ne!(b1.hash(), b3.hash());
    }

    #[test]
    fn signing_bytes_bind_every_field() {
        let base = sample_block(0, Digest::ZERO);
        let mut variants = Vec::new();
        let mut v = base.clone();
        v.height = 1;
        variants.push(v);
        let mut v = base.clone();
        v.prev_hash = Digest::new([1; 32]);
        variants.push(v);
        let mut v = base.clone();
        v.decision = Decision::Abort;
        variants.push(v);
        let mut v = base.clone();
        v.roots.pop();
        variants.push(v);
        let mut v = base.clone();
        v.txns[0].write_set[0].new_value = Value::from_i64(901);
        variants.push(v);
        for variant in variants {
            assert_ne!(variant.signing_bytes(), base.signing_bytes());
        }
    }

    #[test]
    fn root_of_lookup() {
        let b = sample_block(0, Digest::ZERO);
        assert_eq!(b.root_of(1), Some(Digest::new([0; 32])));
        assert!(b.root_of(42).is_none());
    }

    #[test]
    fn max_txn_ts() {
        let b = BlockBuilder::new(0, Digest::ZERO)
            .txn(sample_txn(5))
            .txn(sample_txn(9))
            .txn(sample_txn(7))
            .decision(Decision::Commit)
            .build_unsigned();
        assert_eq!(b.max_txn_ts(), Some(Timestamp::new(9, 1)));
        let empty = BlockBuilder::new(0, Digest::ZERO).build_unsigned();
        assert!(empty.max_txn_ts().is_none());
    }

    #[test]
    fn header_signing_bytes_match_block() {
        let b = sample_block(3, Digest::new([9; 32]));
        let h = b.header();
        assert_eq!(h.signing_bytes(), b.signing_bytes());
        assert_eq!(h.hash(), b.hash());
        assert_eq!(h.root_of(1), b.root_of(1));
        assert_eq!(h.root_of(42), None);
    }

    #[test]
    fn header_encoding_roundtrip() {
        let h = sample_block(2, Digest::new([4; 32])).header();
        assert_eq!(BlockHeader::decode(&h.encode()).unwrap(), h);
    }

    #[test]
    fn header_verifies_standalone() {
        use fides_crypto::cosi::{self, Witness};
        use fides_crypto::schnorr::KeyPair;
        let keys: Vec<KeyPair> = (0..3u8).map(|i| KeyPair::from_seed(&[i, 0x55])).collect();
        let pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();
        let unsigned = sample_block(0, Digest::ZERO);
        let record = unsigned.signing_bytes();
        let witnesses: Vec<Witness> = keys
            .iter()
            .map(|k| Witness::commit(k, b"hdr", &record))
            .collect();
        let agg = cosi::aggregate_commitments(witnesses.iter().map(|w| w.commitment()));
        let c = cosi::challenge(&agg, &record);
        let sig = cosi::CollectiveSignature::assemble(agg, witnesses.iter().map(|w| w.respond(&c)));
        let block = Block {
            cosign: sig,
            ..unsigned
        };
        let header = block.header();
        // The header verifies without the transaction bodies...
        assert!(header.verify(&pks));
        // ...and any doctored field breaks it.
        let mut forged = header.clone();
        forged.roots[0].root = Digest::new([0xEE; 32]);
        assert!(!forged.verify(&pks));
        let mut forged = header.clone();
        forged.height += 1;
        assert!(!forged.verify(&pks));
        let mut forged = header;
        forged.txns_digest = Digest::ZERO;
        assert!(!forged.verify(&pks));
    }

    #[test]
    fn txns_digest_binds_transactions() {
        let a = txns_digest(&[sample_txn(1)]);
        let b = txns_digest(&[sample_txn(2)]);
        assert_ne!(a, b);
        assert_eq!(a, txns_digest(&[sample_txn(1)]));
    }

    #[test]
    fn decision_roundtrip_and_bad_tag() {
        assert_eq!(
            Decision::decode(&Decision::Commit.encode()).unwrap(),
            Decision::Commit
        );
        assert_eq!(
            Decision::decode(&Decision::Abort.encode()).unwrap(),
            Decision::Abort
        );
        assert!(Decision::decode(&[7]).is_err());
    }
}
