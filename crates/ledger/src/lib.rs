//! The tamper-proof, globally replicated transaction log of Fides
//! (paper §3.1, §4.1 Table 1, §4.4).
//!
//! Fides replaces per-server ARIES-style logs with a single logical log
//! replicated on every server: a linked list of blocks chained by
//! cryptographic hash pointers, where each block carries the
//! transactions it committed, the Merkle roots of every involved shard,
//! the commit/abort decision and a CoSi collective signature produced by
//! TFCommit.
//!
//! * [`block`] — the [`Block`] structure (Table 1) and its canonical
//!   encoding,
//! * [`log`] — the append-only [`TamperProofLog`] plus the
//!   fault-injection hooks used to model malicious servers,
//! * [`validate`] — chain validation and the auditor's
//!   correct-and-complete log selection (Lemmas 6 and 7).

pub mod block;
pub mod log;
pub mod validate;

pub use block::{txns_digest, Block, BlockBuilder, BlockHeader, Decision, ShardRoot, TxnRecord};
pub use log::{LogError, TamperProofLog};
pub use validate::{
    select_canonical_log, validate_chain, ChainFault, ChainFaultKind, LogAssessment, LogSelection,
};
