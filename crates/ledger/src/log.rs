//! The append-only tamper-proof log and the fault-injection hooks that
//! model a malicious server's tampering (paper §4.4).

use core::fmt;

use fides_crypto::Digest;

use crate::block::Block;

/// Errors from honest log maintenance.
///
/// # Example
///
/// Both variants surface from [`TamperProofLog::append`]: a block whose
/// height is not the next one is [`LogError::WrongHeight`]; a block at
/// the right height whose `prev_hash` does not match the tail is
/// [`LogError::BrokenLink`].
///
/// ```
/// use fides_crypto::Digest;
/// use fides_ledger::{BlockBuilder, Decision, LogError, TamperProofLog};
///
/// let mut log = TamperProofLog::new();
/// let genesis = BlockBuilder::new(0, Digest::ZERO)
///     .decision(Decision::Commit)
///     .build_unsigned();
/// log.append(genesis)?;
///
/// // Wrong height: the log expects height 1 next.
/// let skipped = BlockBuilder::new(5, log.tip_hash())
///     .decision(Decision::Commit)
///     .build_unsigned();
/// assert_eq!(log.append(skipped), Err(LogError::WrongHeight { got: 5, expected: 1 }));
///
/// // Broken link: right height, but prev_hash is not the tip hash.
/// let unlinked = BlockBuilder::new(1, Digest::new([0xAA; 32]))
///     .decision(Decision::Commit)
///     .build_unsigned();
/// assert_eq!(log.append(unlinked), Err(LogError::BrokenLink));
/// # Ok::<(), LogError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogError {
    /// The appended block's height is not `len()`.
    WrongHeight {
        /// Height carried by the rejected block.
        got: u64,
        /// Height the log expected.
        expected: u64,
    },
    /// The appended block's `prev_hash` does not match the tail.
    BrokenLink,
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::WrongHeight { got, expected } => {
                write!(f, "block height {got}, expected {expected}")
            }
            LogError::BrokenLink => write!(f, "block prev_hash does not match log tail"),
        }
    }
}

impl std::error::Error for LogError {}

/// One server's copy of the globally replicated log: a hash-linked list
/// of collectively signed blocks.
///
/// # Example
///
/// ```
/// use fides_crypto::Digest;
/// use fides_ledger::{BlockBuilder, Decision, TamperProofLog};
///
/// let mut log = TamperProofLog::new();
/// let genesis = BlockBuilder::new(0, Digest::ZERO)
///     .decision(Decision::Commit)
///     .build_unsigned();
/// let h0 = genesis.hash();
/// log.append(genesis)?;
/// let next = BlockBuilder::new(1, h0).decision(Decision::Commit).build_unsigned();
/// log.append(next)?;
/// assert_eq!(log.len(), 2);
/// # Ok::<(), fides_ledger::LogError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TamperProofLog {
    blocks: Vec<Block>,
    /// Height of `blocks[0]` — 0 for a full log; higher for a **suffix
    /// log** recovered from a WAL whose prefix was pruned below a
    /// snapshot (the snapshot vouches for the missing history).
    base: u64,
    /// The hash the block at `base` links to — [`Digest::ZERO`] for a
    /// full log, the checkpointed tip hash for a suffix log.
    base_tip: Digest,
}

impl TamperProofLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        TamperProofLog::default()
    }

    /// Builds a log from a sequence of blocks, enforcing the same
    /// height-continuity and hash-link invariants as [`append`] at every
    /// position — the constructor crash recovery uses to rebuild a log
    /// from a write-ahead log's records.
    ///
    /// Link checking alone does not authenticate the blocks; run
    /// [`crate::validate::validate_chain`] afterwards to verify the
    /// collective signatures when the source is untrusted.
    ///
    /// [`append`]: TamperProofLog::append
    ///
    /// # Errors
    ///
    /// The first [`LogError`] encountered, at the offending block.
    pub fn from_blocks(blocks: Vec<Block>) -> Result<Self, LogError> {
        let mut log = TamperProofLog::new();
        for block in blocks {
            log.append(block)?;
        }
        Ok(log)
    }

    /// Builds a **suffix log**: a chain starting at height `base` whose
    /// first block must link to `base_tip` — the shape recovery
    /// produces when the WAL below a snapshot was pruned and no archive
    /// holds the evicted segments. The same height-continuity and
    /// hash-link invariants as [`TamperProofLog::from_blocks`] apply at
    /// every position.
    ///
    /// # Errors
    ///
    /// The first [`LogError`] encountered, at the offending block.
    pub fn from_suffix(base: u64, base_tip: Digest, blocks: Vec<Block>) -> Result<Self, LogError> {
        let mut log = TamperProofLog {
            blocks: Vec::new(),
            base,
            base_tip,
        };
        for block in blocks {
            log.append(block)?;
        }
        Ok(log)
    }

    /// Builds a log from pre-validated blocks without any checking (the
    /// auditor's canonical log reconstruction, where the blocks come
    /// from an already-validated log). Prefer
    /// [`TamperProofLog::from_blocks`] for untrusted sources.
    pub fn from_blocks_unchecked(blocks: Vec<Block>) -> Self {
        TamperProofLog {
            blocks,
            ..TamperProofLog::default()
        }
    }

    /// Number of blocks held (for a suffix log, the suffix length).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Height of the first held block (0 unless this is a suffix log).
    pub fn base_height(&self) -> u64 {
        self.base
    }

    /// The hash the first held block links to ([`Digest::ZERO`] unless
    /// this is a suffix log).
    pub fn base_tip(&self) -> Digest {
        self.base_tip
    }

    /// The height the next appended block must carry — the log's tip
    /// height. Unlike [`TamperProofLog::len`], this stays correct for
    /// suffix logs.
    pub fn next_height(&self) -> u64 {
        self.base + self.blocks.len() as u64
    }

    /// Returns `true` for a block-less log.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The hash the next appended block must use as `prev_hash`
    /// ([`Digest::ZERO`] for an empty log).
    pub fn tip_hash(&self) -> Digest {
        self.blocks.last().map_or(self.base_tip, |b| b.hash())
    }

    /// The block at `height`, if present.
    pub fn get(&self, height: u64) -> Option<&Block> {
        let index = height.checked_sub(self.base)?;
        self.blocks.get(index as usize)
    }

    /// All blocks as a slice, from genesis to tip.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The newest block.
    pub fn last(&self) -> Option<&Block> {
        self.blocks.last()
    }

    /// Iterates over blocks from genesis to tip.
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// All blocks, by value (for transferring logs to the auditor).
    pub fn to_blocks(&self) -> Vec<Block> {
        self.blocks.clone()
    }

    /// A range read for state transfer: up to `max` blocks starting at
    /// height `from`, cloned in height order. Empty when `from` lies
    /// below [`TamperProofLog::base_height`] (the prefix was pruned — a
    /// repair peer must fall back to its archive or a checkpoint) or at
    /// or above the tip.
    pub fn blocks_from(&self, from: u64, max: usize) -> Vec<Block> {
        let Some(start) = from.checked_sub(self.base) else {
            return Vec::new();
        };
        let start = start as usize;
        if start >= self.blocks.len() {
            return Vec::new();
        }
        let end = start.saturating_add(max).min(self.blocks.len());
        self.blocks[start..end].to_vec()
    }

    /// Appends a block after checking height continuity and the hash
    /// link — what every *correct* server does at the end of a TFCommit
    /// round (§4.1 step 6).
    ///
    /// # Errors
    ///
    /// [`LogError::WrongHeight`] or [`LogError::BrokenLink`] when the
    /// block does not extend this log.
    pub fn append(&mut self, block: Block) -> Result<(), LogError> {
        let expected = self.next_height();
        if block.height != expected {
            return Err(LogError::WrongHeight {
                got: block.height,
                expected,
            });
        }
        if block.prev_hash != self.tip_hash() {
            return Err(LogError::BrokenLink);
        }
        self.blocks.push(block);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Fault injection (modelling §4.4's malicious behaviours). These
    // bypass all validation on purpose.
    // ------------------------------------------------------------------

    /// Tamper with an arbitrary block in place (§4.4 (i)).
    #[doc(hidden)]
    pub fn tamper_block(&mut self, height: u64, mutate: impl FnOnce(&mut Block)) -> bool {
        let Some(index) = height.checked_sub(self.base) else {
            return false;
        };
        match self.blocks.get_mut(index as usize) {
            Some(b) => {
                mutate(b);
                true
            }
            None => false,
        }
    }

    /// Reorder the log by swapping two blocks (§4.4 (ii)).
    #[doc(hidden)]
    pub fn reorder_blocks(&mut self, a: u64, b: u64) -> bool {
        let (a, b) = (a as usize, b as usize);
        if a < self.blocks.len() && b < self.blocks.len() && a != b {
            self.blocks.swap(a, b);
            true
        } else {
            false
        }
    }

    /// Omit the tail of the log (§4.4 (iii)).
    #[doc(hidden)]
    pub fn truncate(&mut self, keep: usize) {
        self.blocks.truncate(keep);
    }
}

impl<'a> IntoIterator for &'a TamperProofLog {
    type Item = &'a Block;
    type IntoIter = std::slice::Iter<'a, Block>;
    fn into_iter(self) -> Self::IntoIter {
        self.blocks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockBuilder, Decision};

    fn chain(n: u64) -> TamperProofLog {
        let mut log = TamperProofLog::new();
        for h in 0..n {
            let block = BlockBuilder::new(h, log.tip_hash())
                .decision(Decision::Commit)
                .build_unsigned();
            log.append(block).unwrap();
        }
        log
    }

    #[test]
    fn append_builds_chain() {
        let log = chain(5);
        assert_eq!(log.len(), 5);
        for h in 1..5u64 {
            assert_eq!(
                log.get(h).unwrap().prev_hash,
                log.get(h - 1).unwrap().hash()
            );
        }
    }

    #[test]
    fn genesis_prev_is_zero() {
        let log = chain(1);
        assert_eq!(log.get(0).unwrap().prev_hash, Digest::ZERO);
    }

    #[test]
    fn wrong_height_rejected() {
        let mut log = chain(2);
        let bad = BlockBuilder::new(5, log.tip_hash())
            .decision(Decision::Commit)
            .build_unsigned();
        assert_eq!(
            log.append(bad),
            Err(LogError::WrongHeight {
                got: 5,
                expected: 2
            })
        );
    }

    #[test]
    fn broken_link_rejected() {
        let mut log = chain(2);
        let bad = BlockBuilder::new(2, Digest::new([0xAA; 32]))
            .decision(Decision::Commit)
            .build_unsigned();
        assert_eq!(log.append(bad), Err(LogError::BrokenLink));
    }

    #[test]
    fn tamper_hook_mutates() {
        let mut log = chain(3);
        assert!(log.tamper_block(1, |b| b.decision = Decision::Abort));
        assert_eq!(log.get(1).unwrap().decision, Decision::Abort);
        assert!(!log.tamper_block(9, |_| {}));
    }

    #[test]
    fn reorder_hook_swaps() {
        let mut log = chain(3);
        let h0 = log.get(0).unwrap().hash();
        let h2 = log.get(2).unwrap().hash();
        assert!(log.reorder_blocks(0, 2));
        assert_eq!(log.get(0).unwrap().hash(), h2);
        assert_eq!(log.get(2).unwrap().hash(), h0);
        assert!(!log.reorder_blocks(0, 0));
        assert!(!log.reorder_blocks(0, 10));
    }

    #[test]
    fn truncate_hook_drops_tail() {
        let mut log = chain(5);
        log.truncate(2);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn from_blocks_checks_links() {
        let good = chain(4);
        let rebuilt = TamperProofLog::from_blocks(good.to_blocks()).unwrap();
        assert_eq!(rebuilt, good);
        assert_eq!(rebuilt.blocks().len(), 4);

        // A broken hash link is caught at the offending position.
        let mut blocks = good.to_blocks();
        blocks[2].prev_hash = Digest::new([0xAB; 32]);
        assert_eq!(
            TamperProofLog::from_blocks(blocks),
            Err(LogError::BrokenLink)
        );

        // A height gap is caught too.
        let mut blocks = good.to_blocks();
        blocks.remove(1);
        assert!(matches!(
            TamperProofLog::from_blocks(blocks),
            Err(LogError::WrongHeight {
                got: 2,
                expected: 1
            })
        ));

        // The unchecked constructor accepts anything.
        let mut blocks = good.to_blocks();
        blocks.swap(0, 3);
        assert_eq!(TamperProofLog::from_blocks_unchecked(blocks).len(), 4);
    }

    #[test]
    fn suffix_log_chains_from_base_tip() {
        let full = chain(6);
        let base = 4u64;
        let base_tip = full.get(base - 1).unwrap().hash();
        let tail: Vec<Block> = full.blocks()[base as usize..].to_vec();

        let suffix = TamperProofLog::from_suffix(base, base_tip, tail.clone()).unwrap();
        assert_eq!(suffix.len(), 2);
        assert_eq!(suffix.base_height(), 4);
        assert_eq!(suffix.next_height(), 6);
        assert_eq!(suffix.tip_hash(), full.tip_hash());
        assert_eq!(suffix.get(4).unwrap().height, 4);
        assert!(suffix.get(0).is_none(), "pruned heights are absent");

        // Appending continues at the true height.
        let mut suffix = suffix;
        let next = BlockBuilder::new(6, suffix.tip_hash())
            .decision(Decision::Commit)
            .build_unsigned();
        suffix.append(next).unwrap();
        assert_eq!(suffix.next_height(), 7);

        // A suffix that does not link to the base tip is rejected.
        assert_eq!(
            TamperProofLog::from_suffix(base, Digest::new([9; 32]), tail),
            Err(LogError::BrokenLink)
        );
    }

    #[test]
    fn empty_suffix_tip_is_base_tip() {
        let tip = Digest::new([3; 32]);
        let suffix = TamperProofLog::from_suffix(7, tip, Vec::new()).unwrap();
        assert_eq!(suffix.tip_hash(), tip);
        assert_eq!(suffix.next_height(), 7);
        assert!(suffix.is_empty());
    }

    #[test]
    fn blocks_from_is_clamped_and_base_aware() {
        let log = chain(6);
        let got = log.blocks_from(2, 3);
        assert_eq!(
            got.iter().map(|b| b.height).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(log.blocks_from(5, 10).len(), 1);
        assert!(log.blocks_from(6, 10).is_empty());

        let base = 3u64;
        let base_tip = log.get(base - 1).unwrap().hash();
        let tail: Vec<Block> = log.blocks()[base as usize..].to_vec();
        let suffix = TamperProofLog::from_suffix(base, base_tip, tail).unwrap();
        assert!(
            suffix.blocks_from(1, 10).is_empty(),
            "pruned heights are unservable"
        );
        assert_eq!(suffix.blocks_from(4, 10).len(), 2);
    }

    #[test]
    fn iteration_order_is_height_order() {
        let log = chain(4);
        let heights: Vec<u64> = log.iter().map(|b| b.height).collect();
        assert_eq!(heights, vec![0, 1, 2, 3]);
    }
}
