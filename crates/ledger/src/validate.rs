//! Chain validation and the auditor's log selection (paper Lemmas 6–7).
//!
//! During an audit, the auditor "gathers the tamper-proof logs from all
//! the servers" and, relying on at least one server being correct,
//! "identifies the correct and complete log" (§3.3, §4.4). This module
//! implements both halves:
//!
//! * [`validate_chain`] — Lemma 6: a log with a modified or re-ordered
//!   block fails either the per-block collective-signature check or the
//!   hash-pointer check, at a pinpointed height.
//! * [`select_canonical_log`] — Lemma 7: among the gathered logs, every
//!   *valid* log is a prefix of the longest valid log; shorter ones are
//!   flagged as incomplete (omitted tail), invalid ones as tampered.

use core::fmt;

use fides_crypto::cosi;
use fides_crypto::schnorr::PublicKey;
use fides_crypto::Digest;

use crate::block::Block;
use crate::log::{LogError, TamperProofLog};

/// Why a block failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainFaultKind {
    /// The block's height does not match its position.
    BadHeight,
    /// `prev_hash` does not match the preceding block's hash.
    BadHashLink,
    /// The collective signature does not verify over the block's
    /// signing bytes.
    BadCollectiveSignature,
}

impl fmt::Display for ChainFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainFaultKind::BadHeight => write!(f, "height mismatch"),
            ChainFaultKind::BadHashLink => write!(f, "broken hash pointer"),
            ChainFaultKind::BadCollectiveSignature => write!(f, "invalid collective signature"),
        }
    }
}

/// A validation failure at a specific block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainFault {
    /// Position (index) of the offending block.
    pub height: u64,
    /// What failed.
    pub kind: ChainFaultKind,
}

impl fmt::Display for ChainFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block {}: {}", self.height, self.kind)
    }
}

/// Validates a log against the server group's public keys: height
/// continuity, hash pointers and per-block collective signatures.
///
/// The signature work runs through [`cosi::verify_batch`]: one
/// random-linear-combination multi-scalar check for the whole log
/// instead of one full verification per block. Only when the batch
/// check fails does validation fall back to per-block
/// [`verify`](fides_crypto::cosi::CollectiveSignature::verify) to
/// pinpoint the offending height — audit semantics (which block, which
/// fault kind) are identical to block-by-block validation, at a
/// fraction of the cost for honest logs (the common case: every audit
/// validates every server's full log copy).
///
/// # Errors
///
/// Returns the first [`ChainFault`] encountered, which pinpoints "the
/// precise point in the execution history at which a fault occurred"
/// (§1). Within a block, faults surface in the order height → hash
/// link → signature, exactly as a sequential scan would report them.
pub fn validate_chain(log: &TamperProofLog, witness_keys: &[PublicKey]) -> Result<(), ChainFault> {
    // Structural pass: heights and hash pointers, plus the signing
    // bytes of every block that precedes the first structural fault
    // (only those blocks' signatures can influence the reported fault).
    // A suffix log (recovered above a pruned WAL prefix) starts at its
    // base height and links to the checkpointed base tip; a full log
    // has base 0 and links to the zero digest.
    let base = log.base_height();
    let mut structural: Option<ChainFault> = None;
    let mut records: Vec<Vec<u8>> = Vec::with_capacity(log.len());
    let mut prev = log.base_tip();
    for (i, block) in log.iter().enumerate() {
        let height = base + i as u64;
        if block.height != height {
            structural = Some(ChainFault {
                height,
                kind: ChainFaultKind::BadHeight,
            });
            break;
        }
        if block.prev_hash != prev {
            structural = Some(ChainFault {
                height,
                kind: ChainFaultKind::BadHashLink,
            });
            break;
        }
        records.push(block.signing_bytes());
        prev = block.hash();
    }

    // Batched signature pass over the structurally sound prefix.
    let items: Vec<(&[u8], cosi::CollectiveSignature)> = records
        .iter()
        .map(Vec::as_slice)
        .zip(log.iter().map(|b| b.cosign))
        .collect();
    if !cosi::verify_batch(&items, witness_keys) {
        // Fallback: scan per block to attribute the precise height. A
        // failing batch implies at least one individual failure (a
        // fully valid batch always passes the combined check).
        for (i, (record, sig)) in items.iter().enumerate() {
            if !sig.verify(record, witness_keys) {
                return Err(ChainFault {
                    height: base + i as u64,
                    kind: ChainFaultKind::BadCollectiveSignature,
                });
            }
        }
    }
    match structural {
        Some(fault) => Err(fault),
        None => Ok(()),
    }
}

/// Why a transferred block range was refused (anti-entropy state
/// transfer: a repairing server re-verifies everything a peer serves
/// before applying a single byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferFault {
    /// The blocks do not form a height-continuous hash chain starting
    /// at the expected base.
    Structure(LogError),
    /// The chain is structurally sound but a collective signature (or
    /// a height/link relative to the base) fails verification.
    Chain(ChainFault),
}

impl fmt::Display for TransferFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferFault::Structure(e) => write!(f, "transferred blocks are not a chain: {e}"),
            TransferFault::Chain(fault) => {
                write!(f, "transferred chain fails verification: {fault}")
            }
        }
    }
}

impl std::error::Error for TransferFault {}

/// Validates a transferred block range against a trusted anchor: the
/// blocks must form a chain starting at height `base` whose first block
/// links to `base_tip`, and (under TFCommit) every collective signature
/// must verify over `witness_keys` — the batched
/// [`cosi::verify_batch`] path, same as [`validate_chain`].
///
/// The anchor makes the verification Byzantine-proof end to end: for an
/// extension transfer `base_tip` is the receiving server's own verified
/// tip hash; for a checkpoint-bootstrapped transfer it is the
/// checkpoint's recorded tip hash, which the co-signed `prev_hash` of
/// the first transferred block must reproduce — a forged checkpoint or
/// a tampered suffix cannot survive both checks.
///
/// Returns the verified suffix log (base-aware, ready to adopt).
///
/// # Errors
///
/// The first [`TransferFault`], pinpointing the offending block.
pub fn validate_transfer(
    base: u64,
    base_tip: Digest,
    blocks: Vec<Block>,
    witness_keys: &[PublicKey],
    verify_cosign: bool,
) -> Result<TamperProofLog, TransferFault> {
    let log =
        TamperProofLog::from_suffix(base, base_tip, blocks).map_err(TransferFault::Structure)?;
    if verify_cosign {
        validate_chain(&log, witness_keys).map_err(TransferFault::Chain)?;
    }
    Ok(log)
}

/// The auditor's verdict on one server's log copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogAssessment {
    /// Valid and reaching the canonical tip height. A suffix log whose
    /// pruned prefix is vouched for by a checkpoint still counts as
    /// complete — omission faults are about the *tail* (§4.4 (iii)).
    Complete,
    /// Valid but missing the canonical tail (§4.4 (iii)): the server's
    /// tip stops `canonical_len - len` blocks short.
    Incomplete {
        /// The server's tip height.
        len: usize,
        /// Canonical tip height.
        canonical_len: usize,
    },
    /// Chain validation failed — the log was tampered with or reordered.
    Tampered(ChainFault),
    /// Valid chain that is *not* a prefix of the canonical log — only
    /// possible if all servers colluded to co-sign two histories
    /// (equivocation evidence).
    Forked {
        /// First height at which the block hash diverges.
        height: u64,
    },
}

impl LogAssessment {
    /// `true` for [`LogAssessment::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, LogAssessment::Complete)
    }
}

/// The outcome of the auditor's log-gathering step.
#[derive(Debug, Clone)]
pub struct LogSelection {
    /// The correct and complete log (Lemma 7) — the longest valid one.
    pub canonical: TamperProofLog,
    /// Index (into the input slice) of the server whose log was chosen.
    pub source: usize,
    /// Per-input assessments, aligned with the input slice.
    pub assessments: Vec<LogAssessment>,
}

/// Selects the correct and complete log from the copies gathered from
/// all servers, assessing each copy (Lemmas 6 and 7).
///
/// Base-aware: a server that legitimately pruned its prefix below a
/// checkpoint surrenders a *suffix* log. The canonical log is the valid
/// copy with the highest tip (ties broken toward the most retained
/// history), every copy is compared to it height-by-height over their
/// overlap, and a suffix log must additionally *link into* the
/// canonical chain at its base — so a pruned-prefix copy that belongs
/// to a different history is still flagged as forked.
///
/// # Panics
///
/// Panics if `logs` is empty or if **no** log validates — both violate
/// the paper's standing assumption that at least one server is correct
/// and failure-free (§3.2).
pub fn select_canonical_log(logs: &[TamperProofLog], witness_keys: &[PublicKey]) -> LogSelection {
    assert!(!logs.is_empty(), "no logs gathered");
    let verdicts: Vec<Result<(), ChainFault>> = logs
        .iter()
        .map(|log| validate_chain(log, witness_keys))
        .collect();

    let (source, canonical) = logs
        .iter()
        .enumerate()
        .filter(|(i, _)| verdicts[*i].is_ok())
        .max_by_key(|(_, log)| (log.next_height(), core::cmp::Reverse(log.base_height())))
        .map(|(i, log)| (i, log.clone()))
        .expect("at least one server is correct (paper assumption, §3.2)");

    let assessments = logs
        .iter()
        .zip(&verdicts)
        .map(|(log, verdict)| match verdict {
            Err(fault) => LogAssessment::Tampered(*fault),
            Ok(()) => {
                // Hash agreement over the overlapping height range.
                let lo = log.base_height().max(canonical.base_height());
                let hi = log.next_height().min(canonical.next_height());
                for h in lo..hi {
                    let (a, b) = (log.get(h), canonical.get(h));
                    if a.map(Block::hash) != b.map(Block::hash) {
                        return LogAssessment::Forked { height: h };
                    }
                }
                // A suffix log must link into the other chain at its
                // base (and vice versa when the canonical prunes more).
                let linked = if log.base_height() > canonical.base_height() {
                    canonical.get(log.base_height() - 1).map(Block::hash) == Some(log.base_tip())
                } else if canonical.base_height() > log.base_height() {
                    log.get(canonical.base_height() - 1).map(Block::hash)
                        == Some(canonical.base_tip())
                } else {
                    log.base_tip() == canonical.base_tip()
                };
                if !linked {
                    return LogAssessment::Forked {
                        height: log.base_height().max(canonical.base_height()),
                    };
                }
                if log.next_height() < canonical.next_height() {
                    LogAssessment::Incomplete {
                        len: log.next_height() as usize,
                        canonical_len: canonical.next_height() as usize,
                    }
                } else {
                    LogAssessment::Complete
                }
            }
        })
        .collect();

    LogSelection {
        canonical,
        source,
        assessments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, BlockBuilder, Decision, ShardRoot};
    use fides_crypto::cosi::{self, Witness};
    use fides_crypto::schnorr::KeyPair;
    use fides_crypto::Digest;

    /// Builds a properly co-signed chain of `n` blocks over `keys`.
    fn signed_chain(n: u64, keys: &[KeyPair]) -> TamperProofLog {
        let mut log = TamperProofLog::new();
        for h in 0..n {
            let unsigned = BlockBuilder::new(h, log.tip_hash())
                .decision(Decision::Commit)
                .root(ShardRoot {
                    server: 0,
                    root: Digest::new([h as u8; 32]),
                })
                .build_unsigned();
            let record = unsigned.signing_bytes();
            let round_id = h.to_be_bytes();
            let witnesses: Vec<Witness> = keys
                .iter()
                .map(|k| Witness::commit(k, &round_id, &record))
                .collect();
            let agg = cosi::aggregate_commitments(witnesses.iter().map(|w| w.commitment()));
            let c = cosi::challenge(&agg, &record);
            let sig =
                cosi::CollectiveSignature::assemble(agg, witnesses.iter().map(|w| w.respond(&c)));
            let block = Block {
                cosign: sig,
                ..unsigned
            };
            log.append(block).unwrap();
        }
        log
    }

    fn keys(n: u8) -> Vec<KeyPair> {
        (0..n).map(|i| KeyPair::from_seed(&[i, 0x33])).collect()
    }

    fn pks(keys: &[KeyPair]) -> Vec<PublicKey> {
        keys.iter().map(|k| k.public_key()).collect()
    }

    #[test]
    fn honest_chain_validates() {
        let ks = keys(4);
        let log = signed_chain(5, &ks);
        assert!(validate_chain(&log, &pks(&ks)).is_ok());
    }

    #[test]
    fn empty_log_validates() {
        let ks = keys(2);
        assert!(validate_chain(&TamperProofLog::new(), &pks(&ks)).is_ok());
    }

    #[test]
    fn tampered_block_detected_at_height_lemma6() {
        let ks = keys(4);
        let mut log = signed_chain(5, &ks);
        log.tamper_block(2, |b| b.decision = Decision::Abort);
        let fault = validate_chain(&log, &pks(&ks)).unwrap_err();
        // The tampered block's own signature breaks first.
        assert_eq!(fault.height, 2);
        assert_eq!(fault.kind, ChainFaultKind::BadCollectiveSignature);
    }

    #[test]
    fn tampering_also_breaks_the_next_link() {
        let ks = keys(3);
        let mut log = signed_chain(5, &ks);
        // Tamper only the cosign (content unchanged): chain links stay
        // intact but the signature check fails.
        log.tamper_block(1, |b| {
            b.cosign = fides_crypto::cosi::CollectiveSignature::placeholder()
        });
        let fault = validate_chain(&log, &pks(&ks)).unwrap_err();
        assert_eq!(fault.height, 1);
        assert_eq!(fault.kind, ChainFaultKind::BadCollectiveSignature);
    }

    #[test]
    fn reordered_blocks_detected_lemma6() {
        let ks = keys(4);
        let mut log = signed_chain(5, &ks);
        log.reorder_blocks(1, 3);
        let fault = validate_chain(&log, &pks(&ks)).unwrap_err();
        assert_eq!(fault.height, 1);
        assert_eq!(fault.kind, ChainFaultKind::BadHeight);
    }

    #[test]
    fn wrong_witness_set_fails_signature() {
        let ks = keys(4);
        let log = signed_chain(2, &ks);
        let other = keys(3);
        let fault = validate_chain(&log, &pks(&other)).unwrap_err();
        assert_eq!(fault.kind, ChainFaultKind::BadCollectiveSignature);
        assert_eq!(fault.height, 0);
    }

    #[test]
    fn earlier_bad_signature_wins_over_later_structural_fault() {
        // Sequential semantics: block 1's bad signature is hit before
        // block 3's bad height, so the batch path must report block 1.
        let ks = keys(3);
        let mut log = signed_chain(5, &ks);
        log.tamper_block(1, |b| {
            b.cosign = fides_crypto::cosi::CollectiveSignature::placeholder()
        });
        log.tamper_block(3, |b| b.height = 77);
        let fault = validate_chain(&log, &pks(&ks)).unwrap_err();
        assert_eq!(fault.height, 1);
        assert_eq!(fault.kind, ChainFaultKind::BadCollectiveSignature);
    }

    #[test]
    fn earlier_structural_fault_wins_over_later_bad_signature() {
        // Block 1's height fault precedes block 3's bad signature; the
        // signature after the structural fault must not be reported.
        let ks = keys(3);
        let mut log = signed_chain(5, &ks);
        log.tamper_block(3, |b| {
            b.cosign = fides_crypto::cosi::CollectiveSignature::placeholder()
        });
        log.tamper_block(1, |b| b.height = 77);
        let fault = validate_chain(&log, &pks(&ks)).unwrap_err();
        assert_eq!(fault.height, 1);
        assert_eq!(fault.kind, ChainFaultKind::BadHeight);
    }

    #[test]
    fn first_of_multiple_bad_signatures_reported() {
        let ks = keys(3);
        let mut log = signed_chain(6, &ks);
        for h in [2u64, 4] {
            log.tamper_block(h, |b| {
                b.cosign = fides_crypto::cosi::CollectiveSignature::placeholder()
            });
        }
        let fault = validate_chain(&log, &pks(&ks)).unwrap_err();
        assert_eq!(fault.height, 2);
        assert_eq!(fault.kind, ChainFaultKind::BadCollectiveSignature);
    }

    #[test]
    fn long_honest_chain_validates_via_batch() {
        // Exercises the batch path well past the multi_mul
        // column-batching threshold.
        let ks = keys(3);
        let log = signed_chain(40, &ks);
        assert!(validate_chain(&log, &pks(&ks)).is_ok());
    }

    #[test]
    fn selection_picks_longest_valid_lemma7() {
        let ks = keys(4);
        let full = signed_chain(6, &ks);
        let mut truncated = full.clone();
        truncated.truncate(3);
        let mut tampered = full.clone();
        tampered.tamper_block(4, |b| b.height = 99);

        let selection = select_canonical_log(&[truncated, tampered, full.clone()], &pks(&ks));
        assert_eq!(selection.source, 2);
        assert_eq!(selection.canonical.len(), 6);
        assert_eq!(
            selection.assessments[0],
            LogAssessment::Incomplete {
                len: 3,
                canonical_len: 6
            }
        );
        assert!(matches!(
            selection.assessments[1],
            LogAssessment::Tampered(ChainFault {
                height: 4,
                kind: ChainFaultKind::BadHeight
            })
        ));
        assert!(selection.assessments[2].is_complete());
    }

    #[test]
    fn all_complete_when_honest() {
        let ks = keys(3);
        let log = signed_chain(4, &ks);
        let selection = select_canonical_log(&[log.clone(), log.clone(), log], &pks(&ks));
        assert!(selection.assessments.iter().all(|a| a.is_complete()));
    }

    #[test]
    #[should_panic(expected = "at least one server is correct")]
    fn all_tampered_violates_model() {
        let ks = keys(2);
        let mut log = signed_chain(3, &ks);
        log.tamper_block(0, |b| b.height = 9);
        select_canonical_log(&[log], &pks(&ks));
    }

    #[test]
    fn transfer_validates_against_anchor() {
        let ks = keys(3);
        let full = signed_chain(6, &ks);
        let base = 2u64;
        let base_tip = full.get(base - 1).unwrap().hash();
        let tail: Vec<Block> = full.blocks()[base as usize..].to_vec();

        // An honest transfer verifies and yields the adoptable suffix.
        let log = validate_transfer(base, base_tip, tail.clone(), &pks(&ks), true).unwrap();
        assert_eq!(log.next_height(), 6);
        assert_eq!(log.tip_hash(), full.tip_hash());

        // A tampered block fails the collective-signature pass — repair
        // the downstream hash links so only the signatures can catch it.
        let mut tampered = tail.clone();
        tampered[1].decision = Decision::Abort;
        for i in 2..tampered.len() {
            tampered[i].prev_hash = tampered[i - 1].hash();
        }
        let err = validate_transfer(base, base_tip, tampered, &pks(&ks), true).unwrap_err();
        assert_eq!(
            err,
            TransferFault::Chain(ChainFault {
                height: 3,
                kind: ChainFaultKind::BadCollectiveSignature
            })
        );

        // ...and a wrong anchor (forged checkpoint tip) breaks the
        // first link.
        let err =
            validate_transfer(base, Digest::new([0xAB; 32]), tail, &pks(&ks), true).unwrap_err();
        assert!(matches!(
            err,
            TransferFault::Structure(crate::log::LogError::BrokenLink)
        ));
    }

    #[test]
    fn suffix_copy_assessed_complete_when_it_links() {
        let ks = keys(3);
        let full = signed_chain(6, &ks);
        let base = 3u64;
        let base_tip = full.get(base - 1).unwrap().hash();
        let tail: Vec<Block> = full.blocks()[base as usize..].to_vec();
        let suffix = TamperProofLog::from_suffix(base, base_tip, tail.clone()).unwrap();

        let selection = select_canonical_log(&[full.clone(), suffix], &pks(&ks));
        assert_eq!(selection.source, 0);
        assert!(
            selection.assessments[1].is_complete(),
            "a pruned-but-linked suffix reaching the tip is complete: {:?}",
            selection.assessments[1]
        );

        // A suffix that does not link into the canonical chain is
        // forked, not merely incomplete.
        let unlinked =
            TamperProofLog::from_suffix(base, Digest::new([0x13; 32]), Vec::new()).unwrap();
        let selection = select_canonical_log(&[full.clone(), unlinked], &pks(&ks));
        assert!(matches!(
            selection.assessments[1],
            LogAssessment::Forked { height: 3 }
        ));

        // A suffix stopping short of the canonical tip is incomplete,
        // measured in tip heights.
        let short = TamperProofLog::from_suffix(base, base_tip, tail[..2].to_vec()).unwrap();
        let selection = select_canonical_log(&[full, short], &pks(&ks));
        assert_eq!(
            selection.assessments[1],
            LogAssessment::Incomplete {
                len: 5,
                canonical_len: 6
            }
        );
    }

    #[test]
    fn forked_valid_log_flagged() {
        // Two honestly-signed but different histories — only possible if
        // all witnesses sign both (global collusion). The auditor still
        // flags the divergence.
        let ks = keys(3);
        let a = signed_chain(3, &ks);
        let mut b_long = TamperProofLog::new();
        {
            // A different chain: distinct root at height 0 onwards.
            for h in 0..4u64 {
                let unsigned = BlockBuilder::new(h, b_long.tip_hash())
                    .decision(Decision::Commit)
                    .root(ShardRoot {
                        server: 7,
                        root: Digest::new([0xEE; 32]),
                    })
                    .build_unsigned();
                let record = unsigned.signing_bytes();
                let witnesses: Vec<Witness> = ks
                    .iter()
                    .map(|k| Witness::commit(k, b"fork", &record))
                    .collect();
                let agg = cosi::aggregate_commitments(witnesses.iter().map(|w| w.commitment()));
                let c = cosi::challenge(&agg, &record);
                let sig = cosi::CollectiveSignature::assemble(
                    agg,
                    witnesses.iter().map(|w| w.respond(&c)),
                );
                b_long
                    .append(Block {
                        cosign: sig,
                        ..unsigned
                    })
                    .unwrap();
            }
        }
        let selection = select_canonical_log(&[a, b_long], &pks(&ks));
        // The shorter fork is flagged.
        assert!(matches!(
            selection.assessments[0],
            LogAssessment::Forked { height: 0 }
        ));
        assert!(selection.assessments[1].is_complete());
    }
}
