//! Chain validation and the auditor's log selection (paper Lemmas 6–7).
//!
//! During an audit, the auditor "gathers the tamper-proof logs from all
//! the servers" and, relying on at least one server being correct,
//! "identifies the correct and complete log" (§3.3, §4.4). This module
//! implements both halves:
//!
//! * [`validate_chain`] — Lemma 6: a log with a modified or re-ordered
//!   block fails either the per-block collective-signature check or the
//!   hash-pointer check, at a pinpointed height.
//! * [`select_canonical_log`] — Lemma 7: among the gathered logs, every
//!   *valid* log is a prefix of the longest valid log; shorter ones are
//!   flagged as incomplete (omitted tail), invalid ones as tampered.

use core::fmt;

use fides_crypto::cosi;
use fides_crypto::schnorr::PublicKey;

use crate::log::TamperProofLog;

/// Why a block failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainFaultKind {
    /// The block's height does not match its position.
    BadHeight,
    /// `prev_hash` does not match the preceding block's hash.
    BadHashLink,
    /// The collective signature does not verify over the block's
    /// signing bytes.
    BadCollectiveSignature,
}

impl fmt::Display for ChainFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainFaultKind::BadHeight => write!(f, "height mismatch"),
            ChainFaultKind::BadHashLink => write!(f, "broken hash pointer"),
            ChainFaultKind::BadCollectiveSignature => write!(f, "invalid collective signature"),
        }
    }
}

/// A validation failure at a specific block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainFault {
    /// Position (index) of the offending block.
    pub height: u64,
    /// What failed.
    pub kind: ChainFaultKind,
}

impl fmt::Display for ChainFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block {}: {}", self.height, self.kind)
    }
}

/// Validates a log against the server group's public keys: height
/// continuity, hash pointers and per-block collective signatures.
///
/// The signature work runs through [`cosi::verify_batch`]: one
/// random-linear-combination multi-scalar check for the whole log
/// instead of one full verification per block. Only when the batch
/// check fails does validation fall back to per-block
/// [`verify`](fides_crypto::cosi::CollectiveSignature::verify) to
/// pinpoint the offending height — audit semantics (which block, which
/// fault kind) are identical to block-by-block validation, at a
/// fraction of the cost for honest logs (the common case: every audit
/// validates every server's full log copy).
///
/// # Errors
///
/// Returns the first [`ChainFault`] encountered, which pinpoints "the
/// precise point in the execution history at which a fault occurred"
/// (§1). Within a block, faults surface in the order height → hash
/// link → signature, exactly as a sequential scan would report them.
pub fn validate_chain(log: &TamperProofLog, witness_keys: &[PublicKey]) -> Result<(), ChainFault> {
    // Structural pass: heights and hash pointers, plus the signing
    // bytes of every block that precedes the first structural fault
    // (only those blocks' signatures can influence the reported fault).
    // A suffix log (recovered above a pruned WAL prefix) starts at its
    // base height and links to the checkpointed base tip; a full log
    // has base 0 and links to the zero digest.
    let base = log.base_height();
    let mut structural: Option<ChainFault> = None;
    let mut records: Vec<Vec<u8>> = Vec::with_capacity(log.len());
    let mut prev = log.base_tip();
    for (i, block) in log.iter().enumerate() {
        let height = base + i as u64;
        if block.height != height {
            structural = Some(ChainFault {
                height,
                kind: ChainFaultKind::BadHeight,
            });
            break;
        }
        if block.prev_hash != prev {
            structural = Some(ChainFault {
                height,
                kind: ChainFaultKind::BadHashLink,
            });
            break;
        }
        records.push(block.signing_bytes());
        prev = block.hash();
    }

    // Batched signature pass over the structurally sound prefix.
    let items: Vec<(&[u8], cosi::CollectiveSignature)> = records
        .iter()
        .map(Vec::as_slice)
        .zip(log.iter().map(|b| b.cosign))
        .collect();
    if !cosi::verify_batch(&items, witness_keys) {
        // Fallback: scan per block to attribute the precise height. A
        // failing batch implies at least one individual failure (a
        // fully valid batch always passes the combined check).
        for (i, (record, sig)) in items.iter().enumerate() {
            if !sig.verify(record, witness_keys) {
                return Err(ChainFault {
                    height: base + i as u64,
                    kind: ChainFaultKind::BadCollectiveSignature,
                });
            }
        }
    }
    match structural {
        Some(fault) => Err(fault),
        None => Ok(()),
    }
}

/// The auditor's verdict on one server's log copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogAssessment {
    /// Valid and as long as the canonical log.
    Complete,
    /// Valid but missing the canonical tail (§4.4 (iii)): the server
    /// omitted `canonical_len - len` blocks.
    Incomplete {
        /// Blocks this server kept.
        len: usize,
        /// Canonical length.
        canonical_len: usize,
    },
    /// Chain validation failed — the log was tampered with or reordered.
    Tampered(ChainFault),
    /// Valid chain that is *not* a prefix of the canonical log — only
    /// possible if all servers colluded to co-sign two histories
    /// (equivocation evidence).
    Forked {
        /// First height at which the block hash diverges.
        height: u64,
    },
}

impl LogAssessment {
    /// `true` for [`LogAssessment::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, LogAssessment::Complete)
    }
}

/// The outcome of the auditor's log-gathering step.
#[derive(Debug, Clone)]
pub struct LogSelection {
    /// The correct and complete log (Lemma 7) — the longest valid one.
    pub canonical: TamperProofLog,
    /// Index (into the input slice) of the server whose log was chosen.
    pub source: usize,
    /// Per-input assessments, aligned with the input slice.
    pub assessments: Vec<LogAssessment>,
}

/// Selects the correct and complete log from the copies gathered from
/// all servers, assessing each copy (Lemmas 6 and 7).
///
/// # Panics
///
/// Panics if `logs` is empty or if **no** log validates — both violate
/// the paper's standing assumption that at least one server is correct
/// and failure-free (§3.2).
pub fn select_canonical_log(logs: &[TamperProofLog], witness_keys: &[PublicKey]) -> LogSelection {
    assert!(!logs.is_empty(), "no logs gathered");
    let verdicts: Vec<Result<(), ChainFault>> = logs
        .iter()
        .map(|log| validate_chain(log, witness_keys))
        .collect();

    let (source, canonical) = logs
        .iter()
        .enumerate()
        .filter(|(i, _)| verdicts[*i].is_ok())
        .max_by_key(|(_, log)| log.len())
        .map(|(i, log)| (i, log.clone()))
        .expect("at least one server is correct (paper assumption, §3.2)");

    let assessments = logs
        .iter()
        .zip(&verdicts)
        .map(|(log, verdict)| match verdict {
            Err(fault) => LogAssessment::Tampered(*fault),
            Ok(()) => {
                // A valid log must be a hash-prefix of the canonical one.
                for (h, block) in log.iter().enumerate() {
                    let canon = canonical
                        .get(h as u64)
                        .expect("canonical is the longest valid log");
                    if canon.hash() != block.hash() {
                        return LogAssessment::Forked { height: h as u64 };
                    }
                }
                if log.len() < canonical.len() {
                    LogAssessment::Incomplete {
                        len: log.len(),
                        canonical_len: canonical.len(),
                    }
                } else {
                    LogAssessment::Complete
                }
            }
        })
        .collect();

    LogSelection {
        canonical,
        source,
        assessments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, BlockBuilder, Decision, ShardRoot};
    use fides_crypto::cosi::{self, Witness};
    use fides_crypto::schnorr::KeyPair;
    use fides_crypto::Digest;

    /// Builds a properly co-signed chain of `n` blocks over `keys`.
    fn signed_chain(n: u64, keys: &[KeyPair]) -> TamperProofLog {
        let mut log = TamperProofLog::new();
        for h in 0..n {
            let unsigned = BlockBuilder::new(h, log.tip_hash())
                .decision(Decision::Commit)
                .root(ShardRoot {
                    server: 0,
                    root: Digest::new([h as u8; 32]),
                })
                .build_unsigned();
            let record = unsigned.signing_bytes();
            let round_id = h.to_be_bytes();
            let witnesses: Vec<Witness> = keys
                .iter()
                .map(|k| Witness::commit(k, &round_id, &record))
                .collect();
            let agg = cosi::aggregate_commitments(witnesses.iter().map(|w| w.commitment()));
            let c = cosi::challenge(&agg, &record);
            let sig =
                cosi::CollectiveSignature::assemble(agg, witnesses.iter().map(|w| w.respond(&c)));
            let block = Block {
                cosign: sig,
                ..unsigned
            };
            log.append(block).unwrap();
        }
        log
    }

    fn keys(n: u8) -> Vec<KeyPair> {
        (0..n).map(|i| KeyPair::from_seed(&[i, 0x33])).collect()
    }

    fn pks(keys: &[KeyPair]) -> Vec<PublicKey> {
        keys.iter().map(|k| k.public_key()).collect()
    }

    #[test]
    fn honest_chain_validates() {
        let ks = keys(4);
        let log = signed_chain(5, &ks);
        assert!(validate_chain(&log, &pks(&ks)).is_ok());
    }

    #[test]
    fn empty_log_validates() {
        let ks = keys(2);
        assert!(validate_chain(&TamperProofLog::new(), &pks(&ks)).is_ok());
    }

    #[test]
    fn tampered_block_detected_at_height_lemma6() {
        let ks = keys(4);
        let mut log = signed_chain(5, &ks);
        log.tamper_block(2, |b| b.decision = Decision::Abort);
        let fault = validate_chain(&log, &pks(&ks)).unwrap_err();
        // The tampered block's own signature breaks first.
        assert_eq!(fault.height, 2);
        assert_eq!(fault.kind, ChainFaultKind::BadCollectiveSignature);
    }

    #[test]
    fn tampering_also_breaks_the_next_link() {
        let ks = keys(3);
        let mut log = signed_chain(5, &ks);
        // Tamper only the cosign (content unchanged): chain links stay
        // intact but the signature check fails.
        log.tamper_block(1, |b| {
            b.cosign = fides_crypto::cosi::CollectiveSignature::placeholder()
        });
        let fault = validate_chain(&log, &pks(&ks)).unwrap_err();
        assert_eq!(fault.height, 1);
        assert_eq!(fault.kind, ChainFaultKind::BadCollectiveSignature);
    }

    #[test]
    fn reordered_blocks_detected_lemma6() {
        let ks = keys(4);
        let mut log = signed_chain(5, &ks);
        log.reorder_blocks(1, 3);
        let fault = validate_chain(&log, &pks(&ks)).unwrap_err();
        assert_eq!(fault.height, 1);
        assert_eq!(fault.kind, ChainFaultKind::BadHeight);
    }

    #[test]
    fn wrong_witness_set_fails_signature() {
        let ks = keys(4);
        let log = signed_chain(2, &ks);
        let other = keys(3);
        let fault = validate_chain(&log, &pks(&other)).unwrap_err();
        assert_eq!(fault.kind, ChainFaultKind::BadCollectiveSignature);
        assert_eq!(fault.height, 0);
    }

    #[test]
    fn earlier_bad_signature_wins_over_later_structural_fault() {
        // Sequential semantics: block 1's bad signature is hit before
        // block 3's bad height, so the batch path must report block 1.
        let ks = keys(3);
        let mut log = signed_chain(5, &ks);
        log.tamper_block(1, |b| {
            b.cosign = fides_crypto::cosi::CollectiveSignature::placeholder()
        });
        log.tamper_block(3, |b| b.height = 77);
        let fault = validate_chain(&log, &pks(&ks)).unwrap_err();
        assert_eq!(fault.height, 1);
        assert_eq!(fault.kind, ChainFaultKind::BadCollectiveSignature);
    }

    #[test]
    fn earlier_structural_fault_wins_over_later_bad_signature() {
        // Block 1's height fault precedes block 3's bad signature; the
        // signature after the structural fault must not be reported.
        let ks = keys(3);
        let mut log = signed_chain(5, &ks);
        log.tamper_block(3, |b| {
            b.cosign = fides_crypto::cosi::CollectiveSignature::placeholder()
        });
        log.tamper_block(1, |b| b.height = 77);
        let fault = validate_chain(&log, &pks(&ks)).unwrap_err();
        assert_eq!(fault.height, 1);
        assert_eq!(fault.kind, ChainFaultKind::BadHeight);
    }

    #[test]
    fn first_of_multiple_bad_signatures_reported() {
        let ks = keys(3);
        let mut log = signed_chain(6, &ks);
        for h in [2u64, 4] {
            log.tamper_block(h, |b| {
                b.cosign = fides_crypto::cosi::CollectiveSignature::placeholder()
            });
        }
        let fault = validate_chain(&log, &pks(&ks)).unwrap_err();
        assert_eq!(fault.height, 2);
        assert_eq!(fault.kind, ChainFaultKind::BadCollectiveSignature);
    }

    #[test]
    fn long_honest_chain_validates_via_batch() {
        // Exercises the batch path well past the multi_mul
        // column-batching threshold.
        let ks = keys(3);
        let log = signed_chain(40, &ks);
        assert!(validate_chain(&log, &pks(&ks)).is_ok());
    }

    #[test]
    fn selection_picks_longest_valid_lemma7() {
        let ks = keys(4);
        let full = signed_chain(6, &ks);
        let mut truncated = full.clone();
        truncated.truncate(3);
        let mut tampered = full.clone();
        tampered.tamper_block(4, |b| b.height = 99);

        let selection = select_canonical_log(&[truncated, tampered, full.clone()], &pks(&ks));
        assert_eq!(selection.source, 2);
        assert_eq!(selection.canonical.len(), 6);
        assert_eq!(
            selection.assessments[0],
            LogAssessment::Incomplete {
                len: 3,
                canonical_len: 6
            }
        );
        assert!(matches!(
            selection.assessments[1],
            LogAssessment::Tampered(ChainFault {
                height: 4,
                kind: ChainFaultKind::BadHeight
            })
        ));
        assert!(selection.assessments[2].is_complete());
    }

    #[test]
    fn all_complete_when_honest() {
        let ks = keys(3);
        let log = signed_chain(4, &ks);
        let selection = select_canonical_log(&[log.clone(), log.clone(), log], &pks(&ks));
        assert!(selection.assessments.iter().all(|a| a.is_complete()));
    }

    #[test]
    #[should_panic(expected = "at least one server is correct")]
    fn all_tampered_violates_model() {
        let ks = keys(2);
        let mut log = signed_chain(3, &ks);
        log.tamper_block(0, |b| b.height = 9);
        select_canonical_log(&[log], &pks(&ks));
    }

    #[test]
    fn forked_valid_log_flagged() {
        // Two honestly-signed but different histories — only possible if
        // all witnesses sign both (global collusion). The auditor still
        // flags the divergence.
        let ks = keys(3);
        let a = signed_chain(3, &ks);
        let mut b_long = TamperProofLog::new();
        {
            // A different chain: distinct root at height 0 onwards.
            for h in 0..4u64 {
                let unsigned = BlockBuilder::new(h, b_long.tip_hash())
                    .decision(Decision::Commit)
                    .root(ShardRoot {
                        server: 7,
                        root: Digest::new([0xEE; 32]),
                    })
                    .build_unsigned();
                let record = unsigned.signing_bytes();
                let witnesses: Vec<Witness> = ks
                    .iter()
                    .map(|k| Witness::commit(k, b"fork", &record))
                    .collect();
                let agg = cosi::aggregate_commitments(witnesses.iter().map(|w| w.commitment()));
                let c = cosi::challenge(&agg, &record);
                let sig = cosi::CollectiveSignature::assemble(
                    agg,
                    witnesses.iter().map(|w| w.respond(&c)),
                );
                b_long
                    .append(Block {
                        cosign: sig,
                        ..unsigned
                    })
                    .unwrap();
            }
        }
        let selection = select_canonical_log(&[a, b_long], &pks(&ks));
        // The shorter fork is flagged.
        assert!(matches!(
            selection.assessments[0],
            LogAssessment::Forked { height: 0 }
        ));
        assert!(selection.assessments[1].is_complete());
    }
}
