//! The client side of the **verified read plane**: read-only
//! transactions that never enter a commit round, yet accept nothing a
//! server cannot *prove*.
//!
//! Fides' premise is that servers are untrusted — but the execution
//! path of a read-write transaction only distrusts them *a posteriori*
//! (the audit catches incorrect reads after the fact), and a read-only
//! workload still pays a full TFCommit round just to learn its reads
//! were honest. This crate closes that gap with three pieces:
//!
//! * a [`RootRegistry`] — the client's cache of **co-signed per-shard
//!   composite roots**, seeded from the trusted genesis population and
//!   fed by verified [`BlockHeader`]s (the lightweight root
//!   announcement: a header carries the co-signed roots *without* the
//!   transaction bodies, and its collective signature verifies
//!   stand-alone) and by the decision blocks the client already
//!   verifies for its own commits;
//! * a freshness policy — [`ReadConsistency`]: `Fresh` (state current
//!   through the chain tip the client knows), `BoundedStaleness(k)`
//!   (at most `k` blocks behind that tip — the mode that lets **any
//!   peer holding a checkpoint mirror serve another server's shard**),
//!   and `AtHeight(h)` (a pinned snapshot for repeatable multi-shard
//!   reads);
//! * the verification engine — [`verify_read`]: multiproof + absence
//!   proofs against one co-signed root, plus the staleness cross-checks
//!   that turn a lying server into attributable [`ReadEvidence`].
//!
//! # Trust argument (why no CoSi round is needed)
//!
//! A value is accepted only if a Merkle proof links it to a composite
//! shard root that a **quorum of servers collectively signed** into a
//! block (or to the deterministic genesis root the client is configured
//! with, the same trust anchor as the server public keys). The server
//! answering the read contributes nothing but the proof: forging a
//! value, claiming a bound key absent, or serving a root the chain has
//! superseded each requires either breaking the hash tree, breaking
//! the collective signature, or being caught by the client's own root
//! cache — all refuted client-side, with the refutation recorded
//! against the precise server.

use std::collections::BTreeMap;

use fides_crypto::schnorr::PublicKey;
use fides_crypto::Digest;
use fides_ledger::block::BlockHeader;
use fides_ledger::{Decision, ShardRoot};
use fides_store::proofs::{ReadProofError, ShardReadProof};
use fides_store::types::{Key, Value};

/// How fresh a verified read must be, measured in **applied block
/// heights** against the chain tip the client currently knows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadConsistency {
    /// State current through the client's known chain tip. Served by
    /// the shard owner (a mirror can satisfy it only when no block has
    /// landed since its checkpoint).
    Fresh,
    /// State at most `k` applied blocks behind the client's known tip —
    /// the mode that turns every checkpoint mirror into a read replica.
    BoundedStaleness(u64),
    /// State exactly as of applied height `h` (all blocks `< h`
    /// applied): a pinned snapshot for repeatable reads across shards.
    AtHeight(u64),
}

impl ReadConsistency {
    /// The lowest `covered_height` (state-current-through watermark) a
    /// server may serve under this policy, given the client's tip.
    pub fn min_covered(&self, known_tip: u64) -> u64 {
        match self {
            ReadConsistency::Fresh => known_tip,
            ReadConsistency::BoundedStaleness(k) => known_tip.saturating_sub(*k),
            ReadConsistency::AtHeight(h) => *h,
        }
    }
}

/// Why a snapshot-read response was rejected by the verification
/// engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadFault {
    /// The carried block header's collective signature does not verify.
    ForgedHeader,
    /// The response anchors to a root height the client has no
    /// co-signed root for and carried no header proving one — client
    /// ignorance, **not** server misbehaviour (fetch headers, retry).
    UnknownRoot {
        /// The applied height the response claimed a root at.
        root_height: u64,
    },
    /// The proof bundle fails against the co-signed root (forged value,
    /// forged absence, torn root pair, ...).
    Proof(ReadProofError),
    /// The response claims its state is current through
    /// `claimed_covered`, but the client holds a *different* co-signed
    /// root for this shard at a height inside that coverage — the claim
    /// is provably false.
    StaleClaim {
        /// The coverage watermark the server claimed.
        claimed_covered: u64,
        /// The newer co-signed root height that refutes it.
        known_root_height: u64,
    },
    /// The (verified) response is staler than the bound the request
    /// stated — a defiant serve where an honest server refuses.
    StaleBeyondBound {
        /// The response's coverage watermark.
        covered: u64,
        /// The minimum the request demanded.
        required: u64,
    },
    /// An `AtHeight` read was answered with state **newer** than the
    /// pin: the proven root postdates the pinned height, so this is
    /// not the pinned snapshot (an honest server refuses instead).
    PinViolated {
        /// The applied height of the served root.
        root_height: u64,
        /// The height the request pinned.
        pinned: u64,
    },
    /// Structurally malformed (coverage below root height, header for
    /// the wrong height, header without this shard's root, ...).
    Malformed,
}

impl ReadFault {
    /// `true` when the fault proves server misbehaviour (worth filing
    /// as [`ReadEvidence`]); `false` for client-side ignorance.
    pub fn is_evidence(&self) -> bool {
        !matches!(self, ReadFault::UnknownRoot { .. })
    }
}

impl core::fmt::Display for ReadFault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ReadFault::ForgedHeader => write!(f, "header collective signature does not verify"),
            ReadFault::UnknownRoot { root_height } => {
                write!(f, "no co-signed root known at height {root_height}")
            }
            ReadFault::Proof(e) => write!(f, "proof refuted: {e}"),
            ReadFault::StaleClaim {
                claimed_covered,
                known_root_height,
            } => write!(
                f,
                "claimed current through {claimed_covered} but a newer co-signed root exists at \
                 {known_root_height}"
            ),
            ReadFault::StaleBeyondBound { covered, required } => write!(
                f,
                "served height {covered} below the requested bound {required}"
            ),
            ReadFault::PinViolated {
                root_height,
                pinned,
            } => write!(
                f,
                "served a root at height {root_height}, newer than the pinned height {pinned}"
            ),
            ReadFault::Malformed => write!(f, "malformed read response"),
        }
    }
}

/// One refuted snapshot read: which server served it and what the
/// client's verification caught. Folded into the audit report as a
/// `TamperedRead` violation against that exact server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadEvidence {
    /// The server that served the refuted response.
    pub server: u32,
    /// The shard the read targeted.
    pub shard: u32,
    /// What the verification caught.
    pub fault: ReadFault,
}

impl core::fmt::Display for ReadEvidence {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "server {} served a refuted read of shard {}: {}",
            self.server, self.shard, self.fault
        )
    }
}

/// A verified snapshot read: the proven values plus the provenance the
/// caller may want for staleness accounting.
#[derive(Clone, Debug)]
pub struct VerifiedRead {
    /// Per requested key, in request order (`None` = proven absent).
    pub values: Vec<Option<Value>>,
    /// Applied height of the co-signed root the proofs anchored to.
    pub root_height: u64,
    /// Applied height the state is current through.
    pub covered_height: u64,
    /// `known_tip − covered_height` at verification time.
    pub staleness: u64,
}

/// Cache cap per shard (heights retained besides genesis).
const MAX_ROOTS_PER_SHARD: usize = 128;

/// Root-cache effectiveness counters (folded into the client's
/// `ReadStats` and the bench driver's read section): how often
/// [`verify_read`] resolved its anchoring root from the cache versus
/// paying a header collective-signature verification.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Reads whose root resolved straight from the cache.
    pub hits: u64,
    /// Reads that had to fall back to the carried header.
    pub misses: u64,
    /// Header collective-signature verifications actually performed
    /// (a re-announced, already-cached header costs none).
    pub header_verifies: u64,
}

impl RegistryStats {
    /// Drains the counters (the client's take-stats path).
    pub fn take(&mut self) -> RegistryStats {
        std::mem::take(self)
    }

    /// Adds another registry's counters (cross-client aggregation).
    pub fn merge(&mut self, other: &RegistryStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.header_verifies += other.header_verifies;
    }
}

/// The client's cache of co-signed per-shard **composite roots**, keyed
/// by *applied height*: height `0` is the trusted genesis state (before
/// any block), height `h > 0` is the root after block `h − 1` applied.
///
/// Roots enter the registry three ways, all rooted in the same trust
/// anchors (the server public keys and the deterministic genesis
/// population):
///
/// 1. genesis seeding ([`RootRegistry::new`]),
/// 2. verified [`BlockHeader`]s ([`RootRegistry::note_header`] — one
///    collective-signature check, cached so re-announcements are free),
/// 3. blocks the client has already verified elsewhere (its own commit
///    outcomes, [`RootRegistry::note_verified_roots`]).
#[derive(Debug, Clone)]
pub struct RootRegistry {
    server_pks: Vec<PublicKey>,
    /// Per shard: applied height → composite root.
    roots: Vec<BTreeMap<u64, Digest>>,
    /// The highest applied height the client has evidence for.
    chain_tip: u64,
    /// Cache-effectiveness counters (see [`RegistryStats`]).
    pub stats: RegistryStats,
}

impl RootRegistry {
    /// Creates a registry over the cluster's witness set, seeded with
    /// the trusted genesis composite roots (one per shard, the
    /// deterministic preloaded population — the same standing trust as
    /// the public keys themselves).
    pub fn new(server_pks: Vec<PublicKey>, genesis_roots: Vec<Digest>) -> Self {
        let roots = genesis_roots
            .into_iter()
            .map(|root| BTreeMap::from([(0u64, root)]))
            .collect();
        RootRegistry {
            server_pks,
            roots,
            chain_tip: 0,
            stats: RegistryStats::default(),
        }
    }

    /// Number of shards tracked.
    pub fn n_shards(&self) -> usize {
        self.roots.len()
    }

    /// The highest applied height the client has evidence for.
    pub fn known_tip(&self) -> u64 {
        self.chain_tip
    }

    /// The co-signed root of `shard` at exactly applied height
    /// `root_height`, if cached.
    pub fn root_at(&self, shard: u32, root_height: u64) -> Option<Digest> {
        self.roots.get(shard as usize)?.get(&root_height).copied()
    }

    /// The newest cached root of `shard`: `(applied height, root)`.
    pub fn newest_root(&self, shard: u32) -> Option<(u64, Digest)> {
        let (h, d) = self.roots.get(shard as usize)?.iter().next_back()?;
        Some((*h, *d))
    }

    /// The newest cached root of `shard` at or below `height`.
    pub fn newest_root_at_or_below(&self, shard: u32, height: u64) -> Option<(u64, Digest)> {
        let (h, d) = self
            .roots
            .get(shard as usize)?
            .range(..=height)
            .next_back()?;
        Some((*h, *d))
    }

    /// Absorbs a block header after verifying its collective signature
    /// (skipped when this height's roots are already cached). Headers
    /// are the read plane's lightweight root announcement.
    ///
    /// Only **commit** headers contribute roots — an abort block's
    /// roots are the *speculative* roots of cohorts that voted commit,
    /// a state that never applied. (Both kinds still advance the known
    /// chain tip.)
    ///
    /// # Errors
    ///
    /// [`ReadFault::ForgedHeader`] when the signature does not verify;
    /// nothing is cached then.
    pub fn note_header(&mut self, header: &BlockHeader) -> Result<(), ReadFault> {
        let applied = header.height + 1;
        let already = header
            .roots
            .iter()
            .all(|r| self.root_at(r.server, applied).is_some())
            && applied <= self.chain_tip;
        if already {
            return Ok(());
        }
        self.stats.header_verifies += 1;
        if !header.verify(&self.server_pks) {
            return Err(ReadFault::ForgedHeader);
        }
        if header.decision == Decision::Commit {
            self.note_verified_roots(applied, &header.roots);
        } else {
            self.note_tip(applied);
        }
        Ok(())
    }

    /// Absorbs roots from a block whose collective signature the caller
    /// has already verified (e.g. a commit outcome). `applied` is the
    /// block's height **plus one**.
    pub fn note_verified_roots(&mut self, applied: u64, roots: &[ShardRoot]) {
        for r in roots {
            if let Some(map) = self.roots.get_mut(r.server as usize) {
                map.insert(applied, r.root);
                // Bounded cache: keep genesis and the newest heights.
                while map.len() > MAX_ROOTS_PER_SHARD {
                    let oldest = *map.range(1..).next().expect("len > 1").0;
                    map.remove(&oldest);
                }
            }
        }
        self.note_tip(applied);
    }

    /// Raises the known chain tip (verified evidence only — e.g. a
    /// verified header or outcome at that height).
    pub fn note_tip(&mut self, applied: u64) {
        self.chain_tip = self.chain_tip.max(applied);
    }
}

/// One snapshot-read response, as received (already envelope-
/// authenticated as coming from `server`).
#[derive(Debug)]
pub struct ReadResponse<'a> {
    /// The server that served the response.
    pub server: u32,
    /// The shard read.
    pub shard: u32,
    /// Applied height of the root the proofs anchor to (0 = genesis).
    pub root_height: u64,
    /// Applied height the served state claims to be current through.
    pub covered_height: u64,
    /// The co-signed carrier of the root — required when the client
    /// has not cached `root_height` yet; `None` is always fine for
    /// genesis.
    pub header: Option<&'a BlockHeader>,
    /// The proof bundle.
    pub proof: &'a ShardReadProof,
}

/// Verifies a snapshot-read response end to end: root resolution
/// (header signature if needed), multiproof + absence proofs, the
/// stale-claim cross-check, the request's freshness bound, and — for
/// `AtHeight` reads — that the served root does not postdate the pin
/// (`pinned`).
///
/// # Errors
///
/// The [`ReadFault`] the response was refuted with. Faults with
/// [`ReadFault::is_evidence`] prove misbehaviour by the serving server;
/// [`ReadFault::UnknownRoot`] only means the client must learn newer
/// roots first.
pub fn verify_read(
    registry: &mut RootRegistry,
    response: &ReadResponse<'_>,
    keys: &[Key],
    min_covered: u64,
    pinned: Option<u64>,
) -> Result<VerifiedRead, ReadFault> {
    let ReadResponse {
        shard,
        root_height,
        covered_height,
        header,
        proof,
        ..
    } = *response;
    if covered_height < root_height {
        return Err(ReadFault::Malformed);
    }

    // Resolve the trusted root for `root_height`.
    let expected_root = match registry.root_at(shard, root_height) {
        Some(root) => {
            registry.stats.hits += 1;
            root
        }
        None => {
            registry.stats.misses += 1;
            let Some(header) = header else {
                return Err(ReadFault::UnknownRoot { root_height });
            };
            if root_height == 0 || header.height + 1 != root_height {
                return Err(ReadFault::Malformed);
            }
            registry.note_header(header)?;
            match registry.root_at(shard, root_height) {
                Some(root) => root,
                // A genuine header that carries no root for this shard
                // cannot anchor the read: the server pointed at the
                // wrong block.
                None => return Err(ReadFault::Malformed),
            }
        }
    };

    // The proofs themselves.
    let values = proof
        .verify(keys, &expected_root)
        .map_err(ReadFault::Proof)?;

    // Stale-claim cross-check: inside the claimed coverage window, the
    // newest co-signed root the client knows must be the one served
    // (two *different* roots cannot both be current at `covered`).
    if let Some((known_height, known_root)) =
        registry.newest_root_at_or_below(shard, covered_height)
    {
        if known_height > root_height && known_root != expected_root {
            return Err(ReadFault::StaleClaim {
                claimed_covered: covered_height,
                known_root_height: known_height,
            });
        }
    }

    // The request's freshness bound (an honest server refuses instead).
    if covered_height < min_covered {
        return Err(ReadFault::StaleBeyondBound {
            covered: covered_height,
            required: min_covered,
        });
    }

    // An `AtHeight` pin also bounds from above: a root newer than the
    // pin means this is not the pinned snapshot.
    if let Some(pinned) = pinned {
        if root_height > pinned {
            return Err(ReadFault::PinViolated {
                root_height,
                pinned,
            });
        }
    }

    Ok(VerifiedRead {
        values,
        root_height,
        covered_height,
        staleness: registry.known_tip().saturating_sub(covered_height),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fides_crypto::cosi::{self, Witness};
    use fides_crypto::schnorr::KeyPair;
    use fides_ledger::block::{Block, BlockBuilder, Decision};
    use fides_store::AuthenticatedShard;

    fn keys(n: u8) -> Vec<KeyPair> {
        (0..n).map(|i| KeyPair::from_seed(&[i, 0x42])).collect()
    }

    fn pks(kps: &[KeyPair]) -> Vec<PublicKey> {
        kps.iter().map(|k| k.public_key()).collect()
    }

    fn sign_block(unsigned: Block, kps: &[KeyPair]) -> Block {
        let record = unsigned.signing_bytes();
        let witnesses: Vec<Witness> = kps
            .iter()
            .map(|k| Witness::commit(k, b"read-test", &record))
            .collect();
        let agg = cosi::aggregate_commitments(witnesses.iter().map(|w| w.commitment()));
        let c = cosi::challenge(&agg, &record);
        let sig = cosi::CollectiveSignature::assemble(agg, witnesses.iter().map(|w| w.respond(&c)));
        Block {
            cosign: sig,
            ..unsigned
        }
    }

    fn shard(n: usize) -> AuthenticatedShard {
        AuthenticatedShard::new(
            (0..n)
                .map(|i| (Key::new(format!("item-{i:04}")), Value::from_i64(i as i64)))
                .collect(),
        )
    }

    #[test]
    fn genesis_read_verifies_without_header() {
        let kps = keys(3);
        let s = shard(8);
        let mut registry = RootRegistry::new(pks(&kps), vec![s.root()]);
        let request = vec![Key::new("item-0003"), Key::new("missing")];
        let proof = s.prove_read(&request);
        let verified = verify_read(
            &mut registry,
            &ReadResponse {
                server: 0,
                shard: 0,
                root_height: 0,
                covered_height: 0,
                header: None,
                proof: &proof,
            },
            &request,
            0,
            None,
        )
        .unwrap();
        assert_eq!(verified.values[0].as_ref().unwrap().as_i64(), Some(3));
        assert!(verified.values[1].is_none());
        assert_eq!(verified.staleness, 0);
    }

    #[test]
    fn header_carried_root_verifies_and_caches() {
        let kps = keys(3);
        let mut s = shard(8);
        let genesis = s.root();
        s.apply_commit(
            fides_store::Timestamp::new(5, 0),
            &[],
            &[(Key::new("item-0001"), Value::from_i64(111))],
        );
        let block = sign_block(
            BlockBuilder::new(0, Digest::ZERO)
                .decision(Decision::Commit)
                .root(ShardRoot {
                    server: 0,
                    root: s.root(),
                })
                .build_unsigned(),
            &kps,
        );
        let header = block.header();

        let mut registry = RootRegistry::new(pks(&kps), vec![genesis]);
        let request = vec![Key::new("item-0001")];
        let proof = s.prove_read(&request);
        let response = ReadResponse {
            server: 0,
            shard: 0,
            root_height: 1,
            covered_height: 1,
            header: Some(&header),
            proof: &proof,
        };
        let verified = verify_read(&mut registry, &response, &request, 1, None).unwrap();
        assert_eq!(verified.values[0].as_ref().unwrap().as_i64(), Some(111));
        // Cached: a second verification needs no header.
        assert_eq!(registry.root_at(0, 1), Some(s.root()));
        assert_eq!(registry.known_tip(), 1);
        let response = ReadResponse {
            header: None,
            ..response
        };
        assert!(verify_read(&mut registry, &response, &request, 1, None).is_ok());
    }

    #[test]
    fn forged_header_refuted() {
        let kps = keys(3);
        let s = shard(4);
        let mut registry = RootRegistry::new(pks(&kps), vec![s.root()]);
        let mut header = sign_block(
            BlockBuilder::new(0, Digest::ZERO)
                .decision(Decision::Commit)
                .root(ShardRoot {
                    server: 0,
                    root: Digest::new([1; 32]),
                })
                .build_unsigned(),
            &kps,
        )
        .header();
        header.roots[0].root = Digest::new([0xEE; 32]); // forged after signing
        let request = vec![Key::new("item-0000")];
        let proof = s.prove_read(&request);
        let fault = verify_read(
            &mut registry,
            &ReadResponse {
                server: 2,
                shard: 0,
                root_height: 1,
                covered_height: 1,
                header: Some(&header),
                proof: &proof,
            },
            &request,
            0,
            None,
        )
        .unwrap_err();
        assert_eq!(fault, ReadFault::ForgedHeader);
        assert!(fault.is_evidence());
    }

    #[test]
    fn forged_value_refuted() {
        let kps = keys(3);
        let s = shard(4);
        let mut registry = RootRegistry::new(pks(&kps), vec![s.root()]);
        let request = vec![Key::new("item-0002")];
        let mut proof = s.prove_read(&request);
        if let fides_store::ReadEntryProof::Present { value, .. } = &mut proof.entries[0] {
            *value = Value::from_i64(666);
        }
        let fault = verify_read(
            &mut registry,
            &ReadResponse {
                server: 1,
                shard: 0,
                root_height: 0,
                covered_height: 0,
                header: None,
                proof: &proof,
            },
            &request,
            0,
            None,
        )
        .unwrap_err();
        assert_eq!(fault, ReadFault::Proof(ReadProofError::BadValueProof));
        assert!(fault.is_evidence());
    }

    #[test]
    fn stale_claim_refuted_by_known_newer_root() {
        let kps = keys(3);
        let mut s = shard(4);
        let genesis_proof_shard = s.clone();
        let genesis = s.root();
        s.apply_commit(
            fides_store::Timestamp::new(5, 0),
            &[],
            &[(Key::new("item-0000"), Value::from_i64(9))],
        );
        let mut registry = RootRegistry::new(pks(&kps), vec![genesis]);
        // The client learns the newer co-signed root at applied height 3.
        registry.note_verified_roots(
            3,
            &[ShardRoot {
                server: 0,
                root: s.root(),
            }],
        );
        // A lying server serves the *genesis* state claiming coverage
        // through height 5 (which would include the height-3 root).
        let request = vec![Key::new("item-0000")];
        let proof = genesis_proof_shard.prove_read(&request);
        let fault = verify_read(
            &mut registry,
            &ReadResponse {
                server: 2,
                shard: 0,
                root_height: 0,
                covered_height: 5,
                header: None,
                proof: &proof,
            },
            &request,
            0,
            None,
        )
        .unwrap_err();
        assert_eq!(
            fault,
            ReadFault::StaleClaim {
                claimed_covered: 5,
                known_root_height: 3
            }
        );
        // Served honestly (coverage 2, before the newer root) it is
        // accepted when the bound allows, refused when it does not.
        let honest = ReadResponse {
            server: 2,
            shard: 0,
            root_height: 0,
            covered_height: 2,
            header: None,
            proof: &proof,
        };
        assert!(verify_read(&mut registry, &honest, &request, 2, None).is_ok());
        assert_eq!(
            verify_read(&mut registry, &honest, &request, 3, None).unwrap_err(),
            ReadFault::StaleBeyondBound {
                covered: 2,
                required: 3
            }
        );
    }

    #[test]
    fn unknown_root_is_not_evidence() {
        let kps = keys(3);
        let s = shard(4);
        let mut registry = RootRegistry::new(pks(&kps), vec![s.root()]);
        let request = vec![Key::new("item-0000")];
        let proof = s.prove_read(&request);
        let fault = verify_read(
            &mut registry,
            &ReadResponse {
                server: 0,
                shard: 0,
                root_height: 7,
                covered_height: 7,
                header: None,
                proof: &proof,
            },
            &request,
            0,
            None,
        )
        .unwrap_err();
        assert_eq!(fault, ReadFault::UnknownRoot { root_height: 7 });
        assert!(!fault.is_evidence());
    }

    #[test]
    fn pinned_read_rejects_newer_state() {
        // An `AtHeight(1)` read answered with state anchored at a root
        // from height 3 is not the pinned snapshot — refuted even
        // though it satisfies the lower bound.
        let kps = keys(3);
        let mut s = shard(4);
        let genesis = s.root();
        s.apply_commit(
            fides_store::Timestamp::new(5, 0),
            &[],
            &[(Key::new("item-0000"), Value::from_i64(9))],
        );
        let mut registry = RootRegistry::new(pks(&kps), vec![genesis]);
        registry.note_verified_roots(
            3,
            &[ShardRoot {
                server: 0,
                root: s.root(),
            }],
        );
        let request = vec![Key::new("item-0000")];
        let proof = s.prove_read(&request);
        let response = ReadResponse {
            server: 1,
            shard: 0,
            root_height: 3,
            covered_height: 3,
            header: None,
            proof: &proof,
        };
        let fault = verify_read(&mut registry, &response, &request, 1, Some(1)).unwrap_err();
        assert_eq!(
            fault,
            ReadFault::PinViolated {
                root_height: 3,
                pinned: 1
            }
        );
        assert!(fault.is_evidence());
        // The same response under a plain bound is fine.
        assert!(verify_read(&mut registry, &response, &request, 1, None).is_ok());
    }

    #[test]
    fn consistency_min_covered() {
        assert_eq!(ReadConsistency::Fresh.min_covered(10), 10);
        assert_eq!(ReadConsistency::BoundedStaleness(3).min_covered(10), 7);
        assert_eq!(ReadConsistency::BoundedStaleness(30).min_covered(10), 0);
        assert_eq!(ReadConsistency::AtHeight(4).min_covered(10), 4);
    }

    #[test]
    fn registry_cache_is_bounded_and_keeps_genesis() {
        let kps = keys(2);
        let mut registry = RootRegistry::new(pks(&kps), vec![Digest::new([7; 32])]);
        for h in 1..=300u64 {
            registry.note_verified_roots(
                h,
                &[ShardRoot {
                    server: 0,
                    root: Digest::new([h as u8; 32]),
                }],
            );
        }
        assert!(registry.root_at(0, 0).is_some(), "genesis never evicted");
        assert!(registry.root_at(0, 300).is_some());
        assert!(registry.root_at(0, 5).is_none(), "old heights evicted");
        assert_eq!(registry.known_tip(), 300);
    }
}
