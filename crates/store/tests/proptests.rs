//! Property-based tests for the datastore substrate.

use fides_store::authenticated::{leaf_digest, AuthenticatedShard};
use fides_store::{Key, MultiVersionStore, SingleVersionStore, Timestamp, Value};
use proptest::prelude::*;

fn key(i: u8) -> Key {
    Key::new(format!("k{i:03}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The speculative root equals the root after actually committing
    /// the same writes — the invariant TFCommit's vote phase depends on
    /// (§4.3.1).
    #[test]
    fn speculative_root_matches_commit(
        n in 1usize..24,
        writes in proptest::collection::vec((any::<u8>(), any::<i64>()), 1..12),
    ) {
        let items: Vec<(Key, Value)> =
            (0..n).map(|i| (key(i as u8), Value::from_i64(i as i64))).collect();
        let mut spec_shard = AuthenticatedShard::new(items.clone());
        let mut commit_shard = AuthenticatedShard::new(items);

        let writes: Vec<(Key, Value)> = writes
            .into_iter()
            .map(|(k, v)| (key(k % n as u8), Value::from_i64(v)))
            .collect();
        // Deduplicate: within one block each key is written once
        // (non-conflicting batch); keep the last write per key.
        let mut dedup: std::collections::BTreeMap<Key, Value> = Default::default();
        for (k, v) in writes {
            dedup.insert(k, v);
        }
        let writes: Vec<(Key, Value)> = dedup.into_iter().collect();

        let before = spec_shard.root();
        let speculative = spec_shard.speculative_root(&writes);
        prop_assert_eq!(spec_shard.root(), before, "speculation must not mutate");

        commit_shard.apply_commit(Timestamp::new(1, 0), &[], &writes);
        prop_assert_eq!(speculative, commit_shard.root());
    }

    /// Committed values are always provable against the live root, and
    /// proofs never validate wrong values.
    #[test]
    fn proofs_sound_after_random_history(
        ops in proptest::collection::vec((any::<u8>(), any::<i64>()), 1..30),
    ) {
        let n = 16u8;
        let items: Vec<(Key, Value)> =
            (0..n).map(|i| (key(i), Value::from_i64(0))).collect();
        let mut shard = AuthenticatedShard::new(items);
        let mut ts = 0u64;
        for (k, v) in ops {
            ts += 1;
            shard.apply_commit(
                Timestamp::new(ts, 0),
                &[],
                &[(key(k % n), Value::from_i64(v))],
            );
        }
        // Membership proofs anchor to the value root, which recombines
        // with the key root into the co-signed composite root.
        let value_root = shard.value_root();
        prop_assert_eq!(
            fides_store::combine_roots(&value_root, &shard.key_root()),
            shard.root()
        );
        for i in 0..n {
            let (value, vo) = shard.proof_latest(&key(i)).expect("preloaded");
            prop_assert!(vo.verify(leaf_digest(&key(i), &value), &value_root));
            // A different value must not verify.
            let wrong = Value::from_i64(value.as_i64().unwrap_or(0) + 1);
            prop_assert!(!vo.verify(leaf_digest(&key(i), &wrong), &value_root));
        }
        // Batched reads (multiproof + absence brackets) verify against
        // the composite root, and absent keys are provably unbound.
        let request: Vec<Key> = (0..n).map(key).chain([Key::new("nope")]).collect();
        let bundle = shard.prove_read(&request);
        let values = bundle.verify(&request, &shard.root()).expect("bundle verifies");
        prop_assert!(values[..n as usize].iter().all(|v| v.is_some()));
        prop_assert!(values[n as usize].is_none());
    }

    /// Historical reconstruction agrees with the roots observed live at
    /// every version (multi-versioned audit, §4.2.2).
    #[test]
    fn version_reconstruction_matches_live_roots(
        ops in proptest::collection::vec((any::<u8>(), any::<i64>()), 1..16),
    ) {
        let n = 8u8;
        let items: Vec<(Key, Value)> =
            (0..n).map(|i| (key(i), Value::from_i64(0))).collect();
        let mut shard = AuthenticatedShard::new(items);
        let mut observed: Vec<(Timestamp, fides_crypto::Digest)> = Vec::new();
        let mut ts = 0u64;
        for (k, v) in ops {
            ts += 1;
            let stamp = Timestamp::new(ts, 0);
            shard.apply_commit(stamp, &[], &[(key(k % n), Value::from_i64(v))]);
            observed.push((stamp, shard.root()));
        }
        for (stamp, root) in observed {
            prop_assert_eq!(shard.root_at_version(stamp), root);
        }
    }

    /// Rollback never leaves versions newer than the target and keeps
    /// the surviving history intact.
    #[test]
    fn rollback_invariants(
        writes in proptest::collection::vec((any::<u8>(), 1u64..50), 1..20),
        cut in 1u64..50,
    ) {
        let mut store = MultiVersionStore::new();
        for i in 0..4u8 {
            store.load(key(i), Value::from_i64(0));
        }
        for (k, t) in &writes {
            store.commit_write(&key(k % 4), Value::from_i64(*t as i64), Timestamp::new(*t, 0));
        }
        let cut_ts = Timestamp::new(cut, u32::MAX);
        let expected: std::collections::HashMap<Key, Option<Value>> = (0..4u8)
            .map(|i| (key(i), store.value_at(&key(i), cut_ts)))
            .collect();
        store.rollback_to(cut_ts);
        for i in 0..4u8 {
            let k = key(i);
            prop_assert_eq!(store.get(&k).map(|s| s.value), expected[&k].clone());
            if let Some(state) = store.get(&k) {
                prop_assert!(state.wts <= cut_ts);
                prop_assert!(state.rts <= cut_ts);
            }
        }
    }

    /// Single-version store timestamps are monotone under any op mix.
    #[test]
    fn single_version_timestamps_monotone(
        ops in proptest::collection::vec((any::<bool>(), any::<u8>(), 1u64..100), 1..40),
    ) {
        let mut store = SingleVersionStore::new();
        for i in 0..4u8 {
            store.load(key(i), Value::from_i64(0));
        }
        let mut high_water: std::collections::HashMap<Key, (Timestamp, Timestamp)> =
            Default::default();
        for (is_write, k, t) in ops {
            let k = key(k % 4);
            let ts = Timestamp::new(t, 0);
            if is_write {
                store.commit_write(&k, Value::from_i64(t as i64), ts);
            } else {
                store.commit_read(&k, ts);
            }
            let state = store.get(&k).unwrap();
            let entry = high_water.entry(k).or_insert((Timestamp::ZERO, Timestamp::ZERO));
            prop_assert!(state.rts >= entry.0, "rts regressed");
            prop_assert!(state.wts >= entry.1, "wts regressed");
            *entry = (state.rts, state.wts);
            prop_assert!(state.rts >= state.wts, "rts >= wts invariant (writes bump both)");
        }
    }
}
