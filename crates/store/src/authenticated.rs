//! A Merkle-authenticated shard (paper §4.2.2).
//!
//! Wraps a [`MultiVersionStore`] with an incrementally-maintained Merkle
//! hash tree whose leaves are `H(key ‖ value)` in key-creation order.
//! The shard produces:
//!
//! * **speculative roots** — the root the shard *would* have if a
//!   transaction's writes were applied, computed in memory without
//!   touching the datastore (§4.3.1: "since MHT computation is done in
//!   memory, the datastore is unaffected if Ti eventually aborts");
//! * **verification objects** at the latest state or at any historical
//!   version, which the auditor checks against the roots logged in
//!   blocks (Lemma 2).
//!
//! The timestamps (`rts`/`wts`) are deliberately *not* part of the leaf
//! hash: the auditor verifies timestamps by replaying the log (Lemmas 1
//! and 3); the tree authenticates values.
//!
//! # The composite shard root
//!
//! The root a shard publishes (and cohorts co-sign into blocks) is a
//! **composite**: `H(value_root ‖ key_root)`, where the *value tree*
//! holds `H(key ‖ value)` leaves in creation order and the *key tree*
//! holds `H(key)` leaves in **sorted key order**. The value tree backs
//! membership proofs (verification objects, multiproofs); the key tree
//! backs **absence proofs** — two key-adjacent leaves bracketing a
//! missing key prove it is unbound, so negative reads are as
//! tamper-evident as positive ones (see [`crate::proofs`]). Updating an
//! existing key leaves the key tree untouched; only key *creation*
//! (rare — the keyspace is preloaded) rebuilds it.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use fides_crypto::encoding::Encoder;
use fides_crypto::merkle::{hash_leaf, MerkleTree, VerificationObject};
use fides_crypto::Digest;

use crate::checkpoint::{CheckpointItem, ShardCheckpoint};
use crate::multi::MultiVersionStore;
use crate::types::{ItemState, Key, Timestamp, Value};

/// Cumulative Merkle-maintenance statistics — the "MHT update time" the
/// paper plots in Figure 14.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MhtUpdateStats {
    /// Number of leaf replacements performed.
    pub leaf_updates: u64,
    /// Total internal nodes rehashed (≈ `leaf_updates · log₂ n`).
    pub nodes_recomputed: u64,
    /// Wall-clock time spent in Merkle maintenance.
    pub elapsed: Duration,
}

impl MhtUpdateStats {
    fn absorb(&mut self, other: MhtUpdateStats) {
        self.leaf_updates += other.leaf_updates;
        self.nodes_recomputed += other.nodes_recomputed;
        self.elapsed += other.elapsed;
    }
}

/// Computes the canonical leaf digest for a `(key, value)` pair.
pub fn leaf_digest(key: &Key, value: &Value) -> Digest {
    let mut enc = Encoder::new();
    enc.put_str(key.as_str());
    enc.put_str(value.as_str());
    hash_leaf(enc.as_bytes())
}

/// Computes the canonical **key tree** leaf digest for a key — domain
/// separated from [`leaf_digest`] so a key leaf can never be confused
/// with a value leaf.
pub fn key_leaf_digest(key: &Key) -> Digest {
    let mut enc = Encoder::new();
    enc.put_str("fides.key.v1");
    enc.put_str(key.as_str());
    hash_leaf(enc.as_bytes())
}

/// Combines a value-tree root and a key-tree root into the composite
/// shard root that cohorts co-sign into blocks. Hash binding makes the
/// pair unique: a prover must exhibit the genuine `(value_root,
/// key_root)` halves for any co-signed composite, so value proofs and
/// absence proofs anchor to the same 32-byte commitment.
pub fn combine_roots(value_root: &Digest, key_root: &Digest) -> Digest {
    fides_crypto::sha256::Sha256::digest_parts(&[
        b"fides.shardroot.v1",
        value_root.as_bytes(),
        key_root.as_bytes(),
    ])
}

/// A shard whose contents are authenticated by a Merkle hash tree.
///
/// # Example
///
/// ```
/// use fides_store::{AuthenticatedShard, Key, Timestamp, Value};
///
/// let mut shard = AuthenticatedShard::new(vec![
///     (Key::new("x"), Value::from_i64(1000)),
///     (Key::new("y"), Value::from_i64(500)),
/// ]);
/// let root_before = shard.root();
///
/// let ts = Timestamp::new(100, 0);
/// shard.apply_commit(ts, &[Key::new("y")], &[(Key::new("x"), Value::from_i64(900))]);
/// assert_ne!(shard.root(), root_before);
///
/// // The auditor can verify x's value against the new value root.
/// let (value, vo) = shard.proof_latest(&Key::new("x")).unwrap();
/// assert_eq!(value.as_i64(), Some(900));
/// assert!(vo.verify(fides_store::authenticated::leaf_digest(&Key::new("x"), &value), &shard.value_root()));
/// // ...and the value root chains into the co-signed composite root.
/// assert_eq!(
///     fides_store::authenticated::combine_roots(&shard.value_root(), &shard.key_root()),
///     shard.root(),
/// );
/// ```
#[derive(Clone, Debug)]
pub struct AuthenticatedShard {
    store: MultiVersionStore,
    tree: MerkleTree,
    /// Merkle tree over [`key_leaf_digest`] leaves in sorted key order —
    /// the absence-proof half of the composite root. Rebuilt only when
    /// a key is created.
    key_tree: MerkleTree,
    /// The key tree's leaf order (all keys, sorted): `key_order[i]` is
    /// leaf `i`. Kept in lock-step with `key_tree` so live absence
    /// proofs find their bracket by binary search instead of an `O(n)`
    /// scan under the shard lock.
    key_order: Vec<Key>,
    /// Key → (leaf index, creation timestamp). Leaf indexes are assigned
    /// in creation order, so the keys existing at any version occupy a
    /// prefix of the leaf level.
    index: BTreeMap<Key, (usize, Timestamp)>,
    stats: MhtUpdateStats,
}

impl AuthenticatedShard {
    /// Builds a shard over the initial `(key, value)` population. Items
    /// are loaded with zero timestamps, in the order given (leaf index =
    /// position).
    pub fn new(items: Vec<(Key, Value)>) -> Self {
        let mut store = MultiVersionStore::new();
        let mut index = BTreeMap::new();
        let mut leaves = Vec::with_capacity(items.len());
        for (i, (key, value)) in items.into_iter().enumerate() {
            leaves.push(leaf_digest(&key, &value));
            index.insert(key.clone(), (i, Timestamp::ZERO));
            store.load(key, value);
        }
        let key_order: Vec<Key> = index.keys().cloned().collect();
        let key_tree = key_tree_of(key_order.iter());
        AuthenticatedShard {
            store,
            tree: MerkleTree::from_leaves(leaves),
            key_tree,
            key_order,
            index,
            stats: MhtUpdateStats::default(),
        }
    }

    /// The latest state of `key`, if stored here.
    pub fn read(&self, key: &Key) -> Option<ItemState> {
        self.store.get(key)
    }

    /// Returns `true` if the shard stores `key`.
    pub fn contains(&self, key: &Key) -> bool {
        self.index.contains_key(key)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Returns `true` if the shard holds no items.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// All keys of this shard, in key order.
    pub fn keys(&self) -> impl Iterator<Item = &Key> {
        self.index.keys()
    }

    /// The current **composite** root of the shard — what cohorts
    /// co-sign into blocks: `H(value_root ‖ key_root)`
    /// ([`combine_roots`]).
    pub fn root(&self) -> Digest {
        combine_roots(&self.tree.root(), &self.key_tree.root())
    }

    /// The value tree's root (membership proofs verify against this
    /// half of the composite).
    pub fn value_root(&self) -> Digest {
        self.tree.root()
    }

    /// The key tree's root (absence proofs verify against this half).
    pub fn key_root(&self) -> Digest {
        self.key_tree.root()
    }

    /// The root the shard would have after applying `writes`, computed
    /// in memory and rolled back — the `root_mht` each involved cohort
    /// sends in its TFCommit vote (§4.3.1).
    ///
    /// Writes to keys not yet in the shard are appended on a cloned tree
    /// (slower path, kept rare by preloading the keyspace); only that
    /// path recomputes the key tree — updates to existing keys reuse the
    /// live key root unchanged.
    pub fn speculative_root(&mut self, writes: &[(Key, Value)]) -> Digest {
        let any_new = writes.iter().any(|(k, _)| !self.index.contains_key(k));
        if any_new {
            let mut tree = self.tree.clone();
            for (key, value) in writes {
                match self.index.get(key) {
                    Some((idx, _)) => {
                        tree.update_leaf(*idx, leaf_digest(key, value));
                    }
                    None => {
                        tree.push_leaf(leaf_digest(key, value));
                    }
                }
            }
            // The created keys join the sorted key set.
            let mut keys: Vec<&Key> = self.index.keys().collect();
            keys.extend(
                writes
                    .iter()
                    .map(|(k, _)| k)
                    .filter(|k| !self.index.contains_key(*k)),
            );
            keys.sort_unstable();
            keys.dedup();
            let key_tree = key_tree_of(keys.into_iter());
            return combine_roots(&tree.root(), &key_tree.root());
        }
        // Fast path: a single overlay pass over the immutable tree —
        // no apply, no revert, and by construction "the datastore is
        // unaffected if Ti eventually aborts" (§4.3.1).
        let start = Instant::now();
        let updates: Vec<(usize, Digest)> = writes
            .iter()
            .map(|(key, value)| (self.index[key].0, leaf_digest(key, value)))
            .collect();
        let (root, nodes) = self.tree.root_with_updates(&updates);
        self.stats.absorb(MhtUpdateStats {
            leaf_updates: writes.len() as u64,
            nodes_recomputed: nodes as u64,
            elapsed: start.elapsed(),
        });
        combine_roots(&root, &self.key_tree.root())
    }

    /// Applies a committed transaction at `ts`: advances `rts` of read
    /// keys, writes new versions and incrementally updates the tree.
    /// Returns the Merkle-maintenance cost of this call.
    pub fn apply_commit(
        &mut self,
        ts: Timestamp,
        reads: &[Key],
        writes: &[(Key, Value)],
    ) -> MhtUpdateStats {
        for key in reads {
            self.store.commit_read(key, ts);
        }
        let start = Instant::now();
        let mut nodes = 0u64;
        let mut leaf_updates = 0u64;
        let mut created = false;
        // Existing keys batch into one shared-path update; only new
        // keys take the append path.
        let mut updates: Vec<(usize, Digest)> = Vec::with_capacity(writes.len());
        for (key, value) in writes {
            self.store.commit_write(key, value.clone(), ts);
            let digest = leaf_digest(key, value);
            match self.index.get(key) {
                Some((idx, _)) => updates.push((*idx, digest)),
                None => {
                    let idx = self.tree.push_leaf(digest);
                    self.index.insert(key.clone(), (idx, ts));
                    nodes += self.tree.height() as u64;
                    created = true;
                }
            }
            leaf_updates += 1;
        }
        nodes += self.tree.update_leaves_parallel(&updates) as u64;
        if created {
            // Key creation changes the sorted key set: rebuild the key
            // tree (rare — the keyspace is preloaded).
            self.key_order = self.index.keys().cloned().collect();
            self.key_tree = key_tree_of(self.key_order.iter());
            nodes += self.key_tree.len() as u64;
        }
        let call_stats = MhtUpdateStats {
            leaf_updates,
            nodes_recomputed: nodes,
            elapsed: start.elapsed(),
        };
        self.stats.absorb(call_stats);
        call_stats
    }

    /// Applies a committed transaction to the datastore *without*
    /// Merkle maintenance — used by the trusted 2PC baseline (§6.1),
    /// which keeps no authenticated structures.
    pub fn apply_commit_store_only(
        &mut self,
        ts: Timestamp,
        reads: &[Key],
        writes: &[(Key, Value)],
    ) {
        for key in reads {
            self.store.commit_read(key, ts);
        }
        for (key, value) in writes {
            self.store.commit_write(key, value.clone(), ts);
            if !self.index.contains_key(key) {
                let idx = self.index.len();
                self.index.insert(key.clone(), (idx, ts));
            }
        }
    }

    /// The latest value of `key` with its verification object against
    /// [`AuthenticatedShard::root`].
    pub fn proof_latest(&self, key: &Key) -> Option<(Value, VerificationObject)> {
        let (idx, _) = *self.index.get(key)?;
        let state = self.store.get(key)?;
        Some((state.value, self.tree.proof(idx)))
    }

    /// Reconstructs the Merkle tree as of version `ts` from the
    /// (possibly corrupted) datastore — the server-side computation when
    /// an auditor audits version `ts` (§4.2.2, multi-versioned audit).
    pub fn tree_at_version(&self, ts: Timestamp) -> MerkleTree {
        // Keys existing at ts occupy a prefix of the leaf level because
        // leaf indexes are assigned in commit order.
        let mut entries: Vec<(usize, &Key)> = self
            .index
            .iter()
            .filter(|(_, (_, created))| *created <= ts)
            .map(|(k, (idx, _))| (*idx, k))
            .collect();
        entries.sort_unstable_by_key(|(idx, _)| *idx);
        let leaves = entries
            .into_iter()
            .map(|(_, key)| {
                let value = self
                    .store
                    .value_at(key, ts)
                    .expect("key created at or before ts has a version at ts");
                leaf_digest(key, &value)
            })
            .collect();
        MerkleTree::from_leaves(leaves)
    }

    /// Reconstructs the **key tree** as of version `ts`: the sorted set
    /// of keys created at or before `ts`.
    pub fn key_tree_at_version(&self, ts: Timestamp) -> MerkleTree {
        key_tree_of(
            self.index
                .iter()
                .filter(|(_, (_, created))| *created <= ts)
                .map(|(k, _)| k),
        )
    }

    /// The composite shard root as of version `ts` — what this shard
    /// co-signed in the last block whose writes reached `ts`.
    pub fn root_at_version(&self, ts: Timestamp) -> Digest {
        combine_roots(
            &self.tree_at_version(ts).root(),
            &self.key_tree_at_version(ts).root(),
        )
    }

    /// The value and verification object of `key` at version `ts`, built
    /// from the live datastore (a corrupted store yields a VO whose root
    /// mismatches the logged one — exactly Lemma 2's detection).
    pub fn proof_at_version(
        &self,
        key: &Key,
        ts: Timestamp,
    ) -> Option<(Value, VerificationObject)> {
        let (idx, created) = *self.index.get(key)?;
        if created > ts {
            return None;
        }
        let value = self.store.value_at(key, ts)?;
        let tree = self.tree_at_version(ts);
        Some((value, tree.proof(idx)))
    }

    /// Exports the shard as a [`ShardCheckpoint`]: every item in
    /// leaf-index order with its full version chain and timestamps.
    /// [`AuthenticatedShard::from_checkpoint`] reproduces a shard with
    /// an identical Merkle root, datastore and historical proofs.
    pub fn checkpoint(&self) -> ShardCheckpoint {
        let mut entries: Vec<(usize, &Key, Timestamp)> = self
            .index
            .iter()
            .map(|(k, (idx, created))| (*idx, k, *created))
            .collect();
        entries.sort_unstable_by_key(|(idx, _, _)| *idx);
        let items = entries
            .into_iter()
            .map(|(_, key, created)| {
                let (versions, rts) = self
                    .store
                    .export_chain(key)
                    .expect("indexed key exists in the store");
                CheckpointItem {
                    key: key.clone(),
                    created,
                    rts,
                    versions,
                }
            })
            .collect();
        ShardCheckpoint { items }
    }

    /// Rebuilds a shard from a checkpoint taken with
    /// [`AuthenticatedShard::checkpoint`]. Leaf order, version chains
    /// and timestamps are restored verbatim, so the Merkle root matches
    /// the checkpointed shard's root exactly.
    pub fn from_checkpoint(checkpoint: &ShardCheckpoint) -> Self {
        let mut store = MultiVersionStore::new();
        let mut index = BTreeMap::new();
        let mut leaves = Vec::with_capacity(checkpoint.items.len());
        for (i, item) in checkpoint.items.iter().enumerate() {
            let (_, latest) = item
                .versions
                .last()
                .expect("checkpoint chains are non-empty");
            leaves.push(leaf_digest(&item.key, latest));
            index.insert(item.key.clone(), (i, item.created));
            store.restore_chain(item.key.clone(), item.versions.clone(), item.rts);
        }
        let key_order: Vec<Key> = index.keys().cloned().collect();
        let key_tree = key_tree_of(key_order.iter());
        AuthenticatedShard {
            store,
            tree: MerkleTree::from_leaves(leaves),
            key_tree,
            key_order,
            index,
            stats: MhtUpdateStats::default(),
        }
    }

    /// Cumulative Merkle-maintenance statistics since construction (or
    /// the last [`AuthenticatedShard::reset_stats`]).
    pub fn stats(&self) -> MhtUpdateStats {
        self.stats
    }

    /// Zeroes the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats = MhtUpdateStats::default();
    }

    /// Mutable access to the underlying store, for fault injection
    /// (datastore corruption) in tests and examples.
    #[doc(hidden)]
    pub fn store_mut(&mut self) -> &mut MultiVersionStore {
        &mut self.store
    }

    /// Read access to the underlying store.
    pub fn store(&self) -> &MultiVersionStore {
        &self.store
    }

    /// The value-tree leaf index and creation timestamp of `key`, if
    /// stored here (proof plumbing for [`crate::proofs`]).
    pub(crate) fn leaf_index(&self, key: &Key) -> Option<(usize, Timestamp)> {
        self.index.get(key).copied()
    }

    /// The live value tree (proof plumbing).
    pub(crate) fn value_tree(&self) -> &MerkleTree {
        &self.tree
    }

    /// The live key tree (proof plumbing).
    pub(crate) fn live_key_tree(&self) -> &MerkleTree {
        &self.key_tree
    }

    /// The key tree's sorted leaf order (proof plumbing): live absence
    /// proofs binary-search their bracket here in `O(log n)`.
    pub(crate) fn key_order(&self) -> &[Key] {
        &self.key_order
    }

    /// Position of `key` in sorted key order among keys created at or
    /// before `ts` (= its key-tree slot if present), plus the bracketing
    /// predecessor/successor keys. `O(n)` over the shard's key set —
    /// audit-path only (historical absence proofs); the live path uses
    /// [`AuthenticatedShard::key_order`] instead.
    pub(crate) fn key_neighbors_at(
        &self,
        key: &Key,
        ts: Timestamp,
    ) -> (usize, Option<Key>, Option<Key>, usize) {
        let mut pos = 0usize;
        let mut total = 0usize;
        let mut pred: Option<&Key> = None;
        let mut succ: Option<&Key> = None;
        for (k, (_, created)) in self.index.iter() {
            if *created > ts {
                continue;
            }
            total += 1;
            if k < key {
                pos += 1;
                pred = Some(k);
            } else if k > key && succ.is_none() {
                succ = Some(k);
            }
        }
        (pos, pred.cloned(), succ.cloned(), total)
    }
}

/// Builds the sorted key tree over an (ascending) key iterator.
fn key_tree_of<'a>(keys: impl Iterator<Item = &'a Key>) -> MerkleTree {
    MerkleTree::from_leaves(keys.map(key_leaf_digest).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(n: usize) -> AuthenticatedShard {
        AuthenticatedShard::new(
            (0..n)
                .map(|i| (Key::new(format!("item-{i:04}")), Value::from_i64(i as i64)))
                .collect(),
        )
    }

    fn ts(c: u64) -> Timestamp {
        Timestamp::new(c, 0)
    }

    #[test]
    fn initial_roots_deterministic() {
        assert_eq!(shard(16).root(), shard(16).root());
        assert_ne!(shard(16).root(), shard(17).root());
    }

    #[test]
    fn speculative_root_matches_committed_root() {
        let mut a = shard(32);
        let mut b = shard(32);
        let writes = vec![
            (Key::new("item-0003"), Value::from_i64(333)),
            (Key::new("item-0017"), Value::from_i64(777)),
        ];
        let spec = a.speculative_root(&writes);
        // Speculation must not change the live root.
        assert_eq!(a.root(), b.root());
        b.apply_commit(ts(1), &[], &writes);
        assert_eq!(spec, b.root());
    }

    #[test]
    fn speculative_root_with_new_key() {
        let mut a = shard(8);
        let live_before = a.root();
        let writes = vec![(Key::new("new-key"), Value::from_i64(1))];
        let spec = a.speculative_root(&writes);
        assert_eq!(a.root(), live_before, "speculation must not mutate");
        let mut b = shard(8);
        b.apply_commit(ts(1), &[], &writes);
        assert_eq!(spec, b.root());
    }

    #[test]
    fn apply_commit_updates_store_and_tree() {
        let mut s = shard(8);
        let before = s.root();
        s.apply_commit(
            ts(10),
            &[Key::new("item-0001")],
            &[(Key::new("item-0002"), Value::from_i64(99))],
        );
        assert_ne!(s.root(), before);
        let item = s.read(&Key::new("item-0002")).unwrap();
        assert_eq!(item.value.as_i64(), Some(99));
        assert_eq!(item.wts, ts(10));
        assert_eq!(s.read(&Key::new("item-0001")).unwrap().rts, ts(10));
    }

    #[test]
    fn proof_latest_verifies() {
        let mut s = shard(20);
        s.apply_commit(ts(5), &[], &[(Key::new("item-0007"), Value::from_i64(70))]);
        let (value, vo) = s.proof_latest(&Key::new("item-0007")).unwrap();
        assert!(vo.verify(leaf_digest(&Key::new("item-0007"), &value), &s.value_root()));
        // The value root chains into the co-signed composite.
        assert_eq!(combine_roots(&s.value_root(), &s.key_root()), s.root());
    }

    #[test]
    fn historical_proof_verifies_against_historical_root() {
        let mut s = shard(8);
        let key = Key::new("item-0004");
        s.apply_commit(ts(10), &[], &[(key.clone(), Value::from_i64(100))]);
        let value_root_10 = s.value_root();
        let root_10 = s.root();
        s.apply_commit(ts(20), &[], &[(key.clone(), Value::from_i64(200))]);

        let (value, vo) = s.proof_at_version(&key, ts(10)).unwrap();
        assert_eq!(value.as_i64(), Some(100));
        assert!(vo.verify(leaf_digest(&key, &value), &value_root_10));
        // And the reconstruction matches the live roots recorded then —
        // both the value half and the composite.
        assert_eq!(s.tree_at_version(ts(10)).root(), value_root_10);
        assert_eq!(s.root_at_version(ts(10)), root_10);
    }

    #[test]
    fn corruption_detected_by_version_proof() {
        let mut s = shard(8);
        let key = Key::new("item-0004");
        s.apply_commit(ts(100), &[], &[(key.clone(), Value::from_i64(900))]);
        let honest_root = s.root();

        // The server silently rewrites history (paper §5 Scenario 3).
        s.store_mut()
            .corrupt_version(&key, ts(100), Value::from_i64(1000));

        let (value, vo) = s.proof_at_version(&key, ts(100)).unwrap();
        // The VO computed from the corrupted store no longer matches the
        // root that was logged at commit time.
        assert!(
            !vo.verify(
                leaf_digest(&key, &Value::from_i64(900)),
                &s.tree_at_version(ts(100)).root()
            ) || value.as_i64() != Some(900)
        );
        assert_ne!(s.tree_at_version(ts(100)).root(), honest_root);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut s = shard(64);
        assert_eq!(s.stats(), MhtUpdateStats::default());
        s.apply_commit(ts(1), &[], &[(Key::new("item-0001"), Value::from_i64(5))]);
        let st = s.stats();
        assert_eq!(st.leaf_updates, 1);
        assert_eq!(st.nodes_recomputed, 6); // log2(64)
        s.reset_stats();
        assert_eq!(s.stats(), MhtUpdateStats::default());
    }

    #[test]
    fn new_key_extends_tree() {
        let mut s = shard(4);
        let key_root_before = s.key_root();
        s.apply_commit(ts(9), &[], &[(Key::new("zzz-new"), Value::from_i64(1))]);
        assert_eq!(s.len(), 5);
        let (value, vo) = s.proof_latest(&Key::new("zzz-new")).unwrap();
        assert!(vo.verify(leaf_digest(&Key::new("zzz-new"), &value), &s.value_root()));
        // Key creation moves the key tree too.
        assert_ne!(s.key_root(), key_root_before);
        // Version reconstruction before creation excludes it.
        assert!(s.proof_at_version(&Key::new("zzz-new"), ts(5)).is_none());
        assert_eq!(s.key_tree_at_version(ts(5)).root(), key_root_before);
    }

    #[test]
    fn reads_do_not_change_root() {
        let mut s = shard(8);
        let before = s.root();
        s.apply_commit(ts(3), &[Key::new("item-0000")], &[]);
        assert_eq!(s.root(), before);
    }

    // ------------------------------------------------------------------
    // proof_at_version boundary regressions: exact-height, pre-first-
    // write (absence), and post-checkpoint-restore reconstruction. The
    // commit timestamp's client tie-breaker participates in the
    // boundary, so `ts-10.2` written state must be invisible at
    // `ts-10.1` and visible at `ts-10.2`/`ts-10.3`.
    // ------------------------------------------------------------------

    #[test]
    fn proof_at_version_exact_write_boundary() {
        let mut s = shard(8);
        let key = Key::new("item-0004");
        s.apply_commit(
            Timestamp::new(10, 2),
            &[],
            &[(key.clone(), Value::from_i64(100))],
        );
        s.apply_commit(
            Timestamp::new(20, 0),
            &[],
            &[(key.clone(), Value::from_i64(200))],
        );

        // Exactly at the write timestamp: the written value.
        let (v, vo) = s.proof_at_version(&key, Timestamp::new(10, 2)).unwrap();
        assert_eq!(v.as_i64(), Some(100));
        assert!(vo.verify(
            leaf_digest(&key, &v),
            &s.tree_at_version(Timestamp::new(10, 2)).root()
        ));
        // One client-tiebreak below: the previous value.
        let (v, _) = s.proof_at_version(&key, Timestamp::new(10, 1)).unwrap();
        assert_eq!(v.as_i64(), Some(4));
        // One above: still the ts-10.2 value.
        let (v, _) = s.proof_at_version(&key, Timestamp::new(10, 3)).unwrap();
        assert_eq!(v.as_i64(), Some(100));
    }

    #[test]
    fn proof_at_version_before_creation_is_absence() {
        let mut s = shard(4);
        let key = Key::new("zzz-new");
        s.apply_commit(
            Timestamp::new(10, 1),
            &[],
            &[(key.clone(), Value::from_i64(1))],
        );
        // Strictly before creation (including the exact-counter, lower
        // tie-break boundary): no membership proof, but a verifying
        // absence proof against the same version's key root.
        for before in [Timestamp::new(5, 0), Timestamp::new(10, 0)] {
            assert!(s.proof_at_version(&key, before).is_none(), "{before}");
            let absence = s.absence_proof_at_version(&key, before).unwrap();
            assert!(absence.verify(&key, &s.key_tree_at_version(before).root()));
        }
        // At (and after) creation: membership, no absence.
        assert!(s.proof_at_version(&key, Timestamp::new(10, 1)).is_some());
        assert!(s
            .absence_proof_at_version(&key, Timestamp::new(10, 1))
            .is_none());
    }

    #[test]
    fn proof_at_version_survives_checkpoint_restore() {
        // Version chains are restored verbatim, so historical proofs
        // keep working after a restart from a checkpoint — including at
        // the exact write boundary.
        let mut s = shard(8);
        let key = Key::new("item-0002");
        s.apply_commit(ts(10), &[], &[(key.clone(), Value::from_i64(22))]);
        s.apply_commit(ts(20), &[], &[(key.clone(), Value::from_i64(33))]);
        let value_root_10 = s.tree_at_version(ts(10)).root();
        let root_10 = s.root_at_version(ts(10));

        let restored = s.checkpoint().restore();
        let (v, vo) = restored.proof_at_version(&key, ts(10)).unwrap();
        assert_eq!(v.as_i64(), Some(22));
        assert!(vo.verify(leaf_digest(&key, &v), &value_root_10));
        assert_eq!(restored.root_at_version(ts(10)), root_10);
        assert_eq!(restored.tree_at_version(ts(10)).root(), value_root_10);
    }

    #[test]
    fn checkpoint_roundtrip_preserves_root_and_history() {
        let mut s = shard(16);
        s.apply_commit(
            ts(10),
            &[Key::new("item-0001")],
            &[(Key::new("item-0002"), Value::from_i64(77))],
        );
        s.apply_commit(ts(20), &[], &[(Key::new("zzz-new"), Value::from_i64(5))]);
        let root_10 = s.tree_at_version(ts(10)).root();

        let restored = s.checkpoint().restore();
        assert_eq!(restored.root(), s.root());
        assert_eq!(restored.len(), s.len());
        // Latest state including timestamps.
        let item = restored.read(&Key::new("item-0002")).unwrap();
        assert_eq!(item.value.as_i64(), Some(77));
        assert_eq!(item.wts, ts(10));
        assert_eq!(restored.read(&Key::new("item-0001")).unwrap().rts, ts(10));
        // Historical reconstruction still works (full version chains).
        assert_eq!(restored.tree_at_version(ts(10)).root(), root_10);
        // And so do fresh commits on the restored shard.
        let mut a = s.clone();
        let mut b = restored;
        a.apply_commit(ts(30), &[], &[(Key::new("item-0003"), Value::from_i64(1))]);
        b.apply_commit(ts(30), &[], &[(Key::new("item-0003"), Value::from_i64(1))]);
        assert_eq!(a.root(), b.root());
    }

    #[test]
    fn checkpoint_encoding_roundtrip() {
        use fides_crypto::encoding::{Decodable, Encodable};
        let mut s = shard(8);
        s.apply_commit(ts(4), &[], &[(Key::new("item-0000"), Value::from_i64(9))]);
        let cp = s.checkpoint();
        let decoded =
            crate::checkpoint::ShardCheckpoint::decode(&cp.encode()).expect("roundtrip decodes");
        assert_eq!(decoded, cp);
        assert_eq!(decoded.restore().root(), s.root());
    }

    #[test]
    fn tree_at_version_zero_matches_initial() {
        let mut s = shard(8);
        let initial = s.root();
        s.apply_commit(ts(10), &[], &[(Key::new("item-0000"), Value::from_i64(42))]);
        assert_eq!(s.root_at_version(Timestamp::ZERO), initial);
    }
}
