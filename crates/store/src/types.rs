//! Core data-model types: [`Key`], [`Value`], [`Timestamp`] and
//! [`ItemState`].

use core::fmt;

use fides_crypto::encoding::{Decodable, DecodeError, Decoder, Encodable, Encoder};

/// A data-item identifier, unique within the whole database (paper §3.1:
/// "shards consist of a set of data items, each with a unique
/// identifier").
///
/// # Example
///
/// ```
/// use fides_store::Key;
///
/// let k = Key::new("acct:alice");
/// assert_eq!(k.as_str(), "acct:alice");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(String);

impl Key {
    /// Creates a key from any string-like value.
    pub fn new(id: impl Into<String>) -> Self {
        Key(id.into())
    }

    /// The identifier as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({})", self.0)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key::new(s)
    }
}

impl From<String> for Key {
    fn from(s: String) -> Self {
        Key::new(s)
    }
}

/// A data-item value.
///
/// Values are stored as strings, which covers both the paper's worked
/// examples (dollar balances) and YCSB-style payloads; [`Value::as_i64`]
/// parses numeric values for arithmetic in applications.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Value(String);

impl Value {
    /// Creates a value from any string-like payload.
    pub fn new(v: impl Into<String>) -> Self {
        Value(v.into())
    }

    /// Creates a numeric value.
    pub fn from_i64(v: i64) -> Self {
        Value(v.to_string())
    }

    /// The raw payload.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Parses the payload as a signed integer, if numeric.
    pub fn as_i64(&self) -> Option<i64> {
        self.0.parse().ok()
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Value({:?})", self.0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::new(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::new(s)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::from_i64(v)
    }
}

/// A totally-ordered commit timestamp: a Lamport pair
/// `⟨counter, client⟩` (paper §4.1: "any timestamp that supports total
/// ordering can be used — e.g. a Lamport clock with
/// `⟨client id : client time⟩`").
///
/// Ordering is by counter first, then client id as the tie-breaker, so
/// timestamps from different clients are always comparable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp {
    counter: u64,
    client: u32,
}

impl Timestamp {
    /// The zero timestamp: initial `rts`/`wts` of freshly loaded items.
    pub const ZERO: Timestamp = Timestamp {
        counter: 0,
        client: 0,
    };

    /// Creates a timestamp from a Lamport counter and a client id.
    pub fn new(counter: u64, client: u32) -> Self {
        Timestamp { counter, client }
    }

    /// The Lamport counter component.
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// The client-id tie-breaker component.
    pub fn client(&self) -> u32 {
        self.client
    }

    /// The immediately following counter value for the same client.
    pub fn next(&self) -> Timestamp {
        Timestamp {
            counter: self.counter + 1,
            client: self.client,
        }
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts-{}.{}", self.counter, self.client)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts-{}.{}", self.counter, self.client)
    }
}

/// The state of one data item: its value plus the read and write
/// timestamps (paper §3.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ItemState {
    /// Current value.
    pub value: Value,
    /// Commit timestamp of the last transaction that read the item.
    pub rts: Timestamp,
    /// Commit timestamp of the last transaction that wrote the item.
    pub wts: Timestamp,
}

impl ItemState {
    /// A freshly loaded item with zero timestamps.
    pub fn initial(value: Value) -> Self {
        ItemState {
            value,
            rts: Timestamp::ZERO,
            wts: Timestamp::ZERO,
        }
    }
}

impl Encodable for Key {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_str(&self.0);
    }
}

impl Decodable for Key {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Key::new(dec.take_str()?))
    }
}

impl Encodable for Value {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_str(&self.0);
    }
}

impl Decodable for Value {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Value::new(dec.take_str()?))
    }
}

impl Encodable for Timestamp {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_u64(self.counter);
        enc.put_u32(self.client);
    }
}

impl Decodable for Timestamp {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let counter = dec.take_u64()?;
        let client = dec.take_u32()?;
        Ok(Timestamp { counter, client })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_total_order() {
        let a = Timestamp::new(5, 1);
        let b = Timestamp::new(5, 2);
        let c = Timestamp::new(6, 0);
        assert!(a < b);
        assert!(b < c);
        assert!(Timestamp::ZERO < a);
    }

    #[test]
    fn timestamp_next_increments_counter() {
        let a = Timestamp::new(5, 3);
        assert_eq!(a.next(), Timestamp::new(6, 3));
    }

    #[test]
    fn value_numeric_parse() {
        assert_eq!(Value::from_i64(-42).as_i64(), Some(-42));
        assert_eq!(Value::new("1000").as_i64(), Some(1000));
        assert_eq!(Value::new("hello").as_i64(), None);
    }

    #[test]
    fn key_ordering_is_lexicographic() {
        assert!(Key::new("a") < Key::new("b"));
        assert!(Key::new("item-10") < Key::new("item-9")); // lexicographic!
    }

    #[test]
    fn encoding_roundtrips() {
        let k = Key::new("acct:alice");
        assert_eq!(Key::decode(&k.encode()).unwrap(), k);
        let v = Value::new("900");
        assert_eq!(Value::decode(&v.encode()).unwrap(), v);
        let ts = Timestamp::new(100, 7);
        assert_eq!(Timestamp::decode(&ts.encode()).unwrap(), ts);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Timestamp::new(100, 2).to_string(), "ts-100.2");
        assert_eq!(Key::new("x").to_string(), "x");
        assert_eq!(Value::from_i64(7).to_string(), "7");
    }

    #[test]
    fn item_state_initial() {
        let s = ItemState::initial(Value::from_i64(10));
        assert_eq!(s.rts, Timestamp::ZERO);
        assert_eq!(s.wts, Timestamp::ZERO);
        assert_eq!(s.value.as_i64(), Some(10));
    }
}
