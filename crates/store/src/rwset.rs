//! Read- and write-set entries — the `R set` and `W set` of every log
//! block (paper Table 1).
//!
//! * `R set`: a list of `⟨id : value, rts, wts⟩` — the value and
//!   timestamps observed when the transaction read the item.
//! * `W set`: a list of `⟨id : new_val, old_val, rts, wts⟩` — `old_val`
//!   is populated **only for blind writes** (items written without being
//!   read), captured from the write acknowledgement (§4.2.1).

use fides_crypto::encoding::{Decodable, DecodeError, Decoder, Encodable, Encoder};

use crate::types::{Key, Timestamp, Value};

/// One read-set entry: the item id, the value returned by the server and
/// the item's timestamps at the time of the read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadEntry {
    /// The data-item identifier.
    pub key: Key,
    /// The value the server returned for the read.
    pub value: Value,
    /// The item's read timestamp observed at read time.
    pub rts: Timestamp,
    /// The item's write timestamp observed at read time.
    pub wts: Timestamp,
}

/// One write-set entry: the item id, the new value, the old value (blind
/// writes only) and the item's timestamps at the time of access.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WriteEntry {
    /// The data-item identifier.
    pub key: Key,
    /// The value the transaction wrote.
    pub new_value: Value,
    /// The pre-image for blind writes (`None` when the transaction also
    /// read the item, in which case the read entry holds the pre-image).
    pub old_value: Option<Value>,
    /// The item's read timestamp observed at access time.
    pub rts: Timestamp,
    /// The item's write timestamp observed at access time.
    pub wts: Timestamp,
}

impl Encodable for ReadEntry {
    fn encode_into(&self, enc: &mut Encoder) {
        self.key.encode_into(enc);
        self.value.encode_into(enc);
        self.rts.encode_into(enc);
        self.wts.encode_into(enc);
    }
}

impl Decodable for ReadEntry {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(ReadEntry {
            key: Key::decode_from(dec)?,
            value: Value::decode_from(dec)?,
            rts: Timestamp::decode_from(dec)?,
            wts: Timestamp::decode_from(dec)?,
        })
    }
}

impl Encodable for WriteEntry {
    fn encode_into(&self, enc: &mut Encoder) {
        self.key.encode_into(enc);
        self.new_value.encode_into(enc);
        enc.put_option(&self.old_value, |e, v| v.encode_into(e));
        self.rts.encode_into(enc);
        self.wts.encode_into(enc);
    }
}

impl Decodable for WriteEntry {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(WriteEntry {
            key: Key::decode_from(dec)?,
            new_value: Value::decode_from(dec)?,
            old_value: dec.take_option(Value::decode_from)?,
            rts: Timestamp::decode_from(dec)?,
            wts: Timestamp::decode_from(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_entry_roundtrip() {
        let e = ReadEntry {
            key: Key::new("x"),
            value: Value::from_i64(1000),
            rts: Timestamp::new(92, 0),
            wts: Timestamp::new(88, 0),
        };
        assert_eq!(ReadEntry::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn write_entry_roundtrip_blind() {
        let e = WriteEntry {
            key: Key::new("y"),
            new_value: Value::from_i64(400),
            old_value: Some(Value::from_i64(500)),
            rts: Timestamp::new(48, 0),
            wts: Timestamp::new(48, 0),
        };
        assert_eq!(WriteEntry::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn write_entry_roundtrip_read_write() {
        let e = WriteEntry {
            key: Key::new("y"),
            new_value: Value::from_i64(400),
            old_value: None,
            rts: Timestamp::new(48, 0),
            wts: Timestamp::new(48, 0),
        };
        assert_eq!(WriteEntry::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn blind_and_nonblind_encode_differently() {
        let mk = |old| WriteEntry {
            key: Key::new("y"),
            new_value: Value::from_i64(1),
            old_value: old,
            rts: Timestamp::ZERO,
            wts: Timestamp::ZERO,
        };
        assert_ne!(mk(None).encode(), mk(Some(Value::from_i64(1))).encode());
    }
}
