//! Single-versioned store: keeps only the latest state of each item
//! (paper §4.2.1, "the data can be single-versioned or multi-versioned").

use std::collections::BTreeMap;

use crate::types::{ItemState, Key, Timestamp, Value};

/// A single-versioned key-value shard with per-item `rts`/`wts`.
///
/// # Example
///
/// ```
/// use fides_store::{Key, SingleVersionStore, Timestamp, Value};
///
/// let mut store = SingleVersionStore::new();
/// store.load(Key::new("x"), Value::from_i64(1000));
/// store.commit_write(&Key::new("x"), Value::from_i64(900), Timestamp::new(100, 0));
/// assert_eq!(store.get(&Key::new("x")).unwrap().value.as_i64(), Some(900));
/// ```
#[derive(Clone, Debug, Default)]
pub struct SingleVersionStore {
    items: BTreeMap<Key, ItemState>,
}

impl SingleVersionStore {
    /// Creates an empty shard.
    pub fn new() -> Self {
        SingleVersionStore {
            items: BTreeMap::new(),
        }
    }

    /// Loads an item with zero timestamps (initial database population).
    pub fn load(&mut self, key: Key, value: Value) {
        self.items.insert(key, ItemState::initial(value));
    }

    /// Returns the current state of `key`, if present.
    pub fn get(&self, key: &Key) -> Option<&ItemState> {
        self.items.get(key)
    }

    /// Returns `true` if the shard stores `key`.
    pub fn contains(&self, key: &Key) -> bool {
        self.items.contains_key(key)
    }

    /// Number of items in the shard.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if the shard is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Records that a committed transaction at `ts` read `key`:
    /// advances `rts` to `ts` if larger (paper §4.2.1: commit updates the
    /// timestamps of accessed items).
    pub fn commit_read(&mut self, key: &Key, ts: Timestamp) {
        if let Some(item) = self.items.get_mut(key) {
            if ts > item.rts {
                item.rts = ts;
            }
        }
    }

    /// Applies a committed write at `ts`: replaces the value and advances
    /// both timestamps. Inserts the item if absent.
    pub fn commit_write(&mut self, key: &Key, value: Value, ts: Timestamp) {
        let item = self
            .items
            .entry(key.clone())
            .or_insert_with(|| ItemState::initial(Value::default()));
        item.value = value;
        if ts > item.wts {
            item.wts = ts;
        }
        if ts > item.rts {
            item.rts = ts;
        }
    }

    /// Iterates over items in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &ItemState)> {
        self.items.iter()
    }

    /// All keys in order (the shard's keyspace).
    pub fn keys(&self) -> impl Iterator<Item = &Key> {
        self.items.keys()
    }

    /// Directly overwrites the stored value *without* touching
    /// timestamps. This models datastore corruption by a malicious server
    /// (paper §5, Scenario 3) and exists for fault-injection only.
    #[doc(hidden)]
    pub fn corrupt_value(&mut self, key: &Key, value: Value) -> bool {
        match self.items.get_mut(key) {
            Some(item) => {
                item.value = value;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::new(s)
    }

    #[test]
    fn load_and_get() {
        let mut s = SingleVersionStore::new();
        s.load(k("x"), Value::from_i64(10));
        let item = s.get(&k("x")).unwrap();
        assert_eq!(item.value.as_i64(), Some(10));
        assert_eq!(item.rts, Timestamp::ZERO);
        assert!(s.get(&k("y")).is_none());
    }

    #[test]
    fn commit_read_advances_rts_monotonically() {
        let mut s = SingleVersionStore::new();
        s.load(k("x"), Value::from_i64(1));
        s.commit_read(&k("x"), Timestamp::new(10, 0));
        assert_eq!(s.get(&k("x")).unwrap().rts, Timestamp::new(10, 0));
        // Older timestamp does not regress rts.
        s.commit_read(&k("x"), Timestamp::new(5, 0));
        assert_eq!(s.get(&k("x")).unwrap().rts, Timestamp::new(10, 0));
    }

    #[test]
    fn commit_write_updates_value_and_both_timestamps() {
        let mut s = SingleVersionStore::new();
        s.load(k("x"), Value::from_i64(1000));
        s.commit_write(&k("x"), Value::from_i64(900), Timestamp::new(100, 0));
        let item = s.get(&k("x")).unwrap();
        assert_eq!(item.value.as_i64(), Some(900));
        assert_eq!(item.wts, Timestamp::new(100, 0));
        assert_eq!(item.rts, Timestamp::new(100, 0));
    }

    #[test]
    fn commit_write_inserts_missing_item() {
        let mut s = SingleVersionStore::new();
        s.commit_write(&k("new"), Value::from_i64(5), Timestamp::new(1, 0));
        assert!(s.contains(&k("new")));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn commit_read_on_missing_key_is_noop() {
        let mut s = SingleVersionStore::new();
        s.commit_read(&k("ghost"), Timestamp::new(1, 0));
        assert!(s.is_empty());
    }

    #[test]
    fn corruption_changes_value_but_not_timestamps() {
        let mut s = SingleVersionStore::new();
        s.load(k("x"), Value::from_i64(1000));
        s.commit_write(&k("x"), Value::from_i64(900), Timestamp::new(100, 0));
        assert!(s.corrupt_value(&k("x"), Value::from_i64(999_999)));
        let item = s.get(&k("x")).unwrap();
        assert_eq!(item.value.as_i64(), Some(999_999));
        assert_eq!(item.wts, Timestamp::new(100, 0));
        assert!(!s.corrupt_value(&k("ghost"), Value::from_i64(0)));
    }

    #[test]
    fn iteration_is_key_ordered() {
        let mut s = SingleVersionStore::new();
        s.load(k("b"), Value::from_i64(2));
        s.load(k("a"), Value::from_i64(1));
        s.load(k("c"), Value::from_i64(3));
        let keys: Vec<_> = s.keys().map(|k| k.as_str().to_string()).collect();
        assert_eq!(keys, vec!["a", "b", "c"]);
    }
}
