//! Multi-versioned store: every committed transaction creates a new
//! version of the items it wrote, while older versions remain readable
//! (paper §4.2.1: "multi-versioned data can provide recoverability. If a
//! failure occurs, the data can be reset to the last sanitized version").

use std::collections::BTreeMap;

use crate::types::{ItemState, Key, Timestamp, Value};

/// The version history of one item: committed `(wts, value)` pairs in
/// timestamp order, plus the current read timestamp.
#[derive(Clone, Debug, Default)]
struct VersionChain {
    /// `(commit timestamp, value)` in strictly increasing ts order.
    versions: Vec<(Timestamp, Value)>,
    rts: Timestamp,
}

/// A multi-versioned key-value shard.
///
/// # Example
///
/// ```
/// use fides_store::{Key, MultiVersionStore, Timestamp, Value};
///
/// let mut store = MultiVersionStore::new();
/// store.load(Key::new("x"), Value::from_i64(1000));
/// store.commit_write(&Key::new("x"), Value::from_i64(900), Timestamp::new(100, 0));
///
/// // Latest state:
/// assert_eq!(store.get(&Key::new("x")).unwrap().value.as_i64(), Some(900));
/// // Historical state at ts-50:
/// let old = store.value_at(&Key::new("x"), Timestamp::new(50, 0)).unwrap();
/// assert_eq!(old.as_i64(), Some(1000));
/// ```
#[derive(Clone, Debug, Default)]
pub struct MultiVersionStore {
    items: BTreeMap<Key, VersionChain>,
}

impl MultiVersionStore {
    /// Creates an empty shard.
    pub fn new() -> Self {
        MultiVersionStore {
            items: BTreeMap::new(),
        }
    }

    /// Loads an item with an initial version at [`Timestamp::ZERO`].
    pub fn load(&mut self, key: Key, value: Value) {
        self.items.insert(
            key,
            VersionChain {
                versions: vec![(Timestamp::ZERO, value)],
                rts: Timestamp::ZERO,
            },
        );
    }

    /// Returns the *latest* state of `key` (value of the newest version
    /// plus current timestamps), if present.
    pub fn get(&self, key: &Key) -> Option<ItemState> {
        let chain = self.items.get(key)?;
        let (wts, value) = chain.versions.last()?;
        Some(ItemState {
            value: value.clone(),
            rts: chain.rts,
            wts: *wts,
        })
    }

    /// The value visible at version `ts`: the newest version with
    /// `wts ≤ ts` (the audit-time reconstruction of §4.2.2).
    pub fn value_at(&self, key: &Key, ts: Timestamp) -> Option<Value> {
        let chain = self.items.get(key)?;
        chain
            .versions
            .iter()
            .rev()
            .find(|(wts, _)| *wts <= ts)
            .map(|(_, v)| v.clone())
    }

    /// Returns `true` if the shard stores `key`.
    pub fn contains(&self, key: &Key) -> bool {
        self.items.contains_key(key)
    }

    /// Number of items (not versions).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if the shard is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of committed versions of `key` (including the loaded one).
    pub fn version_count(&self, key: &Key) -> usize {
        self.items.get(key).map_or(0, |c| c.versions.len())
    }

    /// Records a committed read at `ts` (advances `rts`).
    pub fn commit_read(&mut self, key: &Key, ts: Timestamp) {
        if let Some(chain) = self.items.get_mut(key) {
            if ts > chain.rts {
                chain.rts = ts;
            }
        }
    }

    /// Applies a committed write at `ts`: appends a new version (or
    /// replaces it if a version at exactly `ts` exists, which happens
    /// only when a transaction writes the same key twice).
    pub fn commit_write(&mut self, key: &Key, value: Value, ts: Timestamp) {
        let chain = self.items.entry(key.clone()).or_default();
        match chain.versions.last_mut() {
            Some((last_ts, last_val)) if *last_ts == ts => *last_val = value,
            Some((last_ts, _)) if *last_ts > ts => {
                // Out-of-order write: insert at the right position to keep
                // the chain sorted (can occur with concurrent clients).
                let pos = chain.versions.partition_point(|(wts, _)| *wts <= ts);
                chain.versions.insert(pos, (ts, value));
            }
            _ => chain.versions.push((ts, value)),
        }
        if ts > chain.rts {
            chain.rts = ts;
        }
    }

    /// Discards every version newer than `ts` — the paper's recovery
    /// path: "the data can be reset to the last sanitized version and the
    /// application can resume execution from there".
    pub fn rollback_to(&mut self, ts: Timestamp) {
        for chain in self.items.values_mut() {
            chain.versions.retain(|(wts, _)| *wts <= ts);
            if chain.rts > ts {
                chain.rts = ts;
            }
        }
        self.items.retain(|_, chain| !chain.versions.is_empty());
    }

    /// Exports `key`'s full committed state for checkpointing: the
    /// version chain (ascending `wts`) and the current read timestamp.
    pub fn export_chain(&self, key: &Key) -> Option<(Vec<(Timestamp, Value)>, Timestamp)> {
        self.items
            .get(key)
            .map(|chain| (chain.versions.clone(), chain.rts))
    }

    /// Restores a checkpointed version chain verbatim, replacing any
    /// existing state for `key`. `versions` must be non-empty and in
    /// ascending timestamp order (as produced by
    /// [`MultiVersionStore::export_chain`]).
    pub fn restore_chain(&mut self, key: Key, versions: Vec<(Timestamp, Value)>, rts: Timestamp) {
        debug_assert!(!versions.is_empty(), "restored chain must be non-empty");
        debug_assert!(versions.windows(2).all(|w| w[0].0 < w[1].0));
        self.items.insert(key, VersionChain { versions, rts });
    }

    /// Iterates over `(key, latest state)` in key order.
    pub fn iter_latest(&self) -> impl Iterator<Item = (&Key, ItemState)> {
        self.items.iter().filter_map(|(k, chain)| {
            let (wts, value) = chain.versions.last()?;
            Some((
                k,
                ItemState {
                    value: value.clone(),
                    rts: chain.rts,
                    wts: *wts,
                },
            ))
        })
    }

    /// All keys in order.
    pub fn keys(&self) -> impl Iterator<Item = &Key> {
        self.items.keys()
    }

    /// Overwrites the value of the version visible at `ts` *without*
    /// creating a new version — models datastore corruption (paper §5,
    /// Scenario 3). Fault-injection only.
    #[doc(hidden)]
    pub fn corrupt_version(&mut self, key: &Key, ts: Timestamp, value: Value) -> bool {
        if let Some(chain) = self.items.get_mut(key) {
            if let Some(entry) = chain.versions.iter_mut().rev().find(|(wts, _)| *wts <= ts) {
                entry.1 = value;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::new(s)
    }

    fn ts(c: u64) -> Timestamp {
        Timestamp::new(c, 0)
    }

    #[test]
    fn versions_accumulate() {
        let mut s = MultiVersionStore::new();
        s.load(k("x"), Value::from_i64(1));
        s.commit_write(&k("x"), Value::from_i64(2), ts(10));
        s.commit_write(&k("x"), Value::from_i64(3), ts(20));
        assert_eq!(s.version_count(&k("x")), 3);
        assert_eq!(s.get(&k("x")).unwrap().value.as_i64(), Some(3));
    }

    #[test]
    fn value_at_selects_correct_version() {
        let mut s = MultiVersionStore::new();
        s.load(k("x"), Value::from_i64(1));
        s.commit_write(&k("x"), Value::from_i64(2), ts(10));
        s.commit_write(&k("x"), Value::from_i64(3), ts(20));
        assert_eq!(s.value_at(&k("x"), ts(5)).unwrap().as_i64(), Some(1));
        assert_eq!(s.value_at(&k("x"), ts(10)).unwrap().as_i64(), Some(2));
        assert_eq!(s.value_at(&k("x"), ts(15)).unwrap().as_i64(), Some(2));
        assert_eq!(s.value_at(&k("x"), ts(99)).unwrap().as_i64(), Some(3));
    }

    #[test]
    fn rollback_discards_newer_versions() {
        let mut s = MultiVersionStore::new();
        s.load(k("x"), Value::from_i64(1));
        s.commit_write(&k("x"), Value::from_i64(2), ts(10));
        s.commit_write(&k("x"), Value::from_i64(3), ts(20));
        s.rollback_to(ts(10));
        assert_eq!(s.version_count(&k("x")), 2);
        assert_eq!(s.get(&k("x")).unwrap().value.as_i64(), Some(2));
        assert!(s.get(&k("x")).unwrap().rts <= ts(10));
    }

    #[test]
    fn rollback_drops_items_created_later() {
        let mut s = MultiVersionStore::new();
        s.commit_write(&k("y"), Value::from_i64(5), ts(50));
        s.rollback_to(ts(10));
        assert!(!s.contains(&k("y")));
    }

    #[test]
    fn out_of_order_write_keeps_chain_sorted() {
        let mut s = MultiVersionStore::new();
        s.load(k("x"), Value::from_i64(1));
        s.commit_write(&k("x"), Value::from_i64(3), ts(30));
        s.commit_write(&k("x"), Value::from_i64(2), ts(20));
        assert_eq!(s.value_at(&k("x"), ts(20)).unwrap().as_i64(), Some(2));
        assert_eq!(s.value_at(&k("x"), ts(30)).unwrap().as_i64(), Some(3));
        assert_eq!(s.get(&k("x")).unwrap().value.as_i64(), Some(3));
    }

    #[test]
    fn same_ts_write_replaces() {
        let mut s = MultiVersionStore::new();
        s.load(k("x"), Value::from_i64(1));
        s.commit_write(&k("x"), Value::from_i64(2), ts(10));
        s.commit_write(&k("x"), Value::from_i64(7), ts(10));
        assert_eq!(s.version_count(&k("x")), 2);
        assert_eq!(s.value_at(&k("x"), ts(10)).unwrap().as_i64(), Some(7));
    }

    #[test]
    fn corruption_rewrites_history_silently() {
        let mut s = MultiVersionStore::new();
        s.load(k("x"), Value::from_i64(1000));
        s.commit_write(&k("x"), Value::from_i64(900), ts(100));
        assert!(s.corrupt_version(&k("x"), ts(100), Value::from_i64(1000)));
        // Version count unchanged: the tampering is silent.
        assert_eq!(s.version_count(&k("x")), 2);
        assert_eq!(s.value_at(&k("x"), ts(100)).unwrap().as_i64(), Some(1000));
    }

    #[test]
    fn commit_read_advances_rts() {
        let mut s = MultiVersionStore::new();
        s.load(k("x"), Value::from_i64(1));
        s.commit_read(&k("x"), ts(42));
        assert_eq!(s.get(&k("x")).unwrap().rts, ts(42));
    }

    #[test]
    fn value_before_first_version_of_unloaded_item() {
        let mut s = MultiVersionStore::new();
        s.commit_write(&k("x"), Value::from_i64(9), ts(10));
        // At ts 5 the item did not exist yet.
        assert!(s.value_at(&k("x"), ts(5)).is_none());
    }
}
