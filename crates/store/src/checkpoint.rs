//! Shard checkpoints: a serializable image of an [`AuthenticatedShard`].
//!
//! A checkpoint captures everything a server needs to reconstruct its
//! authenticated datastore without replaying the whole log: every item
//! in **leaf-index order** (the order determines the Merkle tree shape)
//! with its full committed version chain, read timestamp and creation
//! timestamp. Restoring a checkpoint and asking for
//! [`AuthenticatedShard::root`] reproduces the exact root the shard had
//! when the checkpoint was taken — which is how recovery verifies a
//! snapshot against the roots co-signed in the tamper-proof log.
//!
//! The version chains are kept in full (not just the latest value) so
//! that a restored shard still answers the auditor's historical queries
//! ([`AuthenticatedShard::proof_at_version`], Lemma 2) exactly as the
//! pre-crash shard did.

use fides_crypto::encoding::{Decodable, DecodeError, Decoder, Encodable, Encoder};

use crate::authenticated::AuthenticatedShard;
use crate::types::{Key, Timestamp, Value};

/// One item's checkpointed state: identity, timestamps and the full
/// committed version chain (ascending `wts`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointItem {
    /// The item's key.
    pub key: Key,
    /// Commit timestamp at which the item was created (leaf appended).
    pub created: Timestamp,
    /// Read timestamp — the newest committed read.
    pub rts: Timestamp,
    /// Committed `(wts, value)` versions in ascending timestamp order;
    /// never empty (the last entry is the latest state).
    pub versions: Vec<(Timestamp, Value)>,
}

/// A full shard image in leaf-index order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardCheckpoint {
    /// All items, ordered by leaf index (= creation order).
    pub items: Vec<CheckpointItem>,
}

impl ShardCheckpoint {
    /// Number of checkpointed items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when the checkpoint holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Restores the shard this checkpoint was taken from.
    pub fn restore(&self) -> AuthenticatedShard {
        AuthenticatedShard::from_checkpoint(self)
    }
}

impl Encodable for CheckpointItem {
    fn encode_into(&self, enc: &mut Encoder) {
        self.key.encode_into(enc);
        self.created.encode_into(enc);
        self.rts.encode_into(enc);
        enc.put_seq(&self.versions, |e, (wts, value)| {
            wts.encode_into(e);
            value.encode_into(e);
        });
    }
}

impl Decodable for CheckpointItem {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let key = Key::decode_from(dec)?;
        let created = Timestamp::decode_from(dec)?;
        let rts = Timestamp::decode_from(dec)?;
        let versions = dec.take_seq(|d| {
            let wts = Timestamp::decode_from(d)?;
            let value = Value::decode_from(d)?;
            Ok((wts, value))
        })?;
        if versions.is_empty() {
            return Err(DecodeError::InvalidValue("checkpoint item has no versions"));
        }
        if versions.windows(2).any(|w| w[0].0 >= w[1].0) {
            return Err(DecodeError::InvalidValue(
                "checkpoint versions not strictly ascending",
            ));
        }
        Ok(CheckpointItem {
            key,
            created,
            rts,
            versions,
        })
    }
}

impl Encodable for ShardCheckpoint {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_seq(&self.items, |e, item| item.encode_into(e));
    }
}

impl Decodable for ShardCheckpoint {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(ShardCheckpoint {
            items: dec.take_seq(CheckpointItem::decode_from)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(c: u64) -> Timestamp {
        Timestamp::new(c, 0)
    }

    fn sample() -> ShardCheckpoint {
        ShardCheckpoint {
            items: vec![
                CheckpointItem {
                    key: Key::new("a"),
                    created: Timestamp::ZERO,
                    rts: ts(7),
                    versions: vec![
                        (Timestamp::ZERO, Value::from_i64(1)),
                        (ts(5), Value::from_i64(2)),
                    ],
                },
                CheckpointItem {
                    key: Key::new("b"),
                    created: ts(3),
                    rts: ts(3),
                    versions: vec![(ts(3), Value::from_i64(9))],
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let cp = sample();
        assert_eq!(ShardCheckpoint::decode(&cp.encode()).unwrap(), cp);
    }

    #[test]
    fn empty_roundtrip() {
        let cp = ShardCheckpoint::default();
        assert!(cp.is_empty());
        assert_eq!(ShardCheckpoint::decode(&cp.encode()).unwrap(), cp);
    }

    #[test]
    fn empty_version_chain_rejected() {
        let mut enc = fides_crypto::encoding::Encoder::new();
        enc.put_seq(&[()], |e, _| {
            Key::new("x").encode_into(e);
            Timestamp::ZERO.encode_into(e);
            Timestamp::ZERO.encode_into(e);
            e.put_u32(0); // zero versions
        });
        assert!(matches!(
            ShardCheckpoint::decode(enc.as_bytes()),
            Err(DecodeError::InvalidValue(_))
        ));
    }

    #[test]
    fn unsorted_versions_rejected() {
        let mut item = sample().items.remove(0);
        item.versions.reverse();
        let cp = ShardCheckpoint { items: vec![item] };
        assert!(matches!(
            ShardCheckpoint::decode(&cp.encode()),
            Err(DecodeError::InvalidValue(_))
        ));
    }
}
