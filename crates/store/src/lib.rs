//! Datastore substrate for Fides (paper §3.1, §4.2).
//!
//! A Fides deployment partitions its data into *shards*, one per database
//! server. Each data item carries a read timestamp `rts` and a write
//! timestamp `wts` — the commit timestamps of the last transactions that
//! read and wrote it. This crate provides:
//!
//! * [`types`] — keys, values and Lamport-style commit [`Timestamp`]s,
//! * [`rwset`] — the read/write-set entries stored in every log block
//!   (paper Table 1),
//! * [`single`] / [`multi`] — single-versioned and multi-versioned
//!   stores (§4.2.1, "Updating the datastore"),
//! * [`authenticated`] — a store wrapped with an incrementally-maintained
//!   Merkle hash tree, producing the per-shard roots and verification
//!   objects that the auditor uses to authenticate datastores (§4.2.2),
//! * [`checkpoint`] — serializable shard images (leaf order + version
//!   chains + timestamps) backing `fides-durability`'s snapshots.

pub mod authenticated;
pub mod checkpoint;
pub mod multi;
pub mod proofs;
pub mod rwset;
pub mod single;
pub mod types;

pub use authenticated::{combine_roots, key_leaf_digest, AuthenticatedShard, MhtUpdateStats};
pub use checkpoint::{CheckpointItem, ShardCheckpoint};
pub use multi::MultiVersionStore;
pub use proofs::{AbsenceProof, AbsenceSuccessor, ReadEntryProof, ReadProofError, ShardReadProof};
pub use rwset::{ReadEntry, WriteEntry};
pub use single::SingleVersionStore;
pub use types::{ItemState, Key, Timestamp, Value};
