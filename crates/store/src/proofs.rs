//! Proof-carrying read bundles: batched membership proofs and
//! tamper-evident **absence proofs** for the verified read plane.
//!
//! A server answering a snapshot read returns a [`ShardReadProof`]: the
//! two halves of the composite shard root
//! ([`crate::authenticated::combine_roots`]), one Merkle **multiproof**
//! covering every present key's `(key, value)` leaf in the value tree,
//! and one [`AbsenceProof`] per absent key against the sorted key tree.
//! The client recombines the halves, checks them against a co-signed
//! root, and accepts the values only if *every* proof verifies — a
//! forged value, a forged absence, or a proof against the wrong root is
//! refuted without any server cooperation.
//!
//! # Why absence is provable
//!
//! The key tree's leaves are `H(key)` in **sorted key order**, padded
//! with the public [`empty_leaf`] digest. For a missing key `k`, the
//! prover exhibits two *adjacent* slots bracketing `k`: the predecessor
//! leaf (greatest key `< k`) and its immediate successor — either the
//! smallest key `> k`, or a padding slot (nothing sorts after the
//! predecessor), or nothing at all when the tree is full and the
//! predecessor occupies the last slot. Sorted order makes slot
//! adjacency equal key adjacency, so the bracket proves no leaf for `k`
//! exists anywhere in the tree.

use fides_crypto::encoding::{Decodable, DecodeError, Decoder, Encodable, Encoder};
use fides_crypto::merkle::{empty_leaf, MultiProof, VerificationObject};
use fides_crypto::Digest;

use crate::authenticated::{combine_roots, key_leaf_digest, leaf_digest, AuthenticatedShard};
use crate::types::{Key, Timestamp, Value};

/// The successor half of an [`AbsenceProof`] bracket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbsenceSuccessor {
    /// The smallest stored key greater than the absent key, with its
    /// key-tree proof (must sit in the slot right after the
    /// predecessor's).
    Key(Key, VerificationObject),
    /// The slot right after the predecessor's is **padding** (the
    /// public empty-leaf digest): the predecessor is the last stored
    /// key.
    Padding(VerificationObject),
    /// The predecessor occupies the key tree's last slot (the tree is
    /// full): no successor slot exists.
    End,
    /// The shard stores no keys at all: the key tree is the canonical
    /// empty tree.
    Empty,
}

/// Proof that a key is **unbound** in a shard: a bracket of two
/// adjacent key-tree slots with the absent key strictly between them
/// (see the module docs for the soundness argument).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AbsenceProof {
    /// Greatest stored key `<` the absent key, with its key-tree proof.
    /// `None` when the absent key sorts before every stored key.
    pub pred: Option<(Key, VerificationObject)>,
    /// The successor slot.
    pub succ: AbsenceSuccessor,
}

impl AbsenceProof {
    /// Returns `true` if this proof establishes that `key` is unbound
    /// in the key tree committed by `key_root`.
    pub fn verify(&self, key: &Key, key_root: &Digest) -> bool {
        match (&self.pred, &self.succ) {
            (None, AbsenceSuccessor::Empty) => *key_root == empty_leaf(),
            (None, AbsenceSuccessor::Key(succ, vo)) => {
                // The absent key sorts before every stored key: the
                // successor must occupy slot 0.
                key < succ && vo.index() == 0 && vo.verify(key_leaf_digest(succ), key_root)
            }
            (Some((pred, pvo)), succ) => {
                if pred >= key || !pvo.verify(key_leaf_digest(pred), key_root) {
                    return false;
                }
                let next_slot = pvo.index() + 1;
                match succ {
                    AbsenceSuccessor::Key(sk, svo) => {
                        key < sk
                            && svo.index() == next_slot
                            && svo.siblings().len() == pvo.siblings().len()
                            && svo.verify(key_leaf_digest(sk), key_root)
                    }
                    AbsenceSuccessor::Padding(svo) => {
                        svo.index() == next_slot
                            && svo.siblings().len() == pvo.siblings().len()
                            && svo.verify(empty_leaf(), key_root)
                    }
                    AbsenceSuccessor::End => {
                        // Predecessor sits in the last slot of a full
                        // tree of width 2^height.
                        pvo.siblings().len() < 64 && next_slot == 1u64 << pvo.siblings().len()
                    }
                    AbsenceSuccessor::Empty => false,
                }
            }
            // A missing predecessor with a padding/end successor would
            // claim an empty tree — that is the `Empty` variant's job.
            (None, _) => false,
        }
    }
}

/// Why a [`ShardReadProof`] failed verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadProofError {
    /// `H(value_root ‖ key_root)` does not reproduce the expected
    /// co-signed composite root.
    RootMismatch,
    /// The batched membership proof does not link the claimed values to
    /// the value root.
    BadValueProof,
    /// An absence proof fails for this key.
    BadAbsenceProof(Key),
    /// Structurally malformed (entry count mismatch, missing multiproof,
    /// conflicting duplicate entries).
    Malformed,
}

impl core::fmt::Display for ReadProofError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ReadProofError::RootMismatch => {
                write!(f, "roots do not recombine into the co-signed composite")
            }
            ReadProofError::BadValueProof => write!(f, "value multiproof fails"),
            ReadProofError::BadAbsenceProof(k) => write!(f, "absence proof for {k} fails"),
            ReadProofError::Malformed => write!(f, "malformed read proof"),
        }
    }
}

impl std::error::Error for ReadProofError {}

/// One requested key's proof entry, aligned with the request order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadEntryProof {
    /// The key is bound: its value and value-tree leaf index (proven by
    /// the bundle's shared multiproof).
    Present {
        /// The key's value-tree leaf index.
        index: u64,
        /// The value at that leaf.
        value: Value,
    },
    /// The key is unbound, with the bracketing absence proof.
    Absent(AbsenceProof),
}

/// The proof-carrying answer to a batched snapshot read: everything a
/// client needs to verify N keys against **one** co-signed shard root.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardReadProof {
    /// The value tree's root (half of the composite).
    pub value_root: Digest,
    /// The key tree's root (the other half).
    pub key_root: Digest,
    /// Per requested key, in request order.
    pub entries: Vec<ReadEntryProof>,
    /// One batched proof covering every `Present` entry's leaf.
    /// `None` when no requested key is present.
    pub multiproof: Option<MultiProof>,
}

impl ShardReadProof {
    /// Verifies the bundle against the expected **composite** shard
    /// root and returns the per-key values (`None` = proven absent) in
    /// request order.
    ///
    /// # Errors
    ///
    /// The first [`ReadProofError`] encountered; on any error the
    /// caller must discard every value in the bundle.
    pub fn verify(
        &self,
        keys: &[Key],
        expected_root: &Digest,
    ) -> Result<Vec<Option<Value>>, ReadProofError> {
        if keys.len() != self.entries.len() {
            return Err(ReadProofError::Malformed);
        }
        if combine_roots(&self.value_root, &self.key_root) != *expected_root {
            return Err(ReadProofError::RootMismatch);
        }
        let mut present: Vec<(u64, Digest)> = Vec::new();
        let mut values = Vec::with_capacity(keys.len());
        for (key, entry) in keys.iter().zip(&self.entries) {
            match entry {
                ReadEntryProof::Present { index, value } => {
                    present.push((*index, leaf_digest(key, value)));
                    values.push(Some(value.clone()));
                }
                ReadEntryProof::Absent(proof) => {
                    if !proof.verify(key, &self.key_root) {
                        return Err(ReadProofError::BadAbsenceProof(key.clone()));
                    }
                    values.push(None);
                }
            }
        }
        if present.is_empty() {
            if self.multiproof.is_some() {
                return Err(ReadProofError::Malformed);
            }
            return Ok(values);
        }
        // A key requested twice yields two identical pairs — legal;
        // one index claimed with two different digests is a forgery.
        present.sort_unstable();
        present.dedup();
        if present.windows(2).any(|w| w[0].0 == w[1].0) {
            return Err(ReadProofError::Malformed);
        }
        let Some(multiproof) = &self.multiproof else {
            return Err(ReadProofError::Malformed);
        };
        if !multiproof.verify(&present, &self.value_root) {
            return Err(ReadProofError::BadValueProof);
        }
        Ok(values)
    }
}

impl AuthenticatedShard {
    /// Proves the latest state of every requested key in one bundle:
    /// present keys share a single value-tree multiproof, absent keys
    /// get bracketing absence proofs. Verifiable against this shard's
    /// current [`AuthenticatedShard::root`].
    pub fn prove_read(&self, keys: &[Key]) -> ShardReadProof {
        let mut entries = Vec::with_capacity(keys.len());
        let mut proven: Vec<usize> = Vec::new();
        for key in keys {
            match self.leaf_index(key) {
                Some((index, _)) => {
                    let value = self
                        .read(key)
                        .expect("indexed key has a latest version")
                        .value;
                    proven.push(index);
                    entries.push(ReadEntryProof::Present {
                        index: index as u64,
                        value,
                    });
                }
                None => entries.push(ReadEntryProof::Absent(
                    self.absence_proof(key)
                        .expect("key not in the index is absent"),
                )),
            }
        }
        let multiproof = (!proven.is_empty()).then(|| self.value_tree().multiproof(&proven));
        ShardReadProof {
            value_root: self.value_root(),
            key_root: self.key_root(),
            entries,
            multiproof,
        }
    }

    /// Builds the absence proof for `key` against the **live** key
    /// tree, or `None` when the key is present.
    pub fn absence_proof(&self, key: &Key) -> Option<AbsenceProof> {
        if self.leaf_index(key).is_some() {
            return None;
        }
        // The bracket comes from a binary search over the sorted leaf
        // order — O(log n), safe to run under the server's shard lock.
        let order = self.key_order();
        let pos = order.binary_search(key).err()?;
        let pred = (pos > 0).then(|| order[pos - 1].clone());
        let succ = order.get(pos).cloned();
        Some(build_absence_proof(
            self.live_key_tree(),
            (pos, pred, succ, order.len()),
        ))
    }

    /// Builds the absence proof for `key` as of version `ts` (against
    /// [`AuthenticatedShard::key_tree_at_version`]), or `None` when the
    /// key was already bound at `ts`.
    pub fn absence_proof_at_version(&self, key: &Key, ts: Timestamp) -> Option<AbsenceProof> {
        if self
            .leaf_index(key)
            .is_some_and(|(_, created)| created <= ts)
        {
            return None;
        }
        let tree = self.key_tree_at_version(ts);
        Some(build_absence_proof(&tree, self.key_neighbors_at(key, ts)))
    }
}

/// Assembles the bracket from a key tree and the
/// `(slot, pred, succ, total)` neighborhood of the absent key.
fn build_absence_proof(
    tree: &fides_crypto::merkle::MerkleTree,
    neighborhood: (usize, Option<Key>, Option<Key>, usize),
) -> AbsenceProof {
    let (pos, pred, succ, total) = neighborhood;
    if total == 0 {
        return AbsenceProof {
            pred: None,
            succ: AbsenceSuccessor::Empty,
        };
    }
    let pred = pred.map(|k| (k, tree.proof(pos - 1)));
    let succ = match succ {
        Some(k) => AbsenceSuccessor::Key(k, tree.proof(pos)),
        // No stored key sorts after the absent one: slot `pos` (= the
        // slot right past the last real leaf) is padding when it exists.
        None if pos < padded_width(tree) => AbsenceSuccessor::Padding(tree.proof_padding(pos)),
        None => AbsenceSuccessor::End,
    };
    AbsenceProof { pred, succ }
}

/// The key tree's padded width (`2^height`).
fn padded_width(tree: &fides_crypto::merkle::MerkleTree) -> usize {
    1usize << tree.height()
}

// ----------------------------------------------------------------------
// Canonical encoding (these ride inside signed protocol messages).
// ----------------------------------------------------------------------

impl Encodable for AbsenceSuccessor {
    fn encode_into(&self, enc: &mut Encoder) {
        match self {
            AbsenceSuccessor::Key(key, vo) => {
                enc.put_u8(0);
                key.encode_into(enc);
                vo.encode_into(enc);
            }
            AbsenceSuccessor::Padding(vo) => {
                enc.put_u8(1);
                vo.encode_into(enc);
            }
            AbsenceSuccessor::End => enc.put_u8(2),
            AbsenceSuccessor::Empty => enc.put_u8(3),
        }
    }
}

impl Decodable for AbsenceSuccessor {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match dec.take_u8()? {
            0 => AbsenceSuccessor::Key(
                Key::decode_from(dec)?,
                VerificationObject::decode_from(dec)?,
            ),
            1 => AbsenceSuccessor::Padding(VerificationObject::decode_from(dec)?),
            2 => AbsenceSuccessor::End,
            3 => AbsenceSuccessor::Empty,
            t => return Err(DecodeError::InvalidTag(t)),
        })
    }
}

impl Encodable for AbsenceProof {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_option(&self.pred, |e, (k, vo)| {
            k.encode_into(e);
            vo.encode_into(e);
        });
        self.succ.encode_into(enc);
    }
}

impl Decodable for AbsenceProof {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(AbsenceProof {
            pred: dec
                .take_option(|d| Ok((Key::decode_from(d)?, VerificationObject::decode_from(d)?)))?,
            succ: AbsenceSuccessor::decode_from(dec)?,
        })
    }
}

impl Encodable for ReadEntryProof {
    fn encode_into(&self, enc: &mut Encoder) {
        match self {
            ReadEntryProof::Present { index, value } => {
                enc.put_u8(0);
                enc.put_u64(*index);
                value.encode_into(enc);
            }
            ReadEntryProof::Absent(proof) => {
                enc.put_u8(1);
                proof.encode_into(enc);
            }
        }
    }
}

impl Decodable for ReadEntryProof {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match dec.take_u8()? {
            0 => ReadEntryProof::Present {
                index: dec.take_u64()?,
                value: Value::decode_from(dec)?,
            },
            1 => ReadEntryProof::Absent(AbsenceProof::decode_from(dec)?),
            t => return Err(DecodeError::InvalidTag(t)),
        })
    }
}

impl Encodable for ShardReadProof {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_digest(&self.value_root);
        enc.put_digest(&self.key_root);
        enc.put_seq(&self.entries, |e, entry| entry.encode_into(e));
        enc.put_option(&self.multiproof, |e, p| p.encode_into(e));
    }
}

impl Decodable for ShardReadProof {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(ShardReadProof {
            value_root: dec.take_digest()?,
            key_root: dec.take_digest()?,
            entries: dec.take_seq(ReadEntryProof::decode_from)?,
            multiproof: dec.take_option(MultiProof::decode_from)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(n: usize) -> AuthenticatedShard {
        AuthenticatedShard::new(
            (0..n)
                .map(|i| (Key::new(format!("item-{i:04}")), Value::from_i64(i as i64)))
                .collect(),
        )
    }

    fn ts(c: u64) -> Timestamp {
        Timestamp::new(c, 0)
    }

    #[test]
    fn prove_read_present_keys_verify() {
        let mut s = shard(16);
        s.apply_commit(ts(5), &[], &[(Key::new("item-0007"), Value::from_i64(700))]);
        let keys = vec![Key::new("item-0002"), Key::new("item-0007")];
        let proof = s.prove_read(&keys);
        let values = proof.verify(&keys, &s.root()).unwrap();
        assert_eq!(values[0].as_ref().unwrap().as_i64(), Some(2));
        assert_eq!(values[1].as_ref().unwrap().as_i64(), Some(700));
    }

    #[test]
    fn prove_read_mixed_presence() {
        let s = shard(8);
        let keys = vec![
            Key::new("item-0003"),
            Key::new("missing-middle"),
            Key::new("aaaa-before-all"),
            Key::new("zzzz-after-all"),
        ];
        let proof = s.prove_read(&keys);
        let values = proof.verify(&keys, &s.root()).unwrap();
        assert!(values[0].is_some());
        assert!(values[1].is_none());
        assert!(values[2].is_none());
        assert!(values[3].is_none());
    }

    #[test]
    fn forged_value_refuted() {
        let s = shard(8);
        let keys = vec![Key::new("item-0001")];
        let mut proof = s.prove_read(&keys);
        if let ReadEntryProof::Present { value, .. } = &mut proof.entries[0] {
            *value = Value::from_i64(9999);
        }
        assert_eq!(
            proof.verify(&keys, &s.root()),
            Err(ReadProofError::BadValueProof)
        );
    }

    #[test]
    fn forged_absence_refuted() {
        let s = shard(8);
        let present = Key::new("item-0004");
        // A lying server claims a present key is absent, reusing a real
        // bracket from some other missing key.
        let fake = s.absence_proof(&Key::new("item-0004x")).unwrap();
        let proof = ShardReadProof {
            value_root: s.value_root(),
            key_root: s.key_root(),
            entries: vec![ReadEntryProof::Absent(fake)],
            multiproof: None,
        };
        assert_eq!(
            proof.verify(std::slice::from_ref(&present), &s.root()),
            Err(ReadProofError::BadAbsenceProof(present.clone()))
        );
    }

    #[test]
    fn wrong_root_refuted() {
        let s = shard(8);
        let keys = vec![Key::new("item-0001")];
        let proof = s.prove_read(&keys);
        assert_eq!(
            proof.verify(&keys, &Digest::new([9; 32])),
            Err(ReadProofError::RootMismatch)
        );
    }

    #[test]
    fn absence_proof_before_all_keys() {
        let s = shard(4);
        let k = Key::new("aaa");
        let proof = s.absence_proof(&k).unwrap();
        assert!(proof.pred.is_none());
        assert!(proof.verify(&k, &s.key_root()));
        // The same bracket does not prove a different key absent when a
        // stored key sorts below it.
        assert!(!proof.verify(&Key::new("item-0001x"), &s.key_root()));
    }

    #[test]
    fn absence_proof_after_all_keys() {
        // 4 keys → full width-4 tree (End), 5 keys → padding slot.
        for n in [4usize, 5] {
            let s = shard(n);
            let k = Key::new("zzz");
            let proof = s.absence_proof(&k).unwrap();
            assert!(proof.verify(&k, &s.key_root()), "n={n}");
        }
    }

    #[test]
    fn absence_proof_empty_shard() {
        let s = shard(0);
        let k = Key::new("anything");
        let proof = s.absence_proof(&k).unwrap();
        assert_eq!(proof.succ, AbsenceSuccessor::Empty);
        assert!(proof.verify(&k, &s.key_root()));
    }

    #[test]
    fn absence_proof_none_for_present_key() {
        let s = shard(4);
        assert!(s.absence_proof(&Key::new("item-0002")).is_none());
    }

    #[test]
    fn absence_proof_survives_value_updates_but_not_creation() {
        let mut s = shard(8);
        let k = Key::new("item-00035");
        let proof = s.absence_proof(&k).unwrap();
        assert!(proof.verify(&k, &s.key_root()));
        // Updating values does not move the key tree.
        s.apply_commit(ts(1), &[], &[(Key::new("item-0003"), Value::from_i64(7))]);
        assert!(proof.verify(&k, &s.key_root()));
        // Creating the key changes the key root; the old bracket no
        // longer verifies against it, and no new bracket exists.
        s.apply_commit(ts(2), &[], &[(k.clone(), Value::from_i64(1))]);
        assert!(!proof.verify(&k, &s.key_root()));
        assert!(s.absence_proof(&k).is_none());
    }

    #[test]
    fn historical_absence_proof() {
        let mut s = shard(4);
        let k = Key::new("zzz-new");
        s.apply_commit(ts(10), &[], &[(k.clone(), Value::from_i64(5))]);
        // At ts 5 the key did not exist: provable against the ts-5 key
        // root, which chains into the ts-5 composite root.
        let proof = s.absence_proof_at_version(&k, ts(5)).unwrap();
        let key_root_5 = s.key_tree_at_version(ts(5)).root();
        assert!(proof.verify(&k, &key_root_5));
        assert_eq!(
            combine_roots(&s.tree_at_version(ts(5)).root(), &key_root_5),
            s.root_at_version(ts(5)),
        );
        // At ts 10 it exists.
        assert!(s.absence_proof_at_version(&k, ts(10)).is_none());
    }

    #[test]
    fn read_proof_encoding_roundtrip() {
        let s = shard(8);
        let keys = vec![Key::new("item-0001"), Key::new("missing"), Key::new("aa")];
        let proof = s.prove_read(&keys);
        let decoded = ShardReadProof::decode(&proof.encode()).unwrap();
        assert_eq!(decoded, proof);
        assert!(decoded.verify(&keys, &s.root()).is_ok());
    }

    #[test]
    fn duplicate_requested_key_is_legal() {
        let s = shard(8);
        let keys = vec![Key::new("item-0001"), Key::new("item-0001")];
        let proof = s.prove_read(&keys);
        let values = proof.verify(&keys, &s.root()).unwrap();
        assert_eq!(values.len(), 2);
        assert_eq!(values[0], values[1]);
    }

    #[test]
    fn entry_count_mismatch_is_malformed() {
        let s = shard(8);
        let keys = vec![Key::new("item-0001")];
        let proof = s.prove_read(&keys);
        assert_eq!(proof.verify(&[], &s.root()), Err(ReadProofError::Malformed));
    }
}
