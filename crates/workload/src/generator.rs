//! Transaction-spec generation.
//!
//! A [`WorkloadGenerator`] produces [`TxnSpec`]s — the key sets of
//! multi-record read-modify-write transactions — according to the
//! paper's benchmark shape: `ops_per_txn` distinct items drawn "at
//! random from a pool of all the data partitions combined" (§6).
//!
//! The *conflict-free window* mirrors the coordinator's batching of
//! "non-conflicting transactions" (§4.6): within any window of
//! `conflict_free_window` consecutive transactions, no key repeats, so
//! a batch formed from one window always commits in a single block.

use std::collections::HashSet;

use fides_store::types::Key;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipfian;

/// How keys are selected from the global pool.
#[derive(Clone, Debug)]
pub enum KeyChooser {
    /// Uniform over the whole pool (the paper's setting).
    Uniform,
    /// Zipfian-skewed over the pool (YCSB's default hot-spot model).
    Zipfian {
        /// Skew parameter in `(0, 1)`.
        theta: f64,
    },
}

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Number of servers/shards.
    pub n_servers: u32,
    /// Items preloaded per shard.
    pub items_per_shard: usize,
    /// Operations (distinct items) per transaction — the paper uses 5.
    pub ops_per_txn: usize,
    /// Key-selection distribution.
    pub chooser: KeyChooser,
    /// RNG seed (runs are reproducible).
    pub seed: u64,
    /// Size of the window within which transactions share no keys
    /// (`1` = only intra-transaction distinctness).
    pub conflict_free_window: usize,
}

impl WorkloadConfig {
    /// The paper's default benchmark shape: 5 uniform operations.
    pub fn paper_default(n_servers: u32, items_per_shard: usize) -> Self {
        WorkloadConfig {
            n_servers,
            items_per_shard,
            ops_per_txn: 5,
            chooser: KeyChooser::Uniform,
            seed: 42,
            conflict_free_window: 1,
        }
    }

    /// Sets the conflict-free window (usually the block batch size).
    pub fn conflict_free_window(mut self, window: usize) -> Self {
        self.conflict_free_window = window.max(1);
        self
    }

    /// Sets the key-selection distribution.
    pub fn chooser(mut self, chooser: KeyChooser) -> Self {
        self.chooser = chooser;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the operations per transaction.
    pub fn ops_per_txn(mut self, ops: usize) -> Self {
        self.ops_per_txn = ops.max(1);
        self
    }

    fn pool_size(&self) -> usize {
        self.n_servers as usize * self.items_per_shard
    }
}

/// One transaction's key set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxnSpec {
    /// The distinct keys this transaction reads and rewrites.
    pub keys: Vec<Key>,
}

/// Generates transaction specs.
///
/// The generator is an iterator; `key_fn` maps a `(server, item)`
/// coordinate to the deployment's key naming scheme (e.g.
/// `FidesCluster::key_name`).
///
/// # Example
///
/// ```
/// use fides_store::Key;
/// use fides_workload::{WorkloadConfig, WorkloadGenerator};
///
/// let config = WorkloadConfig::paper_default(3, 100);
/// let mut generator = WorkloadGenerator::new(config, |server, item| {
///     Key::new(format!("s{server}:i{item}"))
/// });
/// let spec = generator.next_txn();
/// assert_eq!(spec.keys.len(), 5);
/// ```
pub struct WorkloadGenerator<F> {
    config: WorkloadConfig,
    key_fn: F,
    rng: StdRng,
    zipf: Option<Zipfian>,
    /// Keys used in the current conflict-free window.
    window_used: HashSet<usize>,
    /// Transactions generated in the current window.
    window_count: usize,
}

impl<F: Fn(u32, usize) -> Key> WorkloadGenerator<F> {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if a conflict-free window cannot possibly be satisfied
    /// (`window × ops_per_txn > pool size`).
    pub fn new(config: WorkloadConfig, key_fn: F) -> Self {
        assert!(
            config.conflict_free_window * config.ops_per_txn <= config.pool_size(),
            "window of {} txns × {} ops exceeds the pool of {} items",
            config.conflict_free_window,
            config.ops_per_txn,
            config.pool_size()
        );
        let zipf = match config.chooser {
            KeyChooser::Uniform => None,
            KeyChooser::Zipfian { theta } => Some(Zipfian::new(config.pool_size(), theta)),
        };
        WorkloadGenerator {
            rng: StdRng::seed_from_u64(config.seed),
            zipf,
            window_used: HashSet::new(),
            window_count: 0,
            config,
            key_fn,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    fn draw_global_index(&mut self) -> usize {
        match &self.zipf {
            None => self.rng.gen_range(0..self.config.pool_size()),
            Some(zipf) => zipf.sample(&mut self.rng),
        }
    }

    /// Generates the next transaction's key set.
    pub fn next_txn(&mut self) -> TxnSpec {
        if self.window_count == self.config.conflict_free_window {
            self.window_count = 0;
            self.window_used.clear();
        }
        self.window_count += 1;

        let mut chosen: Vec<usize> = Vec::with_capacity(self.config.ops_per_txn);
        let mut tries = 0usize;
        while chosen.len() < self.config.ops_per_txn {
            let idx = self.draw_global_index();
            if self.window_used.contains(&idx) || chosen.contains(&idx) {
                tries += 1;
                // A heavily skewed chooser can stall on hot items; fall
                // back to a uniform sweep after enough rejections.
                if tries > 64 * self.config.ops_per_txn {
                    for fallback in 0..self.config.pool_size() {
                        if !self.window_used.contains(&fallback) && !chosen.contains(&fallback) {
                            chosen.push(fallback);
                            break;
                        }
                    }
                }
                continue;
            }
            chosen.push(idx);
        }
        self.window_used.extend(chosen.iter().copied());

        let keys = chosen
            .into_iter()
            .map(|global| {
                let server = (global / self.config.items_per_shard) as u32;
                let item = global % self.config.items_per_shard;
                (self.key_fn)(server, item)
            })
            .collect();
        TxnSpec { keys }
    }

    /// Generates `n` transaction specs.
    pub fn take_txns(&mut self, n: usize) -> Vec<TxnSpec> {
        (0..n).map(|_| self.next_txn()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_fn(server: u32, item: usize) -> Key {
        Key::new(format!("s{server:03}:item-{item:06}"))
    }

    #[test]
    fn txn_has_distinct_keys() {
        let mut g = WorkloadGenerator::new(WorkloadConfig::paper_default(3, 100), key_fn);
        for _ in 0..100 {
            let spec = g.next_txn();
            assert_eq!(spec.keys.len(), 5);
            let set: HashSet<_> = spec.keys.iter().collect();
            assert_eq!(set.len(), 5, "keys within a txn must be distinct");
        }
    }

    #[test]
    fn conflict_free_window_has_no_repeats() {
        let config = WorkloadConfig::paper_default(3, 100).conflict_free_window(10);
        let mut g = WorkloadGenerator::new(config, key_fn);
        for _window in 0..20 {
            let mut seen = HashSet::new();
            for _ in 0..10 {
                for key in g.next_txn().keys {
                    assert!(seen.insert(key), "key repeated within window");
                }
            }
        }
    }

    #[test]
    fn deterministic_with_seed() {
        let mk = || WorkloadGenerator::new(WorkloadConfig::paper_default(4, 50).seed(7), key_fn);
        let a: Vec<TxnSpec> = mk().take_txns(50);
        let b: Vec<TxnSpec> = mk().take_txns(50);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorkloadGenerator::new(WorkloadConfig::paper_default(4, 50).seed(1), key_fn)
            .take_txns(20);
        let b = WorkloadGenerator::new(WorkloadConfig::paper_default(4, 50).seed(2), key_fn)
            .take_txns(20);
        assert_ne!(a, b);
    }

    #[test]
    fn keys_span_multiple_shards() {
        // The paper: "resulting in distributed transactions".
        let mut g = WorkloadGenerator::new(WorkloadConfig::paper_default(5, 100), key_fn);
        let mut shards_touched = HashSet::new();
        for spec in g.take_txns(100) {
            for key in spec.keys {
                let shard: u32 = key.as_str()[1..4].parse().unwrap();
                shards_touched.insert(shard);
            }
        }
        assert_eq!(shards_touched.len(), 5, "all shards should be touched");
    }

    #[test]
    fn zipfian_workload_generates() {
        let config = WorkloadConfig::paper_default(2, 100)
            .chooser(KeyChooser::Zipfian { theta: 0.9 })
            .conflict_free_window(4);
        let mut g = WorkloadGenerator::new(config, key_fn);
        let specs = g.take_txns(40);
        assert_eq!(specs.len(), 40);
        // Windows stay conflict-free even under skew.
        for window in specs.chunks(4) {
            let mut seen = HashSet::new();
            for spec in window {
                for key in &spec.keys {
                    assert!(seen.insert(key.clone()));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the pool")]
    fn impossible_window_panics() {
        let config = WorkloadConfig::paper_default(1, 10).conflict_free_window(100);
        let _ = WorkloadGenerator::new(config, key_fn);
    }
}
