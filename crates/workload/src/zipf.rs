//! Zipfian sampling over `{0, …, n-1}` (Gray et al.'s method, as used
//! by YCSB).
//!
//! Item `i` (0-based rank) is drawn with probability proportional to
//! `1 / (i+1)^theta`. The sampler precomputes the generalized harmonic
//! number `zeta(n, theta)` once, then draws in O(1) per sample.

use rand::Rng;

/// A Zipfian distribution over `n` ranked items.
///
/// # Example
///
/// ```
/// use fides_workload::Zipfian;
/// use rand::SeedableRng;
///
/// let zipf = Zipfian::new(1000, 0.99);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let sample = zipf.sample(&mut rng);
/// assert!(sample < 1000);
/// ```
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: usize,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
    #[allow(dead_code)] // kept: matches the published formula set
    zeta_2: f64,
}

impl Zipfian {
    /// Creates a sampler over `n` items with skew `theta` (YCSB default
    /// 0.99; `theta → 0` approaches uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `(0, 1)`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0, 1), got {theta}"
        );
        let zeta_n = Self::zeta(n, theta);
        let zeta_2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta_2 / zeta_n);
        Zipfian {
            n,
            theta,
            alpha,
            zeta_n,
            eta,
            zeta_2,
        }
    }

    /// Generalized harmonic number `Σ_{i=1..n} 1/i^theta`.
    fn zeta(n: usize, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Number of items.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws one rank in `[0, n)`; rank 0 is the hottest item.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as usize;
        rank.min(self.n - 1)
    }

    /// The theoretical probability of rank `i` (testing aid).
    pub fn probability(&self, rank: usize) -> f64 {
        assert!(rank < self.n);
        (1.0 / ((rank + 1) as f64).powf(self.theta)) / self.zeta_n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let zipf = Zipfian::new(100, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn skew_makes_rank_zero_hot() {
        let zipf = Zipfian::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(2);
        let mut zero = 0usize;
        let trials = 50_000;
        for _ in 0..trials {
            if zipf.sample(&mut rng) == 0 {
                zero += 1;
            }
        }
        let observed = zero as f64 / trials as f64;
        let expected = zipf.probability(0);
        // Within 20% relative error of the theoretical mass.
        assert!(
            (observed - expected).abs() / expected < 0.2,
            "observed {observed}, expected {expected}"
        );
        // And far above the uniform mass of 1/1000.
        assert!(observed > 0.05);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let zipf = Zipfian::new(50, 0.5);
        let total: f64 = (0..50).map(|i| zipf.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_with_seed() {
        let zipf = Zipfian::new(100, 0.7);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..100).map(|_| zipf.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..100).map(|_| zipf.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn low_theta_is_flatter() {
        let skewed = Zipfian::new(100, 0.99);
        let flat = Zipfian::new(100, 0.1);
        assert!(skewed.probability(0) > flat.probability(0));
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn invalid_theta_panics() {
        let _ = Zipfian::new(10, 1.5);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_panics() {
        let _ = Zipfian::new(0, 0.5);
    }
}
