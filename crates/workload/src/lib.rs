//! Transactional YCSB-like workload generation (paper §6).
//!
//! "To evaluate the protocol, we used Transactional-YCSB-like benchmark
//! consisting of transactions with read-write operations. Each
//! transaction consisted of 5 operations on different data items thus
//! generating a multi-record workload. The data items were picked at
//! random from a pool of all the data partitions combined, resulting in
//! distributed transactions."
//!
//! * [`zipf`] — a from-scratch Zipfian sampler (the YCSB default skew
//!   model) in addition to the paper's uniform selection,
//! * [`generator`] — transaction-spec generation with an optional
//!   *conflict-free window*: within a window of `w` consecutive
//!   transactions no key repeats, matching the coordinator's
//!   "non-conflicting transactions" batching (§4.6).

pub mod generator;
pub mod zipf;

pub use generator::{KeyChooser, TxnSpec, WorkloadConfig, WorkloadGenerator};
pub use zipf::Zipfian;
