//! Offline shim for `rayon`: a small work-stealing thread pool.
//!
//! The build environment has no crates.io access, so this crate
//! provides the (tiny) slice of the rayon API the workspace leans on —
//! [`scope`] for structured fork/join parallelism over borrowed data,
//! [`parallel_map`] for order-preserving data parallelism, and [`join`]
//! for two-way forks — backed by one process-wide pool of workers.
//!
//! # Design
//!
//! Every worker owns a local LIFO deque; spawns from inside a worker
//! push locally, spawns from outside go to a shared injector queue.
//! Idle workers drain their own deque first, then the injector, then
//! **steal** (FIFO) from sibling deques, and only then park. Blocking
//! on a [`scope`] never wastes the caller's thread: while waiting for
//! its tasks the caller helps execute queued work, so nested scopes
//! cannot deadlock the pool.
//!
//! Tasks spawned on a scope may borrow from the enclosing stack frame
//! (`'scope` lifetime). This is sound for exactly the reason rayon's
//! scopes are: the scope does not return — even by panic — until every
//! spawned task has finished, so the borrows outlive the tasks. A
//! panicking task aborts the scope with the first panic payload after
//! all tasks complete.
//!
//! Pool size defaults to the machine's available parallelism
//! (`FIDES_POOL_THREADS` overrides; a value of 1 degenerates to inline
//! execution which keeps single-core CI deterministic).
//!
//! # Example
//!
//! ```
//! let inputs: Vec<u64> = (0..100).collect();
//! let squares = rayon::parallel_map(&inputs, |&x| x * x);
//! assert_eq!(squares[7], 49);
//!
//! let mut left = 0u64;
//! let mut right = 0u64;
//! rayon::scope(|s| {
//!     s.spawn(|| left = inputs[..50].iter().sum());
//!     s.spawn(|| right = inputs[50..].iter().sum());
//! });
//! assert_eq!(left + right, inputs.iter().sum());
//! ```

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// An erased, heap-allocated unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool handle and its workers.
struct PoolShared {
    /// The external submission queue (spawns from non-worker threads).
    injector: Mutex<VecDeque<Job>>,
    /// Per-worker deques, stealable by index.
    locals: Vec<Mutex<VecDeque<Job>>>,
    /// Sleep/wake coordination for idle workers.
    idle: Condvar,
    /// Guarded by `injector`'s mutex conceptually; tracked separately so
    /// wakes are cheap: number of queued-but-unclaimed jobs.
    pending: AtomicUsize,
    /// Set to `true` when the pool is shutting down (process exit).
    shutdown: AtomicUsize,
}

thread_local! {
    /// The worker index of the current thread, if it is a pool worker.
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// A work-stealing thread pool.
///
/// Most callers use the process-wide [`global`] pool through the free
/// functions; dedicated pools exist for tests and for callers that need
/// an exact width.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    n_threads: usize,
}

impl ThreadPool {
    /// Creates a pool with `n_threads` workers (minimum 1).
    pub fn new(n_threads: usize) -> ThreadPool {
        let n_threads = n_threads.max(1);
        let shared = Arc::new(PoolShared {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..n_threads)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            idle: Condvar::new(),
            pending: AtomicUsize::new(0),
            shutdown: AtomicUsize::new(0),
        });
        for index in 0..n_threads {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("fides-pool-{index}"))
                .spawn(move || worker_loop(shared, index))
                .expect("spawn pool worker");
        }
        ThreadPool { shared, n_threads }
    }

    /// Number of worker threads.
    pub fn current_num_threads(&self) -> usize {
        self.n_threads
    }

    /// Runs `f`, allowing it to spawn borrowed tasks on this pool; does
    /// not return until every spawned task has completed.
    ///
    /// Panics from tasks are re-raised here (first payload wins), after
    /// all tasks finish — borrows stay valid through the unwind.
    pub fn scope<'scope, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'scope, '_>) -> R,
    {
        let latch = Arc::new(Latch::new());
        let scope = Scope {
            pool: self,
            latch: Arc::clone(&latch),
            _marker: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Help run queued work until every spawned task has finished —
        // including when `f` itself panicked, because tasks may borrow
        // the frame we are about to unwind.
        while !latch.done() {
            match self.shared.try_pop() {
                Some(job) => job(),
                None => latch.wait_briefly(),
            }
        }
        if let Some(payload) = latch.take_panic() {
            resume_unwind(payload);
        }
        match result {
            Ok(value) => value,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Applies `f` to every element of `items` in parallel, preserving
    /// order. Falls back to inline iteration for tiny inputs or a
    /// single-threaded pool.
    pub fn parallel_map<'a, T, R, F>(&self, items: &'a [T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        if items.len() <= 1 || self.n_threads == 1 {
            return items.iter().map(f).collect();
        }
        let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
        results.resize_with(items.len(), || None);
        // Oversubscribe chunks a little so stealing can balance load.
        let chunk = items.len().div_ceil(self.n_threads * 4).max(1);
        self.scope(|s| {
            for (inputs, outputs) in items.chunks(chunk).zip(results.chunks_mut(chunk)) {
                let f = &f;
                s.spawn(move || {
                    for (input, output) in inputs.iter().zip(outputs.iter_mut()) {
                        *output = Some(f(input));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("scope completed every chunk"))
            .collect()
    }

    /// Runs the two closures potentially in parallel, returning both
    /// results; `a` runs on the calling thread.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        let mut rb: Option<RB> = None;
        let ra = self.scope(|s| {
            s.spawn(|| rb = Some(b()));
            a()
        });
        (ra, rb.expect("scope completed the spawned half"))
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(1, Ordering::Release);
        self.shared.idle.notify_all();
    }
}

impl PoolShared {
    /// Queues an erased job: locally when called from a worker, on the
    /// injector otherwise.
    fn push_job(&self, job: Job) {
        let local = WORKER_INDEX.with(|w| w.get());
        match local {
            Some(index) if index < self.locals.len() => {
                self.locals[index]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push_back(job);
            }
            _ => {
                self.injector
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push_back(job);
            }
        }
        self.pending.fetch_add(1, Ordering::Release);
        self.idle.notify_one();
    }

    /// Pops one queued job from anywhere: the caller's local deque
    /// (LIFO), the injector, or a sibling's deque (steal, FIFO).
    fn try_pop(&self) -> Option<Job> {
        if self.pending.load(Ordering::Acquire) == 0 {
            return None;
        }
        let local = WORKER_INDEX.with(|w| w.get());
        if let Some(index) = local {
            if let Some(job) = self.locals[index]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_back()
            {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                return Some(job);
            }
        }
        if let Some(job) = self
            .injector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
        {
            self.pending.fetch_sub(1, Ordering::AcqRel);
            return Some(job);
        }
        // Steal: scan siblings starting after our own index so
        // contending thieves spread out.
        let start = local.map_or(0, |i| i + 1);
        let n = self.locals.len();
        for k in 0..n {
            let victim = (start + k) % n;
            if Some(victim) == local {
                continue;
            }
            if let Some(job) = self.locals[victim]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
            {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                return Some(job);
            }
        }
        None
    }
}

/// The completion latch of one [`ThreadPool::scope`] call.
struct Latch {
    /// Tasks spawned and not yet finished.
    outstanding: AtomicUsize,
    /// First panic payload from a task, if any.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Wakes the scope owner when `outstanding` hits zero.
    done_cv: Condvar,
    done_mx: Mutex<()>,
}

impl Latch {
    fn new() -> Latch {
        Latch {
            outstanding: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done_cv: Condvar::new(),
            done_mx: Mutex::new(()),
        }
    }

    fn done(&self) -> bool {
        self.outstanding.load(Ordering::Acquire) == 0
    }

    fn task_finished(&self) {
        if self.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.done_mx.lock().unwrap_or_else(|e| e.into_inner());
            self.done_cv.notify_all();
        }
    }

    /// Parks the scope owner for a short beat (re-checked in a loop; the
    /// timeout covers the race where the last task finishes between the
    /// `done` check and the wait).
    fn wait_briefly(&self) {
        let guard = self.done_mx.lock().unwrap_or_else(|e| e.into_inner());
        if !self.done() {
            let _ = self
                .done_cv
                .wait_timeout(guard, Duration::from_micros(200))
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic.lock().unwrap_or_else(|e| e.into_inner()).take()
    }
}

/// A fork/join scope handed to the closure of [`ThreadPool::scope`].
///
/// Spawned tasks may borrow anything that outlives `'scope`.
pub struct Scope<'scope, 'pool> {
    pool: &'pool ThreadPool,
    latch: Arc<Latch>,
    /// Invariant over `'scope` (the rayon trick): tasks cannot borrow
    /// data that lives shorter than the scope.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope, '_> {
    /// Spawns a task on the pool. The task may borrow from the frame
    /// enclosing the scope; the scope blocks until it completes.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.latch.outstanding.fetch_add(1, Ordering::AcqRel);
        let latch = Arc::clone(&self.latch);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: the scope (and thus every borrow in `task`) outlives
        // the job: `ThreadPool::scope` does not return, even on panic,
        // until the latch counts this task as finished — and the latch
        // is decremented only after the closure has run to completion
        // or unwound.
        let task: Job = unsafe { std::mem::transmute(task) };
        let job: Job = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(task));
            if let Err(payload) = result {
                latch.record_panic(payload);
            }
            latch.task_finished();
        });
        self.pool.shared.push_job(job);
    }
}

fn worker_loop(shared: Arc<PoolShared>, index: usize) {
    WORKER_INDEX.with(|w| w.set(Some(index)));
    loop {
        if shared.shutdown.load(Ordering::Acquire) != 0 {
            return;
        }
        match shared.try_pop() {
            Some(job) => job(),
            None => {
                // Park until a push notifies us (timeout bounds the
                // lost-wakeup race window).
                let guard = shared.injector.lock().unwrap_or_else(|e| e.into_inner());
                if shared.pending.load(Ordering::Acquire) == 0 {
                    let _ = shared
                        .idle
                        .wait_timeout(guard, Duration::from_millis(10))
                        .unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }
}

/// The process-wide pool, created on first use.
///
/// Width = `FIDES_POOL_THREADS` if set, else the machine's available
/// parallelism.
pub fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let n = std::env::var("FIDES_POOL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            });
        ThreadPool::new(n)
    })
}

/// [`ThreadPool::scope`] on the [`global`] pool.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope, '_>) -> R,
{
    global().scope(f)
}

/// [`ThreadPool::parallel_map`] on the [`global`] pool.
pub fn parallel_map<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    global().parallel_map(items, f)
}

/// [`ThreadPool::join`] on the [`global`] pool.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    global().join(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_map_preserves_order() {
        let pool = ThreadPool::new(4);
        let inputs: Vec<u64> = (0..1000).collect();
        let out = pool.parallel_map(&inputs, |&x| x * 2);
        assert_eq!(out, inputs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn scope_runs_borrowed_tasks() {
        let pool = ThreadPool::new(3);
        let data: Vec<u64> = (0..128).collect();
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            for chunk in data.chunks(16) {
                let total = &total;
                s.spawn(move || {
                    total.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), data.iter().sum::<u64>());
    }

    #[test]
    fn scope_waits_for_slow_tasks() {
        let pool = ThreadPool::new(2);
        let mut wrote = false;
        pool.scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(30));
                wrote = true;
            });
        });
        assert!(wrote, "scope returned before its task finished");
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = Arc::new(ThreadPool::new(2));
        let total = AtomicU64::new(0);
        pool.scope(|outer| {
            for _ in 0..4 {
                let pool2 = Arc::clone(&pool);
                let total = &total;
                outer.spawn(move || {
                    pool2.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn task_panic_propagates_after_completion() {
        let pool = ThreadPool::new(2);
        let finished = Arc::new(AtomicUsize::new(0));
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                let finished = Arc::clone(&finished);
                s.spawn(move || {
                    std::thread::sleep(Duration::from_millis(10));
                    finished.fetch_add(1, Ordering::Relaxed);
                });
                s.spawn(|| panic!("task boom"));
            });
        }));
        assert!(result.is_err(), "panic must propagate out of the scope");
        assert_eq!(
            finished.load(Ordering::Relaxed),
            1,
            "sibling tasks run to completion before the scope unwinds"
        );
    }

    #[test]
    fn join_returns_both_halves() {
        let pool = ThreadPool::new(2);
        let (a, b) = pool.join(|| 2 + 2, || "forty".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "forty");
    }

    #[test]
    fn single_thread_pool_is_inline_for_map() {
        let pool = ThreadPool::new(1);
        let inputs = vec![1u32, 2, 3];
        assert_eq!(pool.parallel_map(&inputs, |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn global_pool_works() {
        let inputs: Vec<u32> = (0..64).collect();
        let out = parallel_map(&inputs, |&x| x ^ 1);
        assert_eq!(out.len(), 64);
        let (a, b) = join(|| 1, || 2);
        assert_eq!(a + b, 3);
    }

    #[test]
    fn many_concurrent_scopes() {
        let pool = Arc::new(ThreadPool::new(4));
        let mut handles = Vec::new();
        for t in 0..8 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                let items: Vec<u64> = (0..256).map(|i| i + t).collect();
                let out = pool.parallel_map(&items, |&x| x * x);
                out.iter().sum::<u64>()
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
