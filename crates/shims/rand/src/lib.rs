//! Offline shim for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the small, API-compatible subset the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not
//! cryptographic (neither is `rand`'s `StdRng` contractually), but
//! statistically solid for simulation and workload generation.

use core::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic runs).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types `Rng::gen_range` can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from the inclusive interval `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// The predecessor of `v` (for converting exclusive upper bounds).
    fn decrement(v: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128);
                if span == u128::from(u64::MAX) {
                    return rng.next_u64() as $t;
                }
                // Rejection-free widening multiply (Lemire) is overkill
                // here; modulo bias over a 64-bit source is negligible
                // for the simulation spans this workspace uses, but use
                // rejection sampling anyway for exactness.
                let span = span as u64 + 1;
                let zone = u64::MAX - (u64::MAX % span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone || zone == u64::MAX {
                        return lo.wrapping_add((v % span) as $t);
                    }
                }
            }

            fn decrement(v: Self) -> Self {
                v - 1
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                // Shift to the unsigned domain, sample, shift back.
                let offset = (lo as $u).wrapping_sub(<$t>::MIN as $u);
                let span_hi = (hi as $u).wrapping_sub(<$t>::MIN as $u);
                let v = <$u>::sample_inclusive(rng, offset, span_hi);
                v.wrapping_add(<$t>::MIN as $u) as $t
            }

            fn decrement(v: Self) -> Self {
                v - 1
            }
        }
    )*};
}

impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Range arguments accepted by `gen_range`.
pub trait SampleRange<T> {
    fn bounds_inclusive(self) -> (T, T);
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn bounds_inclusive(self) -> (T, T) {
        (self.start, T::decrement(self.end))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn bounds_inclusive(self) -> (T, T) {
        self.into_inner()
    }
}

/// The user-facing extension trait (`rand::Rng`).
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        let (lo, hi) = range.bounds_inclusive();
        T::sample_inclusive(self, lo, hi)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.gen();
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the shim's stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn gen_range_single_value() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(rng.gen_range(4usize..5), 4);
        assert_eq!(rng.gen_range(7u8..=7), 7);
    }

    #[test]
    fn uniformity_coarse() {
        // Mean of [0,1) samples should be near 0.5.
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }
}
