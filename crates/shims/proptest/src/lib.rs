//! Offline shim for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`, [`any`],
//! integer-range strategies, tuple strategies, [`collection::vec`],
//! [`Just`], [`prop_oneof!`], the `prop_assert*` family and
//! [`ProptestConfig`].
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test seed (derived from the test name and case
//! index, so failures are reproducible by rerunning the test), and
//! there is **no shrinking** — a failing case reports its inputs
//! verbatim.

use core::fmt;
use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — not a failure.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Unused (no shrinking in the shim); accepted for compatibility.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Deterministic per-test random source (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded from the test name and case index: reruns reproduce the
    /// exact same cases.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant for test-case generation.
        self.next_u64() % n
    }
}

/// A generator of random values (the proptest `Strategy` trait, minus
/// shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`] adaptor.
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (backs [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` strategy.
pub struct Any<T>(PhantomData<T>);

/// Generates arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated strings debuggable.
        (0x20u8 + (rng.below(0x5F)) as u8) as char
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, len_range)` — a vector of generated elements.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boxes a strategy for use in heterogeneous lists ([`prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Runs the cases of one `proptest!`-generated test.
#[doc(hidden)]
pub fn report_failure(test_name: &str, case: u32, inputs: &str, message: &str) -> ! {
    panic!(
        "proptest case failed\n  test: {test_name}\n  case: {case}\n  inputs: {inputs}\n  {message}"
    )
}

#[doc(hidden)]
pub fn format_input(name: &str, value: &dyn fmt::Debug) -> String {
    format!("{name} = {value:?}")
}

/// Uniform choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strategy)),+])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                l == r,
                "assertion failed: `{} == {}`\n  left: {:?}\n  right: {:?}",
                stringify!($left), stringify!($right), l, r
            ),
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                l == r,
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n  right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)*), l, r
            ),
        }
    };
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                l != r,
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ),
        }
    };
}

/// Rejects the current case (skips it) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// The proptest entry macro: declares `#[test]` functions whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                    let __inputs = [$($crate::format_input(stringify!($arg), &$arg)),+]
                        .join(", ");
                    let __outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            $crate::report_failure(stringify!($name), case, &__inputs, &msg);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case("ranges", 0);
        for _ in 0..200 {
            let v = crate::Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_len_in_bounds() {
        let mut rng = crate::TestRng::for_case("vec", 0);
        for _ in 0..100 {
            let v = crate::Strategy::generate(&crate::collection::vec(any::<u8>(), 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let a = crate::Strategy::generate(&any::<u64>(), &mut crate::TestRng::for_case("t", 7));
        let b = crate::Strategy::generate(&any::<u64>(), &mut crate::TestRng::for_case("t", 7));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_compiles_and_runs(a in 0u64..100, b in any::<bool>(), v in crate::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(a < 100);
            prop_assert_eq!(b, b);
            prop_assert!(v.len() < 4);
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u8..10) {
            prop_assume!(a != 3);
            prop_assert_ne!(a, 3);
        }

        #[test]
        fn oneof_and_map_work(x in prop_oneof![Just(1u8), Just(2u8)], y in (0u8..4).prop_map(|v| v * 2)) {
            prop_assert!(x == 1 || x == 2);
            prop_assert!(y % 2 == 0 && y < 8);
        }
    }
}
