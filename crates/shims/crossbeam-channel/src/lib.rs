//! Offline shim for `crossbeam-channel`.
//!
//! An unbounded MPMC channel built on `Mutex<VecDeque>` + `Condvar`,
//! exposing the subset of the crossbeam API the workspace uses:
//! [`unbounded`], cloneable [`Sender`]/[`Receiver`], `send`, `recv`,
//! `recv_timeout`, `try_recv`, and disconnection semantics (a receive
//! on a channel with no remaining senders fails with `Disconnected`
//! once the queue is drained).

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Error returned by [`Receiver::recv`].
#[derive(PartialEq, Eq, Clone, Copy, Debug)]
pub struct RecvError;

/// Error returned by [`Receiver::recv_timeout`].
#[derive(PartialEq, Eq, Clone, Copy, Debug)]
pub enum RecvTimeoutError {
    /// Nothing arrived before the deadline.
    Timeout,
    /// All senders disconnected and the queue is empty.
    Disconnected,
}

/// Error returned by [`Receiver::try_recv`].
#[derive(PartialEq, Eq, Clone, Copy, Debug)]
pub enum TryRecvError {
    /// The queue is currently empty.
    Empty,
    /// All senders disconnected and the queue is empty.
    Disconnected,
}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// The sending half; cloning adds another producer.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; cloning adds another consumer.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues `value`; fails only when every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        queue.push_back(value);
        drop(queue);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::Release);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender: wake all blocked receivers so they observe
            // the disconnection.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    fn disconnected(&self) -> bool {
        self.shared.senders.load(Ordering::Acquire) == 0
    }

    /// Blocks until a value arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.disconnected() {
                return Err(RecvError);
            }
            queue = self
                .shared
                .ready
                .wait(queue)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks until a value arrives, the timeout elapses, or every
    /// sender is gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.disconnected() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _result) = self
                .shared
                .ready
                .wait_timeout(queue, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            queue = guard;
        }
    }

    /// Pops a value if one is immediately available.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        match queue.pop_front() {
            Some(v) => Ok(v),
            None if self.disconnected() => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::Release);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn try_recv_empty_then_value() {
        let (tx, rx) = unbounded();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        let start = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(30)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn disconnect_drains_then_fails() {
        let (tx, rx) = unbounded();
        tx.send(5).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(5));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let handle = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv_timeout(Duration::from_secs(2)).unwrap());
        }
        handle.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn blocked_receiver_wakes_on_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        let handle = thread::spawn(move || rx.recv());
        thread::sleep(Duration::from_millis(20));
        drop(tx);
        assert_eq!(handle.join().unwrap(), Err(RecvError));
    }
}
