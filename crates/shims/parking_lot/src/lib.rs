//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s panic-free,
//! poison-free locking API (the subset this workspace uses). A poisoned
//! std lock is recovered rather than propagated: Fides servers hold locks
//! only around plain data-structure mutation, so a poisoned lock's data
//! is still structurally valid.

use std::fmt;
use std::sync::TryLockError;

/// A mutex whose `lock` never returns a `Result` (parking_lot-style).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard for shared access.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard for exclusive access.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(guard) => guard,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(guard) => guard,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(1);
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(10);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 20);
        }
        *l.write() = 11;
        assert_eq!(*l.read(), 11);
    }
}
