//! Offline shim for `criterion`.
//!
//! Provides the macro/API surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, benchmark groups, `iter` /
//! `iter_custom`, `BenchmarkId`, `Throughput`) with a real measurement
//! loop: warm-up, per-sample batching, and a `[min median max]` report
//! printed in criterion's familiar format.
//!
//! It is deliberately simpler than criterion — no outlier analysis, no
//! HTML reports, no statistical regression — but the medians it prints
//! are stable enough to compare algorithm variants on one machine.

use std::fmt;
use std::time::{Duration, Instant};

/// Measurement budget per benchmark (soft cap).
const MEASURE_BUDGET: Duration = Duration::from_millis(1500);
/// Warm-up budget per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(150);

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 50,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        let sample_size = self.default_sample_size;
        run_benchmark(&id.to_string(), sample_size, None, f);
    }
}

/// Bytes- or elements-per-iteration annotation for throughput lines.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
}

/// A `group/parameter` benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (the group name supplies the rest).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Annotates following benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for compatibility; the shim uses a fixed budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size.unwrap_or(50), self.throughput, f);
        self
    }

    /// Benchmarks `f` with an input value under `group_name/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reports are printed as benchmarks run).
    pub fn finish(self) {}
}

/// Collected per-iteration nanosecond samples.
struct Samples {
    per_iter_ns: Vec<f64>,
}

/// The measurement handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    samples: Option<Samples>,
}

impl Bencher {
    /// Measures `routine` (wall-clock, batched samples).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-iteration estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_BUDGET {
            std::hint::black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        // Aim for samples of >= 1ms, inside the overall budget.
        let iters_per_sample = ((1_000_000.0 / est_ns).ceil() as u64).max(1);
        let sample_cost = Duration::from_nanos((est_ns * iters_per_sample as f64) as u64);
        let affordable = (MEASURE_BUDGET.as_nanos() / sample_cost.as_nanos().max(1)) as usize;
        let n_samples = self.sample_size.min(affordable.max(5));

        let mut per_iter_ns = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        self.samples = Some(Samples { per_iter_ns });
    }

    /// Measures with caller-controlled timing: `routine(n)` must return
    /// the total duration of `n` iterations.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        let est = routine(1); // warm-up + estimate
        let est_ns = (est.as_nanos() as f64).max(1.0);
        let iters_per_sample = ((1_000_000.0 / est_ns).ceil() as u64).max(1);
        let sample_cost_ns = est_ns * iters_per_sample as f64;
        let affordable = (MEASURE_BUDGET.as_nanos() as f64 / sample_cost_ns.max(1.0)) as usize;
        let n_samples = self.sample_size.min(affordable.max(3));

        let mut per_iter_ns = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            let d = routine(iters_per_sample);
            per_iter_ns.push(d.as_nanos() as f64 / iters_per_sample as f64);
        }
        self.samples = Some(Samples { per_iter_ns });
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        sample_size,
        samples: None,
    };
    f(&mut bencher);
    let Some(mut samples) = bencher.samples else {
        println!("{name:<40} (no measurement: bencher not exercised)");
        return;
    };
    samples
        .per_iter_ns
        .sort_by(|a, b| a.partial_cmp(b).expect("no NaN in timings"));
    let min = samples.per_iter_ns[0];
    let max = *samples.per_iter_ns.last().expect("non-empty samples");
    let median = samples.per_iter_ns[samples.per_iter_ns.len() / 2];

    let mut line = format!(
        "{name:<40} time:   [{} {} {}]",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max)
    );
    if let Some(tp) = throughput {
        let per_sec = match tp {
            Throughput::Bytes(n) => format!("{}/s", fmt_bytes(n as f64 * 1e9 / median)),
            Throughput::Elements(n) => format!("{:.2} Melem/s", n as f64 * 1e3 / median),
        };
        line.push_str(&format!("  thrpt: {per_sec}"));
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn fmt_bytes(bytes_per_sec: f64) -> String {
    if bytes_per_sec < 1024.0 * 1024.0 {
        format!("{:.1} KiB", bytes_per_sec / 1024.0)
    } else if bytes_per_sec < 1024.0 * 1024.0 * 1024.0 {
        format!("{:.1} MiB", bytes_per_sec / 1024.0 / 1024.0)
    } else {
        format!("{:.2} GiB", bytes_per_sec / 1024.0 / 1024.0 / 1024.0)
    }
}

/// Declares a group function running each target against one
/// [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("update", 64).to_string(), "update/64");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn iter_collects_samples() {
        let mut b = Bencher {
            sample_size: 10,
            samples: None,
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        let samples = b.samples.expect("samples collected");
        assert!(!samples.per_iter_ns.is_empty());
        assert!(samples.per_iter_ns.iter().all(|&ns| ns >= 0.0));
    }

    #[test]
    fn iter_custom_collects_samples() {
        let mut b = Bencher {
            sample_size: 5,
            samples: None,
        };
        b.iter_custom(|iters| Duration::from_nanos(10 * iters));
        let samples = b.samples.expect("samples collected");
        assert!(!samples.per_iter_ns.is_empty());
    }

    #[test]
    fn formatting_units() {
        assert!(fmt_ns(12.3).contains("ns"));
        assert!(fmt_ns(12_300.0).contains("µs"));
        assert!(fmt_ns(12_300_000.0).contains("ms"));
    }
}
