//! Network substrate for Fides (paper §3.1).
//!
//! The paper deploys database servers inside one AWS datacenter and has
//! every message digitally signed by its sender and verified by the
//! receiver. This crate substitutes the datacenter network with an
//! in-process transport while keeping everything else real:
//!
//! * [`node`] — node identifiers,
//! * [`message`] — signed [`Envelope`]s (Schnorr over the canonical
//!   encoding of sender, receiver and payload),
//! * [`transport`] — a threaded [`Network`] of crossbeam channels with a
//!   delivery scheduler that injects configurable per-message latency,
//!   random drops and partitions,
//! * [`sim`] — a deterministic virtual-time event queue for
//!   single-threaded protocol simulations.
//!
//! The latency model is the reproduction's substitute for the paper's
//! EC2 testbed: protocol *computation* (signatures, Merkle updates) runs
//! for real; only the wire is simulated. See `DESIGN.md` §2.

pub mod message;
pub mod node;
pub mod sim;
pub mod transport;

pub use message::{verify_envelopes, Envelope};
pub use node::NodeId;
pub use transport::{Endpoint, EndpointSender, Network, NetworkConfig, NetworkStats, RecvError};
