//! Threaded in-memory transport with latency and fault injection.
//!
//! A [`Network`] owns one crossbeam channel per registered node plus a
//! delivery-scheduler thread. Every [`Endpoint::send`] either delivers
//! immediately (zero-latency fast path, used by tests) or enqueues the
//! envelope with a delivery deadline `now + latency + U(0, jitter)`,
//! modelling the paper's intra-datacenter links. The scheduler can also
//! drop messages randomly or along partitioned links, which the
//! fault-injection tests use to exercise crash/partition behaviour.

use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::message::Envelope;
use crate::node::NodeId;

/// Transport configuration.
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// Fixed one-way delay added to every message.
    pub latency: Duration,
    /// Additional uniformly random delay in `[0, jitter]`.
    pub jitter: Duration,
    /// Probability that a message is silently dropped.
    pub drop_probability: f64,
    /// Seed for the drop/jitter randomness (deterministic runs).
    pub seed: u64,
}

impl Default for NetworkConfig {
    /// Zero-latency, lossless transport (the test default).
    fn default() -> Self {
        NetworkConfig {
            latency: Duration::ZERO,
            jitter: Duration::ZERO,
            drop_probability: 0.0,
            seed: 0,
        }
    }
}

impl NetworkConfig {
    /// A lossless network with a fixed per-message latency — the bench
    /// harness default modelling intra-datacenter links (the paper's
    /// EC2 placement, §6).
    pub fn with_latency(latency: Duration) -> Self {
        NetworkConfig {
            latency,
            ..NetworkConfig::default()
        }
    }

    fn is_instant(&self) -> bool {
        self.latency.is_zero() && self.jitter.is_zero()
    }
}

/// Cumulative transport statistics.
#[derive(Debug, Default)]
pub struct NetworkStats {
    messages_sent: AtomicU64,
    bytes_sent: AtomicU64,
    messages_dropped: AtomicU64,
}

impl NetworkStats {
    /// Messages accepted for delivery (including later-dropped ones).
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent.load(Ordering::Relaxed)
    }

    /// Total payload bytes accepted.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Messages dropped by loss injection or partitions.
    pub fn messages_dropped(&self) -> u64 {
        self.messages_dropped.load(Ordering::Relaxed)
    }
}

/// Errors from the receiving side of an endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No message arrived within the timeout.
    Timeout,
    /// The network has shut down.
    Disconnected,
}

impl core::fmt::Display for RecvError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RecvError::Timeout => write!(f, "receive timed out"),
            RecvError::Disconnected => write!(f, "network disconnected"),
        }
    }
}

impl std::error::Error for RecvError {}

struct Scheduled {
    deliver_at: Instant,
    seq: u64,
    envelope: Envelope,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .deliver_at
            .cmp(&self.deliver_at)
            .then(other.seq.cmp(&self.seq))
    }
}

struct Shared {
    config: NetworkConfig,
    inboxes: Mutex<HashMap<NodeId, Sender<Envelope>>>,
    /// Ordered pairs `(from, to)` whose link is cut.
    partitions: Mutex<HashSet<(NodeId, NodeId)>>,
    rng: Mutex<StdRng>,
    stats: NetworkStats,
    seq: AtomicU64,
}

impl Shared {
    /// Routes an envelope to its destination inbox (if registered).
    fn deliver(&self, envelope: Envelope) {
        let inboxes = self.inboxes.lock();
        if let Some(tx) = inboxes.get(&envelope.to) {
            // A dropped receiver just loses the message, like a crashed
            // node would.
            let _ = tx.send(envelope);
        }
    }
}

/// An in-memory network connecting registered [`Endpoint`]s.
///
/// # Example
///
/// ```
/// use fides_crypto::schnorr::KeyPair;
/// use fides_net::{Envelope, Network, NetworkConfig, NodeId};
///
/// let network = Network::new(NetworkConfig::default());
/// let a = network.register(NodeId::new(0));
/// let b = network.register(NodeId::new(1));
///
/// let kp = KeyPair::from_seed(b"node-0");
/// a.send(Envelope::sign(&kp, NodeId::new(0), NodeId::new(1), b"ping".to_vec()));
/// let msg = b.recv().unwrap();
/// assert_eq!(msg.payload, b"ping");
/// ```
pub struct Network {
    shared: Arc<Shared>,
    /// Feed to the delivery scheduler (None on the instant fast path).
    scheduler_tx: Option<Sender<Scheduled>>,
}

impl Network {
    /// Creates a network; spawns the delivery scheduler when the
    /// configuration has non-zero latency.
    pub fn new(config: NetworkConfig) -> Network {
        let shared = Arc::new(Shared {
            rng: Mutex::new(StdRng::seed_from_u64(config.seed)),
            config,
            inboxes: Mutex::new(HashMap::new()),
            partitions: Mutex::new(HashSet::new()),
            stats: NetworkStats::default(),
            seq: AtomicU64::new(0),
        });
        let scheduler_tx = if shared.config.is_instant() {
            None
        } else {
            let (tx, rx) = unbounded::<Scheduled>();
            let shared2 = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fides-net-scheduler".into())
                .spawn(move || scheduler_loop(rx, shared2))
                .expect("spawn scheduler thread");
            Some(tx)
        };
        Network {
            shared,
            scheduler_tx,
        }
    }

    /// Registers a node and returns its endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the node is already registered.
    pub fn register(&self, node: NodeId) -> Endpoint {
        let (tx, rx) = unbounded();
        let mut inboxes = self.shared.inboxes.lock();
        assert!(
            inboxes.insert(node, tx).is_none(),
            "node {node} registered twice"
        );
        Endpoint {
            node,
            rx,
            shared: Arc::clone(&self.shared),
            scheduler_tx: self.scheduler_tx.clone(),
        }
    }

    /// Re-registers a node that crashed and restarted, replacing its
    /// inbox: messages still queued for the dead endpoint are lost (as
    /// they would be for a rebooted machine), and new traffic flows to
    /// the returned endpoint. Unlike [`Network::register`] this never
    /// panics on an existing registration — it is the transport half of
    /// a server rejoin.
    pub fn reregister(&self, node: NodeId) -> Endpoint {
        let (tx, rx) = unbounded();
        self.shared.inboxes.lock().insert(node, tx);
        Endpoint {
            node,
            rx,
            shared: Arc::clone(&self.shared),
            scheduler_tx: self.scheduler_tx.clone(),
        }
    }

    /// Cuts the directed link `from → to`.
    pub fn partition(&self, from: NodeId, to: NodeId) {
        self.shared.partitions.lock().insert((from, to));
    }

    /// Cuts both directions between two nodes.
    pub fn partition_pair(&self, a: NodeId, b: NodeId) {
        let mut p = self.shared.partitions.lock();
        p.insert((a, b));
        p.insert((b, a));
    }

    /// Restores all links.
    pub fn heal(&self) {
        self.shared.partitions.lock().clear();
    }

    /// Transport statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.shared.stats
    }
}

fn scheduler_loop(rx: Receiver<Scheduled>, shared: Arc<Shared>) {
    let mut heap: BinaryHeap<Scheduled> = BinaryHeap::new();
    loop {
        // Deliver everything due.
        let now = Instant::now();
        while heap.peek().is_some_and(|s| s.deliver_at <= now) {
            let item = heap.pop().expect("peeked");
            shared.deliver(item.envelope);
        }
        // Wait for the next deadline or new work.
        let wait = heap
            .peek()
            .map(|s| s.deliver_at.saturating_duration_since(Instant::now()));
        let received = match wait {
            Some(d) if d.is_zero() => continue,
            Some(d) => rx.recv_timeout(d),
            None => rx
                .recv()
                .map_err(|_| crossbeam_channel::RecvTimeoutError::Disconnected),
        };
        match received {
            Ok(item) => heap.push(item),
            Err(crossbeam_channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                // Drain what is left, then exit.
                let now = Instant::now();
                while let Some(item) = heap.pop() {
                    if item.deliver_at > now {
                        std::thread::sleep(item.deliver_at - now);
                    }
                    shared.deliver(item.envelope);
                }
                return;
            }
        }
    }
}

/// One node's attachment to a [`Network`]: a sending half (addressed by
/// envelope) and a private inbox.
pub struct Endpoint {
    node: NodeId,
    rx: Receiver<Envelope>,
    shared: Arc<Shared>,
    scheduler_tx: Option<Sender<Scheduled>>,
}

/// A send-only handle detached from an [`Endpoint`]'s inbox: any number
/// of threads (e.g. a durability writer acknowledging commits) can send
/// *as* the endpoint's node without competing for its received
/// messages.
#[derive(Clone)]
pub struct EndpointSender {
    node: NodeId,
    shared: Arc<Shared>,
    scheduler_tx: Option<Sender<Scheduled>>,
}

impl EndpointSender {
    /// The node this sender transmits as.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Sends an envelope; latency, drops and partitions apply.
    pub fn send(&self, envelope: Envelope) {
        send_via(&self.shared, &self.scheduler_tx, envelope);
    }
}

impl core::fmt::Debug for EndpointSender {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "EndpointSender({})", self.node)
    }
}

/// The shared send path behind [`Endpoint::send`] and
/// [`EndpointSender::send`].
fn send_via(shared: &Arc<Shared>, scheduler_tx: &Option<Sender<Scheduled>>, envelope: Envelope) {
    shared.stats.messages_sent.fetch_add(1, Ordering::Relaxed);
    shared
        .stats
        .bytes_sent
        .fetch_add(envelope.payload_len() as u64, Ordering::Relaxed);

    if shared
        .partitions
        .lock()
        .contains(&(envelope.from, envelope.to))
    {
        shared
            .stats
            .messages_dropped
            .fetch_add(1, Ordering::Relaxed);
        return;
    }
    if shared.config.drop_probability > 0.0 {
        let roll: f64 = shared.rng.lock().gen();
        if roll < shared.config.drop_probability {
            shared
                .stats
                .messages_dropped
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
    match scheduler_tx {
        None => shared.deliver(envelope),
        Some(tx) => {
            let jitter = if shared.config.jitter.is_zero() {
                Duration::ZERO
            } else {
                let nanos = shared.config.jitter.as_nanos() as u64;
                Duration::from_nanos(shared.rng.lock().gen_range(0..=nanos))
            };
            let item = Scheduled {
                deliver_at: Instant::now() + shared.config.latency + jitter,
                seq: shared.seq.fetch_add(1, Ordering::Relaxed),
                envelope,
            };
            // A disconnected scheduler means the network is shutting
            // down; dropping the message models a dying link.
            let _ = tx.send(item);
        }
    }
}

impl Endpoint {
    /// This endpoint's address.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// A send-only clone of this endpoint (shares the network, not the
    /// inbox).
    pub fn sender(&self) -> EndpointSender {
        EndpointSender {
            node: self.node,
            shared: Arc::clone(&self.shared),
            scheduler_tx: self.scheduler_tx.clone(),
        }
    }

    /// Sends an envelope; latency, drops and partitions apply.
    pub fn send(&self, envelope: Envelope) {
        send_via(&self.shared, &self.scheduler_tx, envelope);
    }

    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError::Disconnected`] if the network is gone.
    pub fn recv(&self) -> Result<Envelope, RecvError> {
        self.rx.recv().map_err(|_| RecvError::Disconnected)
    }

    /// Waits up to `timeout` for a message.
    ///
    /// # Errors
    ///
    /// [`RecvError::Timeout`] when nothing arrives in time.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, RecvError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            crossbeam_channel::RecvTimeoutError::Timeout => RecvError::Timeout,
            crossbeam_channel::RecvTimeoutError::Disconnected => RecvError::Disconnected,
        })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope> {
        self.rx.try_recv().ok()
    }

    /// Receives a **burst**: blocks (up to `deadline`) for the first
    /// envelope, greedily drains whatever else is already queued (at
    /// most `max_burst`), then authenticates the whole burst with one
    /// batched signature check ([`crate::verify_envelopes`]) — falling
    /// back per-envelope so only actual forgeries drop. Envelopes from
    /// senders absent from `keys` are discarded (unauthenticated
    /// messages are ignored). Returns the verified envelopes in arrival
    /// order; retries internally until at least one survives or the
    /// deadline passes.
    ///
    /// # Errors
    ///
    /// [`RecvError::Timeout`] when nothing verifiable arrives in time,
    /// [`RecvError::Disconnected`] when the network is gone.
    pub fn recv_verified_burst(
        &self,
        deadline: Instant,
        keys: &std::collections::HashMap<NodeId, fides_crypto::schnorr::PublicKey>,
        max_burst: usize,
    ) -> Result<Vec<Envelope>, RecvError> {
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvError::Timeout);
            }
            let first = self.recv_timeout(deadline - now)?;
            let mut burst = vec![first];
            while burst.len() < max_burst {
                match self.try_recv() {
                    Some(env) => burst.push(env),
                    None => break,
                }
            }
            let known: Vec<(Envelope, fides_crypto::schnorr::PublicKey)> = burst
                .into_iter()
                .filter_map(|env| {
                    let pk = *keys.get(&env.from)?;
                    Some((env, pk))
                })
                .collect();
            let refs: Vec<(&Envelope, &fides_crypto::schnorr::PublicKey)> =
                known.iter().map(|(env, pk)| (env, pk)).collect();
            let all_valid = crate::message::verify_envelopes(&refs);
            let verified: Vec<Envelope> = known
                .into_iter()
                .filter(|(env, pk)| all_valid || env.verify(pk))
                .map(|(env, _)| env)
                .collect();
            if !verified.is_empty() {
                return Ok(verified);
            }
        }
    }
}

impl core::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Endpoint({})", self.node)
    }
}

impl core::fmt::Debug for Network {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Network(latency={:?}, nodes={})",
            self.shared.config.latency,
            self.shared.inboxes.lock().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fides_crypto::schnorr::KeyPair;

    fn env(kp: &KeyPair, from: u32, to: u32, payload: &[u8]) -> Envelope {
        Envelope::sign(kp, NodeId::new(from), NodeId::new(to), payload.to_vec())
    }

    #[test]
    fn instant_delivery() {
        let net = Network::new(NetworkConfig::default());
        let a = net.register(NodeId::new(0));
        let b = net.register(NodeId::new(1));
        let kp = KeyPair::from_seed(b"k");
        a.send(env(&kp, 0, 1, b"x"));
        assert_eq!(b.recv().unwrap().payload, b"x");
    }

    #[test]
    fn delayed_delivery_takes_at_least_latency() {
        let net = Network::new(NetworkConfig::with_latency(Duration::from_millis(20)));
        let a = net.register(NodeId::new(0));
        let b = net.register(NodeId::new(1));
        let kp = KeyPair::from_seed(b"k");
        let start = Instant::now();
        a.send(env(&kp, 0, 1, b"x"));
        let got = b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got.payload, b"x");
        assert!(start.elapsed() >= Duration::from_millis(18), "too fast");
    }

    #[test]
    fn delayed_messages_keep_order_per_link() {
        let net = Network::new(NetworkConfig::with_latency(Duration::from_millis(5)));
        let a = net.register(NodeId::new(0));
        let b = net.register(NodeId::new(1));
        let kp = KeyPair::from_seed(b"k");
        for i in 0..10u8 {
            a.send(env(&kp, 0, 1, &[i]));
        }
        for i in 0..10u8 {
            assert_eq!(
                b.recv_timeout(Duration::from_secs(2)).unwrap().payload,
                vec![i]
            );
        }
    }

    #[test]
    fn partition_drops_one_direction() {
        let net = Network::new(NetworkConfig::default());
        let a = net.register(NodeId::new(0));
        let b = net.register(NodeId::new(1));
        let kp = KeyPair::from_seed(b"k");
        net.partition(NodeId::new(0), NodeId::new(1));
        a.send(env(&kp, 0, 1, b"lost"));
        assert_eq!(
            b.recv_timeout(Duration::from_millis(50)),
            Err(RecvError::Timeout)
        );
        // Reverse direction still works.
        b.send(env(&kp, 1, 0, b"ok"));
        assert_eq!(a.recv().unwrap().payload, b"ok");
        net.heal();
        a.send(env(&kp, 0, 1, b"back"));
        assert_eq!(b.recv().unwrap().payload, b"back");
        assert_eq!(net.stats().messages_dropped(), 1);
    }

    #[test]
    fn random_drops_respect_probability() {
        let net = Network::new(Network::config_full_loss());
        let a = net.register(NodeId::new(0));
        let b = net.register(NodeId::new(1));
        let kp = KeyPair::from_seed(b"k");
        for _ in 0..20 {
            a.send(env(&kp, 0, 1, b"x"));
        }
        assert_eq!(
            b.recv_timeout(Duration::from_millis(50)),
            Err(RecvError::Timeout)
        );
        assert_eq!(net.stats().messages_dropped(), 20);
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let net = Network::new(NetworkConfig::default());
        let a = net.register(NodeId::new(0));
        let _b = net.register(NodeId::new(1));
        let kp = KeyPair::from_seed(b"k");
        a.send(env(&kp, 0, 1, b"12345"));
        a.send(env(&kp, 0, 1, b"678"));
        assert_eq!(net.stats().messages_sent(), 2);
        assert_eq!(net.stats().bytes_sent(), 8);
    }

    #[test]
    fn unknown_destination_is_dropped_silently() {
        let net = Network::new(NetworkConfig::default());
        let a = net.register(NodeId::new(0));
        let kp = KeyPair::from_seed(b"k");
        a.send(env(&kp, 0, 99, b"void"));
        // No panic; nothing to assert beyond the send not failing.
        assert_eq!(net.stats().messages_sent(), 1);
    }

    #[test]
    fn reregistration_replaces_the_inbox() {
        let net = Network::new(NetworkConfig::default());
        let a = net.register(NodeId::new(0));
        let b_old = net.register(NodeId::new(1));
        let kp = KeyPair::from_seed(b"k");
        a.send(env(&kp, 0, 1, b"before-crash"));
        assert_eq!(b_old.recv().unwrap().payload, b"before-crash");

        // Node 1 "reboots": the replacement inbox gets new traffic, the
        // dead endpoint gets nothing further.
        let b_new = net.reregister(NodeId::new(1));
        a.send(env(&kp, 0, 1, b"after-restart"));
        assert_eq!(b_new.recv().unwrap().payload, b"after-restart");
        // Its network-side sender was dropped with the replacement.
        assert_eq!(
            b_old.recv_timeout(Duration::from_millis(20)),
            Err(RecvError::Disconnected)
        );
        // The restarted node can still send.
        b_new.send(env(&kp, 1, 0, b"hello"));
        assert_eq!(a.recv().unwrap().payload, b"hello");
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_registration_panics() {
        let net = Network::new(NetworkConfig::default());
        let _a = net.register(NodeId::new(0));
        let _b = net.register(NodeId::new(0));
    }

    impl Network {
        fn config_full_loss() -> NetworkConfig {
            NetworkConfig {
                drop_probability: 1.0,
                ..NetworkConfig::default()
            }
        }
    }
}
