//! Signed message envelopes.
//!
//! Paper §3.1: "all message exchanges (client-server or server-server)
//! are digitally signed by the sender and verified by the receiver."
//! An [`Envelope`] carries an opaque payload plus a Schnorr signature
//! over the canonical encoding of `(from, to, payload)`, so a signature
//! cannot be replayed for a different receiver or payload.

use fides_crypto::encoding::{Decodable, DecodeError, Decoder, Encodable, Encoder};
use fides_crypto::schnorr::{KeyPair, PublicKey, Signature};

use crate::node::NodeId;

/// A signed, addressed message.
///
/// # Example
///
/// ```
/// use fides_crypto::schnorr::KeyPair;
/// use fides_net::{Envelope, NodeId};
///
/// let kp = KeyPair::from_seed(b"server-0");
/// let env = Envelope::sign(&kp, NodeId::new(0), NodeId::new(1), b"vote".to_vec());
/// assert!(env.verify(&kp.public_key()));
/// assert!(!env.verify(&KeyPair::from_seed(b"other").public_key()));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Sender address.
    pub from: NodeId,
    /// Receiver address.
    pub to: NodeId,
    /// Opaque payload (a canonically encoded protocol message).
    pub payload: Vec<u8>,
    /// Schnorr signature by the sender over `(from, to, payload)`.
    pub signature: Signature,
}

impl Envelope {
    /// Creates and signs an envelope with the sender's key pair.
    pub fn sign(kp: &KeyPair, from: NodeId, to: NodeId, payload: Vec<u8>) -> Envelope {
        let signature = kp.sign(&signing_bytes(from, to, &payload));
        Envelope {
            from,
            to,
            payload,
            signature,
        }
    }

    /// Verifies the envelope against the claimed sender's public key.
    pub fn verify(&self, sender_pk: &PublicKey) -> bool {
        sender_pk.verify(
            &signing_bytes(self.from, self.to, &self.payload),
            &self.signature,
        )
    }

    /// The payload size in bytes (for transport statistics).
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// The exact bytes this envelope's signature covers — for callers
    /// assembling a [`verify_envelopes`] batch.
    pub fn signed_bytes(&self) -> Vec<u8> {
        signing_bytes(self.from, self.to, &self.payload)
    }
}

/// Verifies a batch of envelopes against their claimed senders' keys
/// with **one** random-linear-combination check
/// ([`fides_crypto::schnorr::verify_batch`]) instead of one full
/// Schnorr verification per message — how a busy receiver authenticates
/// an inbox burst at a fraction of the sequential cost. The per-message
/// challenge hashing inside the batch runs through the multi-lane
/// [`fides_crypto::Sha256::digest_many`], so both the point arithmetic
/// *and* the hashing are batched.
///
/// Returns `true` only if *every* envelope verifies; on `false` the
/// caller falls back to per-envelope [`Envelope::verify`] to drop just
/// the forgeries.
pub fn verify_envelopes(envelopes: &[(&Envelope, &PublicKey)]) -> bool {
    use fides_crypto::schnorr::{verify_batch, BatchItem};
    match envelopes {
        [] => return true,
        [(env, pk)] => return env.verify(pk),
        _ => {}
    }
    let messages: Vec<Vec<u8>> = envelopes.iter().map(|(e, _)| e.signed_bytes()).collect();
    let items: Vec<BatchItem<'_>> = envelopes
        .iter()
        .zip(&messages)
        .map(|((env, pk), message)| BatchItem {
            public_key: **pk,
            message,
            signature: env.signature,
        })
        .collect();
    verify_batch(&items)
}

fn signing_bytes(from: NodeId, to: NodeId, payload: &[u8]) -> Vec<u8> {
    let mut enc = Encoder::with_capacity(payload.len() + 32);
    enc.put_fixed(b"fides.envelope.v1");
    from.encode_into(&mut enc);
    to.encode_into(&mut enc);
    enc.put_bytes(payload);
    enc.into_bytes()
}

impl Encodable for Envelope {
    fn encode_into(&self, enc: &mut Encoder) {
        self.from.encode_into(enc);
        self.to.encode_into(enc);
        enc.put_bytes(&self.payload);
        self.signature.encode_into(enc);
    }
}

impl Decodable for Envelope {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Envelope {
            from: NodeId::decode_from(dec)?,
            to: NodeId::decode_from(dec)?,
            payload: dec.take_bytes()?.to_vec(),
            signature: Signature::decode_from(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let kp = KeyPair::from_seed(b"a");
        let env = Envelope::sign(&kp, NodeId::new(1), NodeId::new(2), b"hello".to_vec());
        assert!(env.verify(&kp.public_key()));
    }

    #[test]
    fn tampered_payload_rejected() {
        let kp = KeyPair::from_seed(b"a");
        let mut env = Envelope::sign(&kp, NodeId::new(1), NodeId::new(2), b"hello".to_vec());
        env.payload[0] ^= 1;
        assert!(!env.verify(&kp.public_key()));
    }

    #[test]
    fn redirected_envelope_rejected() {
        // A signature for receiver 2 must not verify when re-addressed.
        let kp = KeyPair::from_seed(b"a");
        let mut env = Envelope::sign(&kp, NodeId::new(1), NodeId::new(2), b"m".to_vec());
        env.to = NodeId::new(3);
        assert!(!env.verify(&kp.public_key()));
    }

    #[test]
    fn spoofed_sender_rejected() {
        let kp = KeyPair::from_seed(b"a");
        let mut env = Envelope::sign(&kp, NodeId::new(1), NodeId::new(2), b"m".to_vec());
        env.from = NodeId::new(9);
        assert!(!env.verify(&kp.public_key()));
    }

    #[test]
    fn encoding_roundtrip() {
        let kp = KeyPair::from_seed(b"b");
        let env = Envelope::sign(&kp, NodeId::new(4), NodeId::new(5), vec![1, 2, 3]);
        let decoded = Envelope::decode(&env.encode()).unwrap();
        assert_eq!(decoded, env);
        assert!(decoded.verify(&kp.public_key()));
    }

    #[test]
    fn empty_payload_supported() {
        let kp = KeyPair::from_seed(b"c");
        let env = Envelope::sign(&kp, NodeId::new(0), NodeId::new(0), Vec::new());
        assert!(env.verify(&kp.public_key()));
        assert_eq!(env.payload_len(), 0);
    }
}
