//! Signed message envelopes.
//!
//! Paper §3.1: "all message exchanges (client-server or server-server)
//! are digitally signed by the sender and verified by the receiver."
//! An [`Envelope`] carries an opaque payload plus a Schnorr signature
//! over the canonical encoding of `(from, to, payload)`, so a signature
//! cannot be replayed for a different receiver or payload.

use fides_crypto::encoding::{Decodable, DecodeError, Decoder, Encodable, Encoder};
use fides_crypto::schnorr::{KeyPair, PublicKey, Signature};
use fides_telemetry::TraceContext;

use crate::node::NodeId;

/// A signed, addressed message.
///
/// # Example
///
/// ```
/// use fides_crypto::schnorr::KeyPair;
/// use fides_net::{Envelope, NodeId};
///
/// let kp = KeyPair::from_seed(b"server-0");
/// let env = Envelope::sign(&kp, NodeId::new(0), NodeId::new(1), b"vote".to_vec());
/// assert!(env.verify(&kp.public_key()));
/// assert!(!env.verify(&KeyPair::from_seed(b"other").public_key()));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Sender address.
    pub from: NodeId,
    /// Receiver address.
    pub to: NodeId,
    /// Opaque payload (a canonically encoded protocol message).
    pub payload: Vec<u8>,
    /// Schnorr signature by the sender over `(from, to, payload)` —
    /// plus the trace context when one rides along.
    pub signature: Signature,
    /// Causal trace context for a **sampled** transaction (fides-trace,
    /// `docs/tracing.md`). `None` for unsampled traffic, whose signed
    /// bytes are byte-identical to the pre-tracing wire shape; when
    /// present it is covered by the signature, so a relay can neither
    /// forge nor strip it undetected.
    pub trace: Option<TraceContext>,
}

impl Envelope {
    /// Creates and signs an envelope with the sender's key pair.
    pub fn sign(kp: &KeyPair, from: NodeId, to: NodeId, payload: Vec<u8>) -> Envelope {
        Envelope::sign_traced(kp, from, to, payload, None)
    }

    /// [`Envelope::sign`] with a causal trace context attached.
    pub fn sign_traced(
        kp: &KeyPair,
        from: NodeId,
        to: NodeId,
        payload: Vec<u8>,
        trace: Option<TraceContext>,
    ) -> Envelope {
        let signature = kp.sign(&signing_bytes(from, to, &payload, trace));
        Envelope {
            from,
            to,
            payload,
            signature,
            trace,
        }
    }

    /// Verifies the envelope against the claimed sender's public key.
    pub fn verify(&self, sender_pk: &PublicKey) -> bool {
        sender_pk.verify(&self.signed_bytes(), &self.signature)
    }

    /// The payload size in bytes (for transport statistics).
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// The exact bytes this envelope's signature covers — for callers
    /// assembling a [`verify_envelopes`] batch.
    pub fn signed_bytes(&self) -> Vec<u8> {
        signing_bytes(self.from, self.to, &self.payload, self.trace)
    }
}

/// Verifies a batch of envelopes against their claimed senders' keys
/// with **one** random-linear-combination check
/// ([`fides_crypto::schnorr::verify_batch`]) instead of one full
/// Schnorr verification per message — how a busy receiver authenticates
/// an inbox burst at a fraction of the sequential cost. The per-message
/// challenge hashing inside the batch runs through the multi-lane
/// [`fides_crypto::Sha256::digest_many`], so both the point arithmetic
/// *and* the hashing are batched.
///
/// Returns `true` only if *every* envelope verifies; on `false` the
/// caller falls back to per-envelope [`Envelope::verify`] to drop just
/// the forgeries.
pub fn verify_envelopes(envelopes: &[(&Envelope, &PublicKey)]) -> bool {
    use fides_crypto::schnorr::{verify_batch, BatchItem};
    match envelopes {
        [] => return true,
        [(env, pk)] => return env.verify(pk),
        _ => {}
    }
    let messages: Vec<Vec<u8>> = envelopes.iter().map(|(e, _)| e.signed_bytes()).collect();
    let items: Vec<BatchItem<'_>> = envelopes
        .iter()
        .zip(&messages)
        .map(|((env, pk), message)| BatchItem {
            public_key: **pk,
            message,
            signature: env.signature,
        })
        .collect();
    verify_batch(&items)
}

fn signing_bytes(from: NodeId, to: NodeId, payload: &[u8], trace: Option<TraceContext>) -> Vec<u8> {
    let mut enc = Encoder::with_capacity(payload.len() + 32);
    enc.put_fixed(b"fides.envelope.v1");
    from.encode_into(&mut enc);
    to.encode_into(&mut enc);
    enc.put_bytes(payload);
    // Domain-separated tail, appended **only** for sampled traffic:
    // an unsampled envelope signs exactly the v1 bytes, so enabling
    // tracing never changes what the fleet signs for 1−1/N of load.
    if let Some(ctx) = trace {
        enc.put_fixed(b"fides.trace.v1");
        enc.put_u64(ctx.trace_id);
        enc.put_u64(ctx.parent_span);
    }
    enc.into_bytes()
}

impl Encodable for Envelope {
    fn encode_into(&self, enc: &mut Encoder) {
        self.from.encode_into(enc);
        self.to.encode_into(enc);
        enc.put_bytes(&self.payload);
        self.signature.encode_into(enc);
        enc.put_option(&self.trace, |enc, ctx| {
            enc.put_u64(ctx.trace_id);
            enc.put_u64(ctx.parent_span);
        });
    }
}

impl Decodable for Envelope {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Envelope {
            from: NodeId::decode_from(dec)?,
            to: NodeId::decode_from(dec)?,
            payload: dec.take_bytes()?.to_vec(),
            signature: Signature::decode_from(dec)?,
            trace: dec.take_option(|dec| {
                Ok(TraceContext {
                    trace_id: dec.take_u64()?,
                    parent_span: dec.take_u64()?,
                })
            })?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let kp = KeyPair::from_seed(b"a");
        let env = Envelope::sign(&kp, NodeId::new(1), NodeId::new(2), b"hello".to_vec());
        assert!(env.verify(&kp.public_key()));
    }

    #[test]
    fn tampered_payload_rejected() {
        let kp = KeyPair::from_seed(b"a");
        let mut env = Envelope::sign(&kp, NodeId::new(1), NodeId::new(2), b"hello".to_vec());
        env.payload[0] ^= 1;
        assert!(!env.verify(&kp.public_key()));
    }

    #[test]
    fn redirected_envelope_rejected() {
        // A signature for receiver 2 must not verify when re-addressed.
        let kp = KeyPair::from_seed(b"a");
        let mut env = Envelope::sign(&kp, NodeId::new(1), NodeId::new(2), b"m".to_vec());
        env.to = NodeId::new(3);
        assert!(!env.verify(&kp.public_key()));
    }

    #[test]
    fn spoofed_sender_rejected() {
        let kp = KeyPair::from_seed(b"a");
        let mut env = Envelope::sign(&kp, NodeId::new(1), NodeId::new(2), b"m".to_vec());
        env.from = NodeId::new(9);
        assert!(!env.verify(&kp.public_key()));
    }

    #[test]
    fn encoding_roundtrip() {
        let kp = KeyPair::from_seed(b"b");
        let env = Envelope::sign(&kp, NodeId::new(4), NodeId::new(5), vec![1, 2, 3]);
        let decoded = Envelope::decode(&env.encode()).unwrap();
        assert_eq!(decoded, env);
        assert!(decoded.verify(&kp.public_key()));
    }

    #[test]
    fn traced_envelope_roundtrip_and_integrity() {
        let kp = KeyPair::from_seed(b"t");
        let ctx = TraceContext {
            trace_id: 0xabcd,
            parent_span: 7,
        };
        let env = Envelope::sign_traced(&kp, NodeId::new(1), NodeId::new(2), vec![9], Some(ctx));
        assert!(env.verify(&kp.public_key()));
        let decoded = Envelope::decode(&env.encode()).unwrap();
        assert_eq!(decoded.trace, Some(ctx));
        assert!(decoded.verify(&kp.public_key()));

        // Stripping or forging the context breaks the signature.
        let mut stripped = env.clone();
        stripped.trace = None;
        assert!(!stripped.verify(&kp.public_key()));
        let mut forged = env.clone();
        forged.trace = Some(TraceContext {
            trace_id: 0xabce,
            parent_span: 7,
        });
        assert!(!forged.verify(&kp.public_key()));

        // Unsampled envelopes sign the exact v1 bytes.
        let plain = Envelope::sign(&kp, NodeId::new(1), NodeId::new(2), vec![9]);
        assert_eq!(
            plain.signed_bytes(),
            signing_bytes(NodeId::new(1), NodeId::new(2), &[9], None)
        );
        assert!(!plain.signed_bytes().windows(5).any(|w| w == b"trace"));
    }

    #[test]
    fn empty_payload_supported() {
        let kp = KeyPair::from_seed(b"c");
        let env = Envelope::sign(&kp, NodeId::new(0), NodeId::new(0), Vec::new());
        assert!(env.verify(&kp.public_key()));
        assert_eq!(env.payload_len(), 0);
    }
}
