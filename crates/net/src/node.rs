//! Node identifiers.

use core::fmt;

use fides_crypto::encoding::{Decodable, DecodeError, Decoder, Encodable, Encoder};

/// Identifies a participant on the network (a database server, a client,
/// or the auditor).
///
/// Fides identifies participants by public key (paper §3.1); `NodeId` is
/// the transport-level address that the key directory maps to. The
/// numeric value is opaque to this crate — `fides-core` assigns servers
/// and clients to disjoint ranges.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    pub const fn new(raw: u32) -> Self {
        NodeId(raw)
    }

    /// The raw index.
    pub fn raw(&self) -> u32 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(raw: u32) -> Self {
        NodeId(raw)
    }
}

impl Encodable for NodeId {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_u32(self.0);
    }
}

impl Decodable for NodeId {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(NodeId(dec.take_u32()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_display() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(7).to_string(), "n7");
        assert_eq!(format!("{:?}", NodeId::new(7)), "n7");
    }

    #[test]
    fn encode_roundtrip() {
        let id = NodeId::new(42);
        assert_eq!(NodeId::decode(&id.encode()).unwrap(), id);
    }
}
