//! Deterministic virtual-time event scheduling.
//!
//! [`EventQueue`] is a tiny discrete-event simulator core: events are
//! enqueued with a delay, and popped in virtual-time order with FIFO
//! tie-breaking. `fides-ordserv` uses it to drive PBFT rounds
//! deterministically; tests use it wherever wall-clock sleeps would be
//! wasteful or flaky.

use std::collections::BinaryHeap;

/// Virtual time in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default, Hash)]
pub struct VirtualTime(u64);

impl VirtualTime {
    /// Simulation start.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// Nanoseconds since simulation start.
    pub fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Time advanced by `nanos`.
    pub fn plus_nanos(&self, nanos: u64) -> VirtualTime {
        VirtualTime(self.0 + nanos)
    }
}

struct Entry<T> {
    at: VirtualTime,
    seq: u64,
    event: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Earliest first (max-heap inversion), FIFO within a tick.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// # Example
///
/// ```
/// use fides_net::sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule_in(50, "second");
/// q.schedule_in(10, "first");
/// assert_eq!(q.pop().unwrap().1, "first");
/// assert_eq!(q.now().as_nanos(), 10);
/// assert_eq!(q.pop().unwrap().1, "second");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    now: VirtualTime,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue at virtual time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: VirtualTime::ZERO,
            seq: 0,
        }
    }

    /// Current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` `delay_nanos` after the current virtual time.
    pub fn schedule_in(&mut self, delay_nanos: u64, event: T) {
        let at = self.now.plus_nanos(delay_nanos);
        self.schedule_at(at, event);
    }

    /// Schedules `event` at an absolute virtual time.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the virtual past.
    pub fn schedule_at(&mut self, at: VirtualTime, event: T) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.heap.push(Entry {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pops the next event, advancing virtual time to its timestamp.
    pub fn pop(&mut self) -> Option<(VirtualTime, T)> {
        let entry = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Runs `handler` on every event until the queue drains. The handler
    /// may schedule further events. Returns the number processed.
    pub fn run<F: FnMut(&mut EventQueue<T>, VirtualTime, T)>(&mut self, mut handler: F) -> usize {
        let mut processed = 0;
        while let Some(entry) = self.heap.pop() {
            self.now = entry.at;
            handler(self, entry.at, entry.event);
            processed += 1;
        }
        processed
    }
}

impl<T> core::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "EventQueue(now={}ns, pending={})",
            self.now.as_nanos(),
            self.heap.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_in(30, 'c');
        q.schedule_in(10, 'a');
        q.schedule_in(20, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn fifo_within_same_tick() {
        let mut q = EventQueue::new();
        q.schedule_in(5, 1);
        q.schedule_in(5, 2);
        q.schedule_in(5, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn time_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule_in(100, ());
        q.schedule_in(50, ());
        let (t1, _) = q.pop().unwrap();
        let (t2, _) = q.pop().unwrap();
        assert!(t1 <= t2);
        assert_eq!(q.now(), t2);
    }

    #[test]
    fn relative_scheduling_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule_in(10, "first");
        q.pop();
        q.schedule_in(5, "second"); // at t=15
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.as_nanos(), 15);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_in(10, ());
        q.pop();
        q.schedule_at(VirtualTime::ZERO, ());
    }

    #[test]
    fn run_drains_and_allows_rescheduling() {
        let mut q = EventQueue::new();
        q.schedule_in(1, 3u32); // countdown event
        let processed = q.run(|q, _, remaining| {
            if remaining > 0 {
                q.schedule_in(1, remaining - 1);
            }
        });
        assert_eq!(processed, 4); // 3, 2, 1, 0
        assert!(q.is_empty());
    }
}
