//! The bounded ring-buffer event log for *rare* structured events
//! (repair transitions, refusals, Byzantine evidence, timeouts).
//!
//! Writers claim a slot with one `fetch_add` (total order by sequence
//! number) and fill it under a per-slot lock — writers never contend
//! unless the ring has fully wrapped between two claims of the same
//! slot. The ring keeps the newest `capacity` events; a snapshot
//! returns them in sequence order.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

use crate::log::{self, Level};
use crate::trace::now_ns;

/// One recorded event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Global sequence number (total order across threads).
    pub seq: u64,
    pub level: Level,
    /// Coarse source plane, e.g. `"repair"`, `"refusal"`.
    pub category: &'static str,
    pub message: String,
    /// Nanoseconds on the process-wide epoch ([`crate::trace::now_ns`])
    /// — the same timebase spans and flight-recorder dumps use.
    pub at_ns: u64,
}

/// A bounded ring of the newest [`Event`]s (see module docs).
pub struct EventLog {
    next_seq: AtomicU64,
    slots: Vec<Mutex<Option<Event>>>,
}

impl EventLog {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event ring needs at least one slot");
        EventLog {
            next_seq: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Records an event (overwriting the oldest once full) and mirrors
    /// it to stderr when the `FIDES_LOG` filter admits its level.
    pub fn record(&self, level: Level, category: &'static str, message: String) {
        log::emit(level, category, format_args!("{message}"));
        let seq = self.next_seq.fetch_add(1, Relaxed);
        let event = Event {
            seq,
            level,
            category,
            message,
            at_ns: now_ns(),
        };
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
        // A racing wrap may have written a *newer* seq here already;
        // keep the newest.
        if guard.as_ref().is_none_or(|held| held.seq < seq) {
            *guard = Some(event);
        }
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.next_seq.load(Relaxed)
    }

    /// The retained events, in ascending sequence order.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut events: Vec<Event> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "EventLog {{ capacity: {}, recorded: {} }}",
            self.slots.len(),
            self.recorded()
        )
    }
}
