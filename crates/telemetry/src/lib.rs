//! Lock-free observability for the Fides reproduction.
//!
//! Fides' premise is *auditable* trust — and an unobservable pipeline
//! cannot be audited for performance any more than an unsigned block
//! can be audited for integrity. This crate is the substrate every
//! runtime plane (commit, durability, read, repair) reports through:
//!
//! * [`Counter`] / [`Gauge`] — single-word atomics, `Relaxed` on the
//!   hot path;
//! * [`Histogram`] — log-bucketed (8 sub-buckets per octave, ≤ 12.5 %
//!   relative error) with wait-free recording and consistent
//!   [`HistogramSnapshot`]s exposing p50/p95/p99;
//! * [`Stage`] + [`Stopwatch`] — the commit-round stage taxonomy
//!   (batch formation → OCC validate → Merkle update → CoSi assembly →
//!   WAL fsync → outcome send) and the lap timer that tiles a round
//!   into contiguous stage segments;
//! * [`EventLog`] — a bounded ring buffer for *rare* structured events
//!   (repair transitions, refusals, Byzantine evidence, timeouts);
//! * [`Registry`] / [`MetricsSnapshot`] — string-named handles
//!   (registration takes a lock once; recording never does) and the
//!   mergeable point-in-time snapshot the cluster aggregates, rendered
//!   as JSON or Prometheus text exposition;
//! * [`trace`] — sampled causal spans ([`TraceContext`] on the wire,
//!   [`SpanSink`] rings per node, a cross-server assembler, Chrome
//!   trace-event export) — see `docs/tracing.md`;
//! * [`watchdog`] — the liveness stall report ([`Stall`]) and flight
//!   recorder the server-side round-progress monitor dumps into;
//! * [`log`] — leveled stderr diagnostics gated by the `FIDES_LOG`
//!   environment filter (default `warn`: tests stay quiet).
//!
//! Like the `crates/shims/*` crates, this is pure `std`: the build
//! environment has no crates.io access.
//!
//! See `docs/telemetry.md` for the metric naming scheme and how to
//! read a stage breakdown.

mod events;
mod histogram;
pub mod log;
mod metrics;
mod registry;
mod stage;
pub mod trace;
pub mod watchdog;

pub use events::{Event, EventLog};
pub use histogram::{Histogram, HistogramSnapshot, NUM_BUCKETS, SUB_BITS};
pub use log::Level;
pub use metrics::{Counter, Gauge, GaugeSnapshot};
pub use registry::{MetricsSnapshot, Registry};
pub use stage::{Stage, StageTimers, Stopwatch};
pub use trace::{Sampler, Span, SpanSink, TraceContext, TraceTree};
pub use watchdog::{FlightRecorder, Stall, StallLog};

/// Logs at [`Level::Error`]: unrecoverable or operator-actionable
/// failures. Printed by default.
#[macro_export]
macro_rules! log_error {
    ($cat:expr, $($arg:tt)*) => {
        $crate::log::emit($crate::Level::Error, $cat, ::core::format_args!($($arg)*))
    };
}

/// Logs at [`Level::Warn`]: anomalies worth seeing without opting in
/// (timeouts, refusals, evidence). Printed by default.
#[macro_export]
macro_rules! log_warn {
    ($cat:expr, $($arg:tt)*) => {
        $crate::log::emit($crate::Level::Warn, $cat, ::core::format_args!($($arg)*))
    };
}

/// Logs at [`Level::Info`]: progress diagnostics (bench phases, repair
/// completions). Quiet unless `FIDES_LOG=info` (or `debug`).
#[macro_export]
macro_rules! log_info {
    ($cat:expr, $($arg:tt)*) => {
        $crate::log::emit($crate::Level::Info, $cat, ::core::format_args!($($arg)*))
    };
}

/// Logs at [`Level::Debug`]: high-volume tracing. Quiet unless
/// `FIDES_LOG=debug`.
#[macro_export]
macro_rules! log_debug {
    ($cat:expr, $($arg:tt)*) => {
        $crate::log::emit($crate::Level::Debug, $cat, ::core::format_args!($($arg)*))
    };
}
