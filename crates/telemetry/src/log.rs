//! Leveled stderr diagnostics gated by the `FIDES_LOG` environment
//! filter.
//!
//! `FIDES_LOG` takes `off`, `error`, `warn` (the default), `info` or
//! `debug`; everything at or above the filter level prints to stderr.
//! The default keeps test and bench output quiet (progress chatter is
//! `info`) while anomalies — timeouts, refusals, Byzantine evidence —
//! stay visible. Use the [`crate::log_error!`]/[`crate::log_warn!`]/
//! [`crate::log_info!`]/[`crate::log_debug!`] macros; formatting cost
//! is only paid when the level is enabled.

use std::sync::OnceLock;

/// Event/diagnostic severity, ordered most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error,
    Warn,
    Info,
    Debug,
}

impl Level {
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// `None` = `FIDES_LOG=off`.
fn filter() -> Option<Level> {
    static FILTER: OnceLock<Option<Level>> = OnceLock::new();
    *FILTER.get_or_init(|| {
        match std::env::var("FIDES_LOG")
            .unwrap_or_default()
            .to_ascii_lowercase()
            .as_str()
        {
            "off" | "none" => None,
            "error" => Some(Level::Error),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            // Unset or unrecognized: warnings and errors only.
            _ => Some(Level::Warn),
        }
    })
}

/// Whether `level` passes the `FIDES_LOG` filter.
pub fn enabled(level: Level) -> bool {
    filter().is_some_and(|f| level <= f)
}

/// Prints one line to stderr when `level` is enabled. Called by the
/// `log_*!` macros and by [`crate::EventLog::record`].
pub fn emit(level: Level, category: &'static str, args: std::fmt::Arguments<'_>) {
    if enabled(level) {
        eprintln!("[fides:{} {}] {}", level.name(), category, args);
    }
}
