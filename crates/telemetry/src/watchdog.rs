//! Liveness watchdog data plane: structured stall reports and the
//! flight recorder dumped when a round stops making progress.
//!
//! The *detection* logic lives with the server (it knows the frontier
//! height, the current leader, and what work is outstanding); this
//! module owns the report types and the shared [`StallLog`] the
//! detector writes into — the trigger substrate ROADMAP item 1's
//! timeout-driven view change will consume, and what tests and the
//! bench rig read back.

use std::sync::Mutex;

use crate::events::Event;
use crate::registry::MetricsSnapshot;

/// One detected liveness stall: the frontier has not advanced past
/// `height` for `waited_ms` despite outstanding work, and `leader` is
/// the server whose round it is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stall {
    /// The rotation leader for the stalled height.
    pub leader: u64,
    /// The frontier height that stopped advancing.
    pub height: u64,
    /// How long the frontier had been stuck when the detector fired.
    pub waited_ms: u64,
}

/// Everything the detector could grab at the moment it fired: the
/// recent event ring, a metrics snapshot, and free-form notes about
/// inflight round state — a post-mortem in a box.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    pub stall: Stall,
    /// When the dump was taken, on the process epoch
    /// ([`crate::trace::now_ns`]).
    pub at_ns: u64,
    /// The event ring at dump time (newest `capacity` events).
    pub events: Vec<Event>,
    pub metrics: MetricsSnapshot,
    /// Inflight round state, e.g. witness heights, pending txn count.
    pub notes: Vec<String>,
}

impl FlightRecorder {
    /// Human-readable rendering for stderr / bug reports.
    pub fn render(&self) -> String {
        let mut out = format!(
            "=== fides flight recorder: stall at height {} (leader {}, waited {} ms) ===\n",
            self.stall.height, self.stall.leader, self.stall.waited_ms
        );
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out.push_str(&format!("events ({}):\n", self.events.len()));
        for e in &self.events {
            out.push_str(&format!(
                "  [{:>12} ns] #{} {:5} {}: {}\n",
                e.at_ns,
                e.seq,
                format!("{:?}", e.level).to_lowercase(),
                e.category,
                e.message
            ));
        }
        out
    }
}

/// The shared mailbox between one server's stall detector and its
/// readers (tests, the bench rig, the future view-change trigger).
#[derive(Debug, Default)]
pub struct StallLog {
    stalls: Mutex<Vec<Stall>>,
    dumps: Mutex<Vec<FlightRecorder>>,
}

impl StallLog {
    pub fn new() -> Self {
        StallLog::default()
    }

    /// Records a stall and its flight-recorder dump.
    pub fn report(&self, dump: FlightRecorder) {
        self.stalls
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(dump.stall);
        self.dumps
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(dump);
    }

    /// Every stall reported so far, in detection order.
    pub fn stalls(&self) -> Vec<Stall> {
        self.stalls
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Every flight-recorder dump so far, in detection order.
    pub fn dumps(&self) -> Vec<FlightRecorder> {
        self.dumps.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_log_round_trips() {
        let log = StallLog::new();
        assert!(log.stalls().is_empty());
        log.report(FlightRecorder {
            stall: Stall {
                leader: 2,
                height: 17,
                waited_ms: 120,
            },
            at_ns: 5,
            events: Vec::new(),
            metrics: MetricsSnapshot::default(),
            notes: vec!["pending=3".into()],
        });
        let stalls = log.stalls();
        assert_eq!(stalls.len(), 1);
        assert_eq!(stalls[0].height, 17);
        let dump = &log.dumps()[0];
        assert!(dump.render().contains("height 17"));
        assert!(dump.render().contains("pending=3"));
    }
}
