//! Single-word atomic metrics: [`Counter`] and [`Gauge`].

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};

/// A monotonically increasing counter. Wait-free.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A signed level with a high-watermark (e.g. the WAL pipeline's queue
/// depth). Wait-free.
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
    max: AtomicI64,
}

impl Gauge {
    pub fn new() -> Self {
        Gauge::default()
    }

    #[inline]
    pub fn add(&self, delta: i64) {
        let now = self.value.fetch_add(delta, Relaxed) + delta;
        if delta > 0 {
            self.max.fetch_max(now, Relaxed);
        }
    }

    pub fn set(&self, v: i64) {
        self.value.store(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Relaxed)
    }

    /// Highest level ever observed.
    pub fn high_watermark(&self) -> i64 {
        self.max.load(Relaxed)
    }

    pub fn snapshot(&self) -> GaugeSnapshot {
        GaugeSnapshot {
            value: self.get(),
            max: self.high_watermark(),
        }
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({}, max {})", self.get(), self.high_watermark())
    }
}

/// A point-in-time copy of a [`Gauge`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Current level.
    pub value: i64,
    /// Highest level ever observed.
    pub max: i64,
}

impl GaugeSnapshot {
    /// Cross-server aggregation: levels add, watermarks take the max.
    pub fn merge(&mut self, other: &GaugeSnapshot) {
        self.value += other.value;
        self.max = self.max.max(other.max);
    }
}
