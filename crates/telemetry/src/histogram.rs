//! The lock-free log-bucketed histogram.
//!
//! Values are bucketed by octave with [`SUB_BITS`] sub-buckets per
//! octave (HdrHistogram-style): values below `2^SUB_BITS` are exact,
//! everything above lands in a bucket whose width is `1/2^SUB_BITS` of
//! its magnitude — a bounded ≤ 12.5 % relative error at `SUB_BITS = 3`,
//! good enough for latency percentiles while keeping the whole
//! histogram a flat array of [`NUM_BUCKETS`] atomics (~4 KiB).
//!
//! Recording is wait-free (`fetch_add`/`fetch_min`/`fetch_max`,
//! `Relaxed`). A [`HistogramSnapshot`] derives its total count from the
//! bucket array it read — never from a separately-raced counter — so a
//! snapshot taken mid-storm is always *internally* consistent: its
//! percentiles are computed over exactly the samples it counted.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Sub-bucket resolution: `1 << SUB_BITS` buckets per octave.
pub const SUB_BITS: u32 = 3;
const SUB_COUNT: usize = 1 << SUB_BITS;
const SUB_MASK: u64 = (SUB_COUNT - 1) as u64;

/// Total bucket count covering the full `u64` range: one exact group
/// of `2^SUB_BITS` values plus `64 − SUB_BITS` octave groups.
pub const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) << SUB_BITS) + SUB_COUNT;

/// A lock-free log-bucketed histogram (see module docs).
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket `value` lands in.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value < SUB_COUNT as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let group = (msb - SUB_BITS + 1) as usize;
        (group << SUB_BITS) + ((value >> (msb - SUB_BITS)) & SUB_MASK) as usize
    }

    /// Smallest value mapping to bucket `index`.
    #[inline]
    pub fn bucket_lower(index: usize) -> u64 {
        let group = index >> SUB_BITS;
        let sub = (index & SUB_MASK as usize) as u64;
        if group == 0 {
            return sub;
        }
        ((1u64 << SUB_BITS) + sub) << (group - 1)
    }

    /// Number of distinct values mapping to bucket `index`.
    #[inline]
    pub fn bucket_width(index: usize) -> u64 {
        let group = index >> SUB_BITS;
        if group == 0 {
            1
        } else {
            1u64 << (group - 1)
        }
    }

    /// The value a bucket reports as (its midpoint; exact for the
    /// width-1 buckets below `2^SUB_BITS`).
    #[inline]
    pub fn bucket_value(index: usize) -> u64 {
        Self::bucket_lower(index) + (Self::bucket_width(index) - 1) / 2
    }

    /// Records one sample. Wait-free.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        self.min.fetch_min(value, Relaxed);
        self.max.fetch_max(value, Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Folds another histogram's current contents into this one.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Relaxed);
            if n > 0 {
                mine.fetch_add(n, Relaxed);
            }
        }
        self.sum.fetch_add(other.sum.load(Relaxed), Relaxed);
        self.min.fetch_min(other.min.load(Relaxed), Relaxed);
        self.max.fetch_max(other.max.load(Relaxed), Relaxed);
    }

    /// A point-in-time copy. The count is derived from the buckets
    /// actually read, so the snapshot's percentiles are internally
    /// consistent even while recorders are running.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Relaxed)).collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Relaxed),
            min: self.min.load(Relaxed),
            max: self.max.load(Relaxed),
            buckets,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for Histogram {
    fn clone(&self) -> Self {
        let copy = Histogram::new();
        copy.merge(self);
        copy
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        write!(
            f,
            "Histogram {{ count: {}, sum: {}, p50: {}, p99: {} }}",
            snap.count,
            snap.sum,
            snap.percentile(50.0),
            snap.percentile(99.0)
        )
    }
}

/// A point-in-time, mergeable copy of a [`Histogram`].
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Samples recorded (sum of the bucket counts read).
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty — use
    /// [`HistogramSnapshot::min`]).
    min: u64,
    /// Largest recorded value.
    max: u64,
    buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; NUM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at percentile `p` (0–100), reported at bucket
    /// midpoint resolution (≤ 12.5 % relative error; exact below
    /// `2^SUB_BITS`).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64)
            .ceil()
            .clamp(1.0, self.count as f64) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Histogram::bucket_value(i);
            }
        }
        Histogram::bucket_value(NUM_BUCKETS - 1)
    }

    /// Folds `other` into `self` (bucket-wise).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(representative value, count)`, ascending —
    /// the compact form the bench driver prints a staleness histogram
    /// in.
    pub fn entries(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Histogram::bucket_value(i), c))
            .collect()
    }

    /// Count in the bucket `value` maps to (bucket-boundary tests).
    pub fn count_at(&self, value: u64) -> u64 {
        self.buckets[Histogram::bucket_index(value)]
    }
}
