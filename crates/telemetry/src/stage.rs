//! The commit-round stage taxonomy and the lap timer that tiles a
//! round into contiguous stage segments.
//!
//! The six stages partition one TFCommit round *as observed at the
//! recording server* (the coordinator records all six; a cohort records
//! the three it executes). Because [`Stopwatch::lap_ns`] restarts the
//! clock at every lap, the recorded segments are contiguous by
//! construction — summing the six stage histograms' `sum` fields
//! reproduces the measured round latency to within measurement noise,
//! which `pipeline_stress` asserts.

use std::sync::Arc;
use std::time::Instant;

use crate::histogram::Histogram;
use crate::registry::Registry;

/// One stage of a commit round, in pipeline order. See
/// `docs/telemetry.md` for what each covers at coordinator vs cohort.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Selecting a non-conflicting batch from the pending queue.
    BatchForm,
    /// OCC validation: `GetVote` broadcast, the local cohort vote
    /// (validate + speculative root), and vote collection.
    OccValidate,
    /// Applying the decided block to the authenticated shard (Merkle
    /// recomputation) and the surrounding ledger/exec bookkeeping.
    MerkleUpdate,
    /// Challenge distribution, response collection and collective-
    /// signature assembly + verification.
    CosiAssemble,
    /// The durability hand-off: inline WAL append + fsync, or the
    /// pipeline submit (the asynchronous fsync itself is reported
    /// separately as `durability.fsync_ns`).
    WalFsync,
    /// Outcome delivery (or its registration for deferred, fsync-
    /// ordered delivery).
    OutcomeSend,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::BatchForm,
        Stage::OccValidate,
        Stage::MerkleUpdate,
        Stage::CosiAssemble,
        Stage::WalFsync,
        Stage::OutcomeSend,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Stage::BatchForm => "batch_form",
            Stage::OccValidate => "occ_validate",
            Stage::MerkleUpdate => "merkle_update",
            Stage::CosiAssemble => "cosi_assemble",
            Stage::WalFsync => "wal_fsync",
            Stage::OutcomeSend => "outcome_send",
        }
    }

    /// The registry name of this stage's latency histogram.
    pub fn metric_name(self) -> &'static str {
        match self {
            Stage::BatchForm => "commit.stage.batch_form",
            Stage::OccValidate => "commit.stage.occ_validate",
            Stage::MerkleUpdate => "commit.stage.merkle_update",
            Stage::CosiAssemble => "commit.stage.cosi_assemble",
            Stage::WalFsync => "commit.stage.wal_fsync",
            Stage::OutcomeSend => "commit.stage.outcome_send",
        }
    }
}

/// The six per-stage latency histograms (nanoseconds), resolved once
/// from a [`Registry`] so recording is handle-indexed and lock-free.
#[derive(Clone, Debug)]
pub struct StageTimers {
    hists: [Arc<Histogram>; 6],
}

impl StageTimers {
    pub fn new(registry: &Registry) -> Self {
        StageTimers {
            hists: Stage::ALL.map(|s| registry.histogram(s.metric_name())),
        }
    }

    #[inline]
    pub fn record(&self, stage: Stage, nanos: u64) {
        self.hists[stage as usize].record(nanos);
    }

    pub fn histogram(&self, stage: Stage) -> &Arc<Histogram> {
        &self.hists[stage as usize]
    }
}

/// A lap timer: each [`Stopwatch::lap_ns`] returns the nanoseconds
/// since the previous lap (or start) and restarts the clock, so
/// consecutive laps tile the elapsed time with no gaps.
pub struct Stopwatch {
    last: Instant,
}

impl Stopwatch {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Stopwatch {
            last: Instant::now(),
        }
    }

    /// Nanoseconds since the previous lap; restarts the clock.
    #[inline]
    pub fn lap_ns(&mut self) -> u64 {
        let now = Instant::now();
        let ns = now
            .duration_since(self.last)
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        self.last = now;
        ns
    }
}
