//! fides-trace: sampled causal spans across the commit pipeline.
//!
//! Aggregate histograms (PR 7) answer "what is the p99?"; spans answer
//! "where did *this* transaction spend it?". A client samples 1-in-N
//! commits (`FIDES_TRACE_SAMPLE`), allocates a [`TraceContext`] and
//! attaches it to the `EndTxn` envelope; every hop that does work on
//! the transaction's behalf — batch selection, OCC validation, Merkle
//! update, CoSi vote round-trips, the WAL writer's covering fsync, the
//! outcome fan-out — records a [`Span`] into its process-local
//! [`SpanSink`] (same ring discipline as the event log: one
//! `fetch_add` claims a slot, a per-slot lock fills it). A trace
//! assembler then stitches the per-node span files into one tree by
//! `trace_id`, and [`to_chrome_json`] renders Chrome trace-event JSON
//! that opens directly in `chrome://tracing` / Perfetto.
//!
//! Span ids are globally unique without coordination: each sink is
//! built with a node *tag* (server index, or `CLIENT_TAG_BASE + id`
//! for clients) occupying the high 16 bits, a local counter the low
//! 48. Timestamps are nanoseconds on the **process-wide epoch**
//! ([`now_ns`]) shared with the event log, so flight-recorder dumps
//! and spans line up on one timebase. Cross-*process* skew is not
//! corrected — today's cluster is in-process (one epoch), and the
//! assembler only orders siblings, never subtracts timestamps taken on
//! different machines.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The process-wide monotonic epoch every `*_ns` timestamp in this
/// crate is measured against (spans, events, flight recorder).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide epoch (first use anywhere in
/// telemetry). Monotonic; shared by spans and [`crate::EventLog`].
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Node tags `>= CLIENT_TAG_BASE` denote clients (tag − base = client
/// id); below it, server indices. Tags live in the top 16 bits of
/// span ids, so they must stay under `1 << 16`.
pub const CLIENT_TAG_BASE: u64 = 1 << 12;

const TAG_SHIFT: u32 = 48;

/// The causal context a sampled transaction carries on the wire: which
/// trace it belongs to and which span caused the current message.
/// Unsampled traffic carries none — signed bytes are unchanged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    pub trace_id: u64,
    pub parent_span: u64,
}

/// One timed unit of work attributed to a trace. `parent == 0` marks
/// a root (the client's commit round-trip).
#[derive(Clone, Debug)]
pub struct Span {
    pub trace_id: u64,
    /// Globally unique: node tag in the top 16 bits, local counter
    /// below. Never 0.
    pub span_id: u64,
    /// The causing span's id, or 0 for a root.
    pub parent: u64,
    /// Static name, e.g. `"commit.stage.occ_validate"`.
    pub name: &'static str,
    /// The recording node's tag (see [`CLIENT_TAG_BASE`]).
    pub node: u64,
    pub start_ns: u64,
    pub end_ns: u64,
    /// Free numeric annotation: block height for round/stage spans,
    /// transaction handle for client spans, 0 when unused.
    pub aux: u64,
}

impl Span {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A bounded lock-free ring of the newest [`Span`]s, one per node
/// (ring discipline shared with [`crate::EventLog`]).
pub struct SpanSink {
    tag: u64,
    next_id: AtomicU64,
    next_slot: AtomicU64,
    slots: Vec<Mutex<Option<(u64, Span)>>>,
}

impl SpanSink {
    /// # Panics
    ///
    /// If `capacity` is 0 or `tag` does not fit in 16 bits.
    pub fn new(tag: u64, capacity: usize) -> Self {
        assert!(capacity > 0, "span ring needs at least one slot");
        assert!(tag < (1 << 16), "node tag must fit in 16 bits");
        SpanSink {
            tag,
            next_id: AtomicU64::new(0),
            next_slot: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// The sink's node tag.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Allocates a fresh span id (tag ‖ counter; never 0). Also used
    /// for trace ids — any id from any sink is cluster-unique.
    pub fn next_id(&self) -> u64 {
        (self.tag << TAG_SHIFT) | (self.next_id.fetch_add(1, Relaxed) + 1)
    }

    /// Records a finished span (overwriting the oldest once full).
    pub fn record(&self, span: Span) {
        let seq = self.next_slot.fetch_add(1, Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
        // A racing wrap may have written a newer seq; keep the newest.
        if guard.as_ref().is_none_or(|(held, _)| *held < seq) {
            *guard = Some((seq, span));
        }
    }

    /// Convenience: record a span closing **now**.
    #[allow(clippy::too_many_arguments)]
    pub fn close(
        &self,
        trace_id: u64,
        span_id: u64,
        parent: u64,
        name: &'static str,
        start_ns: u64,
        aux: u64,
    ) {
        self.record(Span {
            trace_id,
            span_id,
            parent,
            name,
            node: self.tag,
            start_ns,
            end_ns: now_ns(),
            aux,
        });
    }

    /// Total spans ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.next_slot.load(Relaxed)
    }

    /// The retained spans, in recording order.
    pub fn snapshot(&self) -> Vec<Span> {
        let mut spans: Vec<(u64, Span)> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect();
        spans.sort_by_key(|(seq, _)| *seq);
        spans.into_iter().map(|(_, s)| s).collect()
    }
}

impl std::fmt::Debug for SpanSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SpanSink {{ tag: {}, capacity: {}, recorded: {} }}",
            self.tag,
            self.slots.len(),
            self.recorded()
        )
    }
}

/// The 1-in-N head sampling decision, taken once per transaction at
/// the client (everything downstream keys off the envelope's context).
#[derive(Debug)]
pub struct Sampler {
    every: u64,
    count: AtomicU64,
}

impl Sampler {
    /// `every == 0` disables sampling, `1` traces everything, `N`
    /// traces 1-in-N.
    pub fn new(every: u64) -> Self {
        Sampler {
            every,
            count: AtomicU64::new(0),
        }
    }

    /// Reads `FIDES_TRACE_SAMPLE` (unset, empty, `0`, or unparsable →
    /// off).
    pub fn from_env() -> Self {
        let every = std::env::var("FIDES_TRACE_SAMPLE")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(0);
        Sampler::new(every)
    }

    pub fn enabled(&self) -> bool {
        self.every != 0
    }

    /// Should *this* transaction be traced? Deterministic round-robin
    /// (first of every N), not random — reproducible under test.
    pub fn sample(&self) -> bool {
        self.every != 0 && self.count.fetch_add(1, Relaxed).is_multiple_of(self.every)
    }
}

/// One assembled trace: every retained span sharing a `trace_id`,
/// sorted by start time.
#[derive(Clone, Debug)]
pub struct TraceTree {
    pub trace_id: u64,
    pub spans: Vec<Span>,
}

impl TraceTree {
    /// The root span (`parent == 0`), if retained.
    pub fn root(&self) -> Option<&Span> {
        self.spans.iter().find(|s| s.parent == 0)
    }

    /// Direct children of `span_id`, in start order.
    pub fn children(&self, span_id: u64) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.parent == span_id).collect()
    }

    /// First retained span with `name`.
    pub fn span(&self, name: &str) -> Option<&Span> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Wall-clock extent: root duration when the root survived the
    /// ring, else the retained spans' envelope.
    pub fn duration_ns(&self) -> u64 {
        if let Some(root) = self.root() {
            return root.duration_ns();
        }
        let start = self.spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
        let end = self.spans.iter().map(|s| s.end_ns).max().unwrap_or(0);
        end.saturating_sub(start)
    }
}

/// Stitches per-node span dumps into one tree per `trace_id`, ordered
/// by trace start time.
pub fn assemble(spans: &[Span]) -> Vec<TraceTree> {
    let mut by_trace: std::collections::BTreeMap<u64, Vec<Span>> = Default::default();
    for span in spans {
        by_trace
            .entry(span.trace_id)
            .or_default()
            .push(span.clone());
    }
    let mut trees: Vec<TraceTree> = by_trace
        .into_iter()
        .map(|(trace_id, mut spans)| {
            spans.sort_by_key(|s| (s.start_ns, s.span_id));
            TraceTree { trace_id, spans }
        })
        .collect();
    trees.sort_by_key(|t| t.spans.first().map_or(0, |s| s.start_ns));
    trees
}

/// Renders spans as Chrome trace-event JSON (complete `"X"` events,
/// microsecond timestamps) — open in `chrome://tracing` or
/// <https://ui.perfetto.dev>. `pid` is the node tag, `tid` the trace,
/// so one row per node stacks each traced transaction's spans.
pub fn to_chrome_json(spans: &[Span]) -> String {
    let mut out = String::from("{\"traceEvents\": [");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        // Integer-nanosecond precision survives the µs float: 2^53 ns
        // of epoch headroom is ~104 days.
        let ts_us = s.start_ns as f64 / 1000.0;
        let dur_us = s.duration_ns().max(1) as f64 / 1000.0;
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"cat\": \"fides\", \"ph\": \"X\", \
             \"ts\": {ts_us:.3}, \"dur\": {dur_us:.3}, \
             \"pid\": {}, \"tid\": {}, \
             \"args\": {{\"trace_id\": \"{:#x}\", \"span_id\": \"{:#x}\", \
             \"parent\": \"{:#x}\", \"aux\": {}}}}}",
            s.name, s.node, s.trace_id, s.trace_id, s.span_id, s.parent, s.aux
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, id: u64, parent: u64, start: u64, end: u64) -> Span {
        Span {
            trace_id: trace,
            span_id: id,
            parent,
            name: "t",
            node: 1,
            start_ns: start,
            end_ns: end,
            aux: 0,
        }
    }

    #[test]
    fn sink_ids_are_namespaced_and_nonzero() {
        let a = SpanSink::new(3, 8);
        let b = SpanSink::new(4, 8);
        let ids: Vec<u64> = (0..4).map(|_| a.next_id()).collect();
        assert!(ids.iter().all(|&id| id != 0));
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert_ne!(a.next_id() >> TAG_SHIFT, b.next_id() >> TAG_SHIFT);
    }

    #[test]
    fn sink_keeps_newest_on_wrap() {
        let sink = SpanSink::new(1, 4);
        for i in 0..10 {
            sink.record(span(7, i + 1, 0, i, i + 1));
        }
        let kept = sink.snapshot();
        assert_eq!(kept.len(), 4);
        assert_eq!(
            kept.iter().map(|s| s.span_id).collect::<Vec<_>>(),
            vec![7, 8, 9, 10]
        );
        assert_eq!(sink.recorded(), 10);
    }

    #[test]
    fn sampler_is_one_in_n() {
        let s = Sampler::new(4);
        let hits = (0..16).filter(|_| s.sample()).count();
        assert_eq!(hits, 4);
        assert!(!Sampler::new(0).sample());
        assert!(Sampler::new(1).sample());
    }

    #[test]
    fn assemble_groups_and_orders() {
        let spans = vec![
            span(2, 20, 0, 50, 90),
            span(1, 11, 10, 5, 9),
            span(1, 10, 0, 1, 10),
        ];
        let trees = assemble(&spans);
        assert_eq!(trees.len(), 2);
        assert_eq!(trees[0].trace_id, 1);
        assert_eq!(trees[0].root().unwrap().span_id, 10);
        assert_eq!(trees[0].children(10)[0].span_id, 11);
        assert_eq!(trees[0].duration_ns(), 9);
        assert_eq!(trees[1].duration_ns(), 40);
    }

    #[test]
    fn chrome_json_shape() {
        let json = to_chrome_json(&[span(1, 2, 0, 1000, 3000)]);
        assert!(json.starts_with("{\"traceEvents\": ["));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"ts\": 1.000"));
        assert!(json.contains("\"dur\": 2.000"));
        assert!(json.ends_with("]}"));
    }
}
