//! String-named metric handles and the mergeable cluster snapshot.
//!
//! Registration (name → handle) takes a mutex once per metric; the
//! returned `Arc` handles record lock-free thereafter. Names follow
//! `plane.component.metric` (see `docs/telemetry.md`).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::metrics::{Counter, Gauge, GaugeSnapshot};

#[derive(Clone, Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics (one per server, plus one for the
/// bench driver's client-side observations).
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut metrics = self.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Convenience: render the current state in Prometheus text
    /// exposition format (see [`MetricsSnapshot::to_prometheus`]).
    pub fn to_prometheus(&self) -> String {
        self.snapshot().to_prometheus()
    }

    /// A point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.lock();
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.snapshot());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

/// A mergeable point-in-time copy of a [`Registry`] — what one server
/// exposes and the cluster aggregates.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, GaugeSnapshot>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Folds another server's snapshot into this one: counters and
    /// histograms add, gauge levels add with watermark max.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, n) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += n;
        }
        for (name, g) in &other.gauges {
            self.gauges.entry(name.clone()).or_default().merge(g);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram snapshot (empty when absent).
    pub fn histogram(&self, name: &str) -> HistogramSnapshot {
        self.histograms.get(name).cloned().unwrap_or_default()
    }

    /// A compact JSON rendering: counters verbatim, gauges as
    /// `{value, max}`, histograms as count/sum/min/max/p50/p95/p99.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        let mut field = |out: &mut String, name: &str, value: String| {
            if !std::mem::take(&mut first) {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{name}\": {value}"));
        };
        for (name, n) in &self.counters {
            field(&mut out, name, n.to_string());
        }
        for (name, g) in &self.gauges {
            field(
                &mut out,
                name,
                format!("{{\"value\": {}, \"max\": {}}}", g.value, g.max),
            );
        }
        for (name, h) in &self.histograms {
            field(
                &mut out,
                name,
                format!(
                    "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                     \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                    h.count,
                    h.sum,
                    h.min(),
                    h.max(),
                    h.percentile(50.0),
                    h.percentile(95.0),
                    h.percentile(99.0)
                ),
            );
        }
        out.push('}');
        out
    }

    /// Prometheus text exposition format (version 0.0.4): counters and
    /// gauges as single samples (a gauge's watermark gets a `_max`
    /// companion), histograms as summaries with p50/p95/p99 quantile
    /// labels plus `_sum`/`_count`. Metric names have `.` and `-`
    /// folded to `_` to satisfy the Prometheus grammar.
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| match c {
                    'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | ':' => c,
                    _ => '_',
                })
                .collect()
        }
        let mut out = String::new();
        for (name, n) in &self.counters {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {n}\n"));
        }
        for (name, g) in &self.gauges {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.value));
            out.push_str(&format!("# TYPE {name}_max gauge\n{name}_max {}\n", g.max));
        }
        for (name, h) in &self.histograms {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (q, p) in [("0.5", 50.0), ("0.95", 95.0), ("0.99", 99.0)] {
                out.push_str(&format!("{name}{{quantile=\"{q}\"}} {}\n", h.percentile(p)));
            }
            out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum, h.count));
        }
        out
    }
}
