//! Telemetry invariants: histogram bucket-boundary exactness, snapshot
//! consistency under concurrent recorders, ring-buffer wraparound
//! ordering, and registry merge semantics.

use std::sync::Arc;

use fides_telemetry::{
    EventLog, Histogram, HistogramSnapshot, Level, MetricsSnapshot, Registry, Stage, StageTimers,
    Stopwatch, NUM_BUCKETS, SUB_BITS,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Bucket-boundary exactness.
// ---------------------------------------------------------------------

#[test]
fn buckets_below_first_octave_are_exact() {
    for v in 0..(1u64 << SUB_BITS) {
        let idx = Histogram::bucket_index(v);
        assert_eq!(idx, v as usize);
        assert_eq!(Histogram::bucket_lower(idx), v);
        assert_eq!(Histogram::bucket_width(idx), 1);
        assert_eq!(Histogram::bucket_value(idx), v);
    }
}

#[test]
fn bucket_boundaries_tile_the_u64_range() {
    // Every bucket starts exactly where the previous one ends.
    let mut expected_lower = 0u64;
    for idx in 0..NUM_BUCKETS {
        assert_eq!(
            Histogram::bucket_lower(idx),
            expected_lower,
            "bucket {idx} does not start at the previous bucket's end"
        );
        expected_lower = expected_lower.wrapping_add(Histogram::bucket_width(idx));
    }
    // The last bucket ends exactly at u64::MAX (lower + width wraps to 0).
    assert_eq!(expected_lower, 0, "buckets do not cover the full u64 range");
}

#[test]
fn boundary_values_land_in_their_own_bucket() {
    for idx in 0..NUM_BUCKETS {
        let lower = Histogram::bucket_lower(idx);
        let upper = lower + (Histogram::bucket_width(idx) - 1);
        assert_eq!(Histogram::bucket_index(lower), idx, "lower bound of {idx}");
        assert_eq!(Histogram::bucket_index(upper), idx, "upper bound of {idx}");
    }
    assert_eq!(Histogram::bucket_index(u64::MAX), NUM_BUCKETS - 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]
    #[test]
    fn bucket_relative_error_is_bounded(v in any::<u64>()) {
        let idx = Histogram::bucket_index(v);
        let lower = Histogram::bucket_lower(idx);
        let width = Histogram::bucket_width(idx);
        prop_assert!(lower <= v);
        prop_assert!(v - lower < width);
        // Width ≤ lower / 2^SUB_BITS for the octave groups: ≤ 12.5 %
        // relative error at SUB_BITS = 3.
        if idx >= (1 << SUB_BITS) {
            prop_assert!(width <= lower >> SUB_BITS);
        }
    }

    #[test]
    fn percentile_brackets_recorded_values(values in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let mut values = values;
        values.sort_unstable();
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        prop_assert_eq!(snap.min(), values[0]);
        prop_assert_eq!(snap.max(), *values.last().unwrap());
        for p in [50.0, 95.0, 99.0] {
            let reported = snap.percentile(p);
            // The reported value is the bucket midpoint of a recorded
            // rank: bounded by the true extremes widened by one bucket.
            let lo_idx = Histogram::bucket_index(values[0]);
            let hi_idx = Histogram::bucket_index(*values.last().unwrap());
            prop_assert!(reported >= Histogram::bucket_lower(lo_idx));
            prop_assert!(
                reported < Histogram::bucket_lower(hi_idx) + Histogram::bucket_width(hi_idx)
            );
        }
    }
}

// ---------------------------------------------------------------------
// Snapshot consistency under concurrent recorders.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn concurrent_snapshots_are_internally_consistent(
        per_thread in proptest::collection::vec(
            proptest::collection::vec(0u64..100_000, 50..200),
            2..5,
        ),
    ) {
        let hist = Arc::new(Histogram::new());
        let expected_count: u64 = per_thread.iter().map(|v| v.len() as u64).sum();
        let expected_sum: u64 = per_thread.iter().flatten().sum();

        let recorders: Vec<_> = per_thread
            .into_iter()
            .map(|values| {
                let hist = Arc::clone(&hist);
                std::thread::spawn(move || {
                    for v in values {
                        hist.record(v);
                    }
                })
            })
            .collect();
        // Snapshot while recorders are running: every snapshot must be
        // internally consistent (count = Σ buckets, by construction
        // checked via percentile never exceeding the global max seen).
        let snapshotter = {
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                // No recorded value exceeds 100_000, so no percentile
                // may exceed that value's bucket upper bound.
                let top = Histogram::bucket_index(100_000);
                let bound = Histogram::bucket_lower(top) + Histogram::bucket_width(top) - 1;
                let mut last_count = 0u64;
                for _ in 0..100 {
                    let snap = hist.snapshot();
                    assert!(snap.count >= last_count, "snapshot count went backwards");
                    assert!(snap.percentile(100.0) <= bound);
                    last_count = snap.count;
                }
            })
        };
        for r in recorders {
            r.join().unwrap();
        }
        snapshotter.join().unwrap();

        let final_snap = hist.snapshot();
        prop_assert_eq!(final_snap.count, expected_count);
        prop_assert_eq!(final_snap.sum, expected_sum);
    }
}

// ---------------------------------------------------------------------
// Ring-buffer wraparound ordering.
// ---------------------------------------------------------------------

#[test]
fn event_ring_wraparound_keeps_newest_in_order() {
    let ring = EventLog::new(8);
    for i in 0..20 {
        ring.record(Level::Info, "test", format!("event-{i}"));
    }
    assert_eq!(ring.recorded(), 20);
    let events = ring.snapshot();
    assert_eq!(events.len(), 8, "ring retains exactly its capacity");
    let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, (12..20).collect::<Vec<u64>>());
    for e in &events {
        assert_eq!(e.message, format!("event-{}", e.seq));
    }
}

#[test]
fn event_ring_concurrent_writers_keep_total_order() {
    let ring = Arc::new(EventLog::new(64));
    let writers: Vec<_> = (0..4)
        .map(|t| {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..100 {
                    ring.record(Level::Debug, "race", format!("t{t}-{i}"));
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    assert_eq!(ring.recorded(), 400);
    let events = ring.snapshot();
    assert_eq!(events.len(), 64);
    // Strictly ascending, all from the newest window.
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq);
    }
    assert!(events.iter().all(|e| e.seq >= 400 - 64));
}

// ---------------------------------------------------------------------
// Registry, stages, merge.
// ---------------------------------------------------------------------

#[test]
fn registry_handles_are_shared_and_snapshots_merge() {
    let a = Registry::new();
    a.counter("commit.rounds").add(3);
    a.counter("commit.rounds").add(2); // same underlying counter
    a.gauge("durability.queue_depth").add(5);
    a.gauge("durability.queue_depth").add(-2);
    a.histogram("durability.fsync_ns").record(1000);

    let b = Registry::new();
    b.counter("commit.rounds").add(10);
    b.gauge("durability.queue_depth").add(1);
    b.histogram("durability.fsync_ns").record(3000);

    let mut merged = MetricsSnapshot::default();
    merged.merge(&a.snapshot());
    merged.merge(&b.snapshot());
    assert_eq!(merged.counter("commit.rounds"), 15);
    let gauge = merged.gauges["durability.queue_depth"];
    assert_eq!(gauge.value, 4);
    assert_eq!(gauge.max, 5);
    let hist = merged.histogram("durability.fsync_ns");
    assert_eq!(hist.count, 2);
    assert_eq!(hist.sum, 4000);
    let json = merged.to_json();
    assert!(json.contains("\"commit.rounds\": 15"), "{json}");
    assert!(json.contains("\"count\": 2"), "{json}");
}

#[test]
fn stage_timers_tile_a_stopwatch() {
    let registry = Registry::new();
    let timers = StageTimers::new(&registry);
    let mut watch = Stopwatch::new();
    let t0 = std::time::Instant::now();
    for stage in Stage::ALL {
        std::thread::sleep(std::time::Duration::from_millis(2));
        timers.record(stage, watch.lap_ns());
    }
    let total = t0.elapsed().as_nanos() as u64;
    let snap = registry.snapshot();
    let staged: u64 = Stage::ALL
        .iter()
        .map(|s| snap.histogram(s.metric_name()).sum)
        .sum();
    for stage in Stage::ALL {
        assert_eq!(snap.histogram(stage.metric_name()).count, 1);
    }
    // Laps are contiguous: the staged sum reproduces the wall clock to
    // within the final lap-to-elapsed measurement gap.
    let tolerance = total / 5 + 1_000_000;
    assert!(
        staged <= total && total - staged < tolerance,
        "staged {staged} vs total {total}"
    );
}

#[test]
fn empty_histogram_snapshot_is_sane() {
    let snap = HistogramSnapshot::default();
    assert!(snap.is_empty());
    assert_eq!(snap.percentile(50.0), 0);
    assert_eq!(snap.min(), 0);
    assert_eq!(snap.max(), 0);
    assert_eq!(snap.mean(), 0.0);
    assert!(snap.entries().is_empty());
}
