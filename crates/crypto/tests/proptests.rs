//! Property-based tests for the cryptographic substrate.

use fides_crypto::cosi::{self, Witness};
use fides_crypto::field::FieldElement;
use fides_crypto::merkle::{hash_leaf, MerkleTree};
use fides_crypto::point::Point;
use fides_crypto::scalar::Scalar;
use fides_crypto::schnorr::{self, BatchItem, KeyPair, PublicKey, Signature};
use fides_crypto::sha256::Sha256;
use proptest::prelude::*;

fn arb_fe() -> impl Strategy<Value = FieldElement> {
    any::<[u8; 32]>().prop_map(|b| {
        // Clear the top byte so the value is always canonical.
        let mut b = b;
        b[0] = 0;
        FieldElement::from_be_bytes(&b).expect("top byte cleared; below p")
    })
}

fn arb_scalar() -> impl Strategy<Value = Scalar> {
    any::<[u8; 32]>().prop_map(|b| Scalar::from_be_bytes_reduced(&b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn field_add_commutes(a in arb_fe(), b in arb_fe()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn field_mul_commutes(a in arb_fe(), b in arb_fe()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn field_add_associates(a in arb_fe(), b in arb_fe(), c in arb_fe()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn field_mul_associates(a in arb_fe(), b in arb_fe(), c in arb_fe()) {
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn field_distributes(a in arb_fe(), b in arb_fe(), c in arb_fe()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn field_sub_is_add_neg(a in arb_fe(), b in arb_fe()) {
        prop_assert_eq!(a - b, a + (-b));
    }

    #[test]
    fn field_inverse_law(a in arb_fe()) {
        if !a.is_zero() {
            prop_assert_eq!(a * a.invert().unwrap(), FieldElement::ONE);
        }
    }

    #[test]
    fn field_square_matches_mul(a in arb_fe()) {
        prop_assert_eq!(a.square(), a * a);
    }

    #[test]
    fn field_bytes_roundtrip(a in arb_fe()) {
        prop_assert_eq!(FieldElement::from_be_bytes(&a.to_be_bytes()), Some(a));
    }

    #[test]
    fn scalar_ring_laws(a in arb_scalar(), b in arb_scalar(), c in arb_scalar()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a + (-a), Scalar::ZERO);
    }

    #[test]
    fn scalar_inverse_law(a in arb_scalar()) {
        if !a.is_zero() {
            prop_assert_eq!(a * a.invert().unwrap(), Scalar::ONE);
        }
    }
}

proptest! {
    // Group operations are slower; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn scalar_mul_homomorphism(a in arb_scalar(), b in arb_scalar()) {
        let g = Point::generator();
        prop_assert_eq!(g * a + g * b, g * (a + b));
    }

    #[test]
    fn windowed_mul_matches_binary(k in arb_scalar()) {
        let g = Point::generator();
        prop_assert_eq!(g.mul_scalar(&k), g.mul_scalar_binary(&k));
    }

    #[test]
    fn point_compression_roundtrip(k in arb_scalar()) {
        let p = Point::generator() * k;
        let enc = p.to_compressed_bytes();
        prop_assert_eq!(Point::from_compressed_bytes(&enc).unwrap(), p);
    }

    #[test]
    fn schnorr_roundtrip(seed in any::<[u8; 16]>(), msg in proptest::collection::vec(any::<u8>(), 0..256)) {
        let kp = KeyPair::from_seed(&seed);
        let sig = kp.sign(&msg);
        prop_assert!(kp.public_key().verify(&msg, &sig));
    }

    #[test]
    fn schnorr_rejects_bitflip(seed in any::<[u8; 8]>(), msg in proptest::collection::vec(any::<u8>(), 1..64), flip in 0usize..64) {
        let kp = KeyPair::from_seed(&seed);
        let sig = kp.sign(&msg);
        let mut tampered = msg.clone();
        let idx = flip % tampered.len();
        tampered[idx] ^= 1;
        prop_assert!(!kp.public_key().verify(&tampered, &sig));
    }

    #[test]
    fn cosi_round_verifies(n in 1usize..6, record in proptest::collection::vec(any::<u8>(), 1..64)) {
        let keys: Vec<KeyPair> = (0..n).map(|i| KeyPair::from_seed(&[i as u8, 0xAA])).collect();
        let witnesses: Vec<Witness> =
            keys.iter().map(|k| Witness::commit(k, b"prop-round", &record)).collect();
        let agg = cosi::aggregate_commitments(witnesses.iter().map(|w| w.commitment()));
        let c = cosi::challenge(&agg, &record);
        let sig = cosi::CollectiveSignature::assemble(agg, witnesses.iter().map(|w| w.respond(&c)));
        let pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();
        prop_assert!(sig.verify(&record, &pks));
        // And rejects a different record.
        let mut other = record.clone();
        other[0] ^= 0xFF;
        prop_assert!(!sig.verify(&other, &pks));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn merkle_proofs_sound(
        n in 1usize..64,
        updates in proptest::collection::vec((any::<u16>(), any::<u64>()), 0..16),
    ) {
        let mut data: Vec<Vec<u8>> = (0..n).map(|i| format!("item-{i}").into_bytes()).collect();
        let mut tree = MerkleTree::from_leaves(data.iter().map(|d| hash_leaf(d)).collect());
        for (idx, val) in updates {
            let i = (idx as usize) % n;
            data[i] = val.to_be_bytes().to_vec();
            tree.update_leaf(i, hash_leaf(&data[i]));
        }
        let root = tree.root();
        for (i, d) in data.iter().enumerate() {
            prop_assert!(tree.proof(i).verify(hash_leaf(d), &root));
        }
        // Rebuilding from scratch gives the same root.
        let rebuilt = MerkleTree::from_leaves(data.iter().map(|d| hash_leaf(d)).collect());
        prop_assert_eq!(rebuilt.root(), root);
    }

    #[test]
    fn merkle_rejects_cross_proofs(n in 2usize..64, i in any::<u16>(), j in any::<u16>()) {
        let i = (i as usize) % n;
        let j = (j as usize) % n;
        prop_assume!(i != j);
        let leaves: Vec<_> = (0..n).map(|k| hash_leaf(&(k as u64).to_be_bytes())).collect();
        let tree = MerkleTree::from_leaves(leaves.clone());
        // Proof for i never validates leaf j's data.
        prop_assert!(!tree.proof(i).verify(leaves[j], &tree.root()));
    }

    #[test]
    fn sha256_streaming_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512), split in any::<u16>()) {
        let cut = (split as usize) % (data.len() + 1);
        let mut h = Sha256::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn merkle_batch_update_matches_from_leaves(
        n in 1usize..96,
        updates in proptest::collection::vec((any::<u16>(), any::<u64>()), 0..24),
    ) {
        // The batch update must agree with a from-scratch rebuild on
        // arbitrary (possibly duplicate-index) update sets.
        let mut data: Vec<_> = (0..n).map(|i| hash_leaf(&(i as u64).to_be_bytes())).collect();
        let mut tree = MerkleTree::from_leaves(data.clone());
        let updates: Vec<(usize, _)> = updates
            .into_iter()
            .map(|(idx, val)| ((idx as usize) % n, hash_leaf(&val.to_be_bytes())))
            .collect();
        for &(i, d) in &updates {
            data[i] = d;
        }
        tree.update_leaves(&updates);
        let rebuilt = MerkleTree::from_leaves(data.clone());
        prop_assert_eq!(tree.root(), rebuilt.root());
        // Proofs generated after the batch update still verify.
        for (i, d) in data.iter().enumerate() {
            prop_assert!(tree.proof(i).verify(*d, &tree.root()));
        }
    }
}

/// Builds `n` (key, message, signature) batch items from a seed.
fn build_batch(n: usize, seed: u8) -> (Vec<Vec<u8>>, Vec<(PublicKey, Signature)>) {
    let mut messages = Vec::with_capacity(n);
    let mut signed = Vec::with_capacity(n);
    for i in 0..n {
        let kp = KeyPair::from_seed(&[i as u8, seed, 0x51]);
        let msg = format!("prop batch {seed} message {i}").into_bytes();
        let sig = kp.sign(&msg);
        signed.push((kp.public_key(), sig));
        messages.push(msg);
    }
    (messages, signed)
}

fn as_items<'a>(messages: &'a [Vec<u8>], signed: &[(PublicKey, Signature)]) -> Vec<BatchItem<'a>> {
    signed
        .iter()
        .zip(messages)
        .map(|(&(public_key, signature), message)| BatchItem {
            public_key,
            message,
            signature,
        })
        .collect()
}

proptest! {
    // The verification fast path: batch/Shamir/multi-scalar agreement
    // with the definitional implementations. Group operations are
    // slower; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `verify_batch` accepts iff every individual `verify` accepts —
    /// honest batches of any size, plus batches with a random subset of
    /// corruptions.
    #[test]
    fn batch_accepts_iff_individuals_accept(
        n in 1usize..20,
        seed in any::<u8>(),
        corrupt_mask in any::<u32>(),
    ) {
        let (messages, mut signed) = build_batch(n, seed);
        for (i, entry) in signed.iter_mut().enumerate() {
            if (corrupt_mask >> (i % 32)) & 1 == 1 {
                entry.1.s = entry.1.s + Scalar::ONE;
            }
        }
        let items = as_items(&messages, &signed);
        let individual = items
            .iter()
            .all(|it| it.public_key.verify(it.message, &it.signature));
        prop_assert_eq!(schnorr::verify_batch(&items), individual);
    }

    /// A single corrupted signature in a batch is localized exactly.
    #[test]
    fn corrupted_batch_member_is_localized(
        n in 2usize..24,
        seed in any::<u8>(),
        victim in any::<u16>(),
    ) {
        let (messages, mut signed) = build_batch(n, seed);
        let victim = (victim as usize) % n;
        signed[victim].1.s = signed[victim].1.s + Scalar::ONE;
        let items = as_items(&messages, &signed);
        prop_assert!(!schnorr::verify_batch(&items));
        prop_assert_eq!(schnorr::find_invalid(&items), vec![victim]);
    }

    /// The Strauss–Shamir double-scalar path agrees with composed
    /// single multiplications for arbitrary scalars.
    #[test]
    fn shamir_matches_composed(a in arb_scalar(), b in arb_scalar(), pv in any::<u64>()) {
        prop_assume!(pv != 0);
        let p = Point::generator() * Scalar::from_u64(pv);
        let expect = Point::mul_generator(&a) + p.mul_scalar(&b);
        prop_assert_eq!(Point::mul_shamir_generator(&a, &b, &p), expect);
    }

    /// `multi_mul` agrees with the naive sum of single multiplications,
    /// across the small-batch and column-batched regimes.
    #[test]
    fn multi_mul_matches_naive(
        scalars in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..20),
    ) {
        let terms: Vec<(Scalar, Point)> = scalars
            .iter()
            .map(|&(a, pv)| {
                // Mix widths: even terms get full-width scalars.
                let s = if a % 2 == 0 {
                    Scalar::from_be_bytes_reduced(&[(a % 251) as u8 + 1; 32])
                } else {
                    Scalar::from_u64(a)
                };
                (s, Point::generator() * Scalar::from_u64(pv % 997 + 1))
            })
            .collect();
        let expect = terms
            .iter()
            .fold(Point::IDENTITY, |acc, (s, p)| acc + p.mul_scalar(s));
        prop_assert_eq!(Point::multi_mul(&terms), expect);
    }

    /// CoSi batch verification agrees with per-signature verification
    /// under arbitrary corruption patterns.
    #[test]
    fn cosi_batch_accepts_iff_individuals_accept(
        rounds in 1usize..12,
        n_keys in 1usize..5,
        corrupt_mask in any::<u16>(),
    ) {
        let keys: Vec<KeyPair> = (0..n_keys)
            .map(|i| KeyPair::from_seed(&[i as u8, 0x77, 0x19]))
            .collect();
        let pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();
        let mut records = Vec::new();
        let mut sigs = Vec::new();
        for r in 0..rounds {
            let record = format!("cosi batch round {r}").into_bytes();
            let witnesses: Vec<Witness> = keys
                .iter()
                .map(|k| Witness::commit(k, &(r as u64).to_be_bytes(), &record))
                .collect();
            let agg = cosi::aggregate_commitments(witnesses.iter().map(|w| w.commitment()));
            let c = cosi::challenge(&agg, &record);
            let mut sig =
                cosi::CollectiveSignature::assemble(agg, witnesses.iter().map(|w| w.respond(&c)));
            if (corrupt_mask >> (r % 16)) & 1 == 1 {
                sig.aggregate_response = sig.aggregate_response + Scalar::ONE;
            }
            records.push(record);
            sigs.push(sig);
        }
        let items: Vec<(&[u8], cosi::CollectiveSignature)> = records
            .iter()
            .map(Vec::as_slice)
            .zip(sigs.iter().copied())
            .collect();
        let individual = items.iter().all(|(rec, sig)| sig.verify(rec, &pks));
        prop_assert_eq!(cosi::verify_batch(&items, &pks), individual);
    }
}

/// True iff the 256-bit big-endian value fits in `bits` bits.
fn fits_in_bits(bytes: &[u8; 32], bits: usize) -> bool {
    let full_zero_bytes = 32 - bits.div_ceil(8);
    let top_mask = if bits.is_multiple_of(8) {
        0xFF
    } else {
        (1u16 << (bits % 8)) as u8 - 1
    };
    bytes[..full_zero_bytes].iter().all(|&b| b == 0) && bytes[full_zero_bytes] & !top_mask == 0
}

/// Message lengths biased toward SHA-256 padding boundaries (55/56 is
/// the one-vs-two padding-block cliff; 64 the block size), with a
/// uniform tail covering multi-block messages.
fn arb_msg_len() -> impl Strategy<Value = usize> {
    (any::<u8>(), any::<u16>()).prop_map(|(pick, raw)| {
        const BOUNDARIES: [usize; 14] = [0, 1, 54, 55, 56, 57, 63, 64, 65, 118, 119, 120, 127, 128];
        if pick < 180 {
            BOUNDARIES[(pick as usize) % BOUNDARIES.len()]
        } else {
            raw as usize % 300
        }
    })
}

proptest! {
    // Differential tests: the raw-speed paths (safegcd inversion, the
    // GLV-split ladders, multi-lane SHA-256) against their slow
    // reference implementations.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// safegcd field inversion agrees with the Fermat ladder.
    #[test]
    fn field_invert_safegcd_matches_fermat(a in arb_fe()) {
        prop_assert_eq!(a.invert(), a.invert_fermat());
    }

    /// safegcd scalar inversion agrees with the Fermat ladder.
    #[test]
    fn scalar_invert_safegcd_matches_fermat(a in arb_scalar()) {
        prop_assert_eq!(a.invert(), a.invert_fermat());
    }

    /// The GLV decomposition recomposes (`k = k1 + λ·k2` with signs
    /// applied) and both halves stay within the half-width bound that
    /// the four-stream ladder's window tables assume.
    #[test]
    fn glv_split_recomposes_within_bounds(k in arb_scalar()) {
        let ((k1, neg1), (k2, neg2)) = k.split_glv();
        let v1 = if neg1 { -k1 } else { k1 };
        let v2 = if neg2 { -k2 } else { k2 };
        prop_assert_eq!(v1 + Scalar::glv_lambda() * v2, k);
        prop_assert!(fits_in_bits(&k1.to_be_bytes(), 129));
        prop_assert!(fits_in_bits(&k2.to_be_bytes(), 129));
    }

    /// Batched `digest_many` agrees with per-message scalar SHA-256 on
    /// mixed-length batches straddling block boundaries (so lanes mask
    /// in and out at different block indices).
    #[test]
    fn digest_many_matches_scalar_at_boundaries(
        lens in proptest::collection::vec(arb_msg_len(), 1..24),
        seed in any::<u8>(),
    ) {
        let msgs: Vec<Vec<u8>> = lens
            .iter()
            .enumerate()
            .map(|(i, &n)| (0..n).map(|j| (j as u8) ^ (i as u8) ^ seed).collect())
            .collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        let batched = Sha256::digest_many(&refs);
        prop_assert_eq!(batched.len(), refs.len());
        for (m, d) in refs.iter().zip(&batched) {
            prop_assert_eq!(*d, Sha256::digest(m));
        }
    }
}

proptest! {
    // Ladder equivalence needs group operations; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The GLV four-stream Strauss–Shamir ladder agrees with the
    /// pre-GLV full-width wNAF ladder on arbitrary scalar pairs.
    #[test]
    fn glv_ladder_matches_pre_glv_ladder(a in arb_scalar(), b in arb_scalar(), s in arb_scalar()) {
        prop_assume!(!s.is_zero());
        let p = Point::generator() * s;
        prop_assert_eq!(
            Point::mul_shamir_generator(&a, &b, &p),
            Point::mul_shamir_generator_wnaf(&a, &b, &p)
        );
    }
}

/// The deterministic inversion edge cases both algorithms must agree
/// on: 0 (no inverse), 1 (self-inverse), and `modulus − 1`
/// (self-inverse, and the largest canonical value).
#[test]
fn inversion_edge_cases_agree() {
    assert_eq!(FieldElement::ZERO.invert(), None);
    assert_eq!(FieldElement::ZERO.invert_fermat(), None);
    assert_eq!(FieldElement::ONE.invert(), Some(FieldElement::ONE));
    let p_minus_one = -FieldElement::ONE;
    assert_eq!(p_minus_one.invert(), Some(p_minus_one));
    assert_eq!(p_minus_one.invert(), p_minus_one.invert_fermat());

    assert_eq!(Scalar::ZERO.invert(), None);
    assert_eq!(Scalar::ZERO.invert_fermat(), None);
    assert_eq!(Scalar::ONE.invert(), Some(Scalar::ONE));
    let n_minus_one = -Scalar::ONE;
    assert_eq!(n_minus_one.invert(), Some(n_minus_one));
    assert_eq!(n_minus_one.invert(), n_minus_one.invert_fermat());
}
