//! Property-based tests for the cryptographic substrate.

use fides_crypto::cosi::{self, Witness};
use fides_crypto::field::FieldElement;
use fides_crypto::merkle::{hash_leaf, MerkleTree};
use fides_crypto::point::Point;
use fides_crypto::scalar::Scalar;
use fides_crypto::schnorr::KeyPair;
use fides_crypto::sha256::Sha256;
use proptest::prelude::*;

fn arb_fe() -> impl Strategy<Value = FieldElement> {
    any::<[u8; 32]>().prop_map(|b| {
        // Clear the top byte so the value is always canonical.
        let mut b = b;
        b[0] = 0;
        FieldElement::from_be_bytes(&b).expect("top byte cleared; below p")
    })
}

fn arb_scalar() -> impl Strategy<Value = Scalar> {
    any::<[u8; 32]>().prop_map(|b| Scalar::from_be_bytes_reduced(&b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn field_add_commutes(a in arb_fe(), b in arb_fe()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn field_mul_commutes(a in arb_fe(), b in arb_fe()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn field_add_associates(a in arb_fe(), b in arb_fe(), c in arb_fe()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn field_mul_associates(a in arb_fe(), b in arb_fe(), c in arb_fe()) {
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn field_distributes(a in arb_fe(), b in arb_fe(), c in arb_fe()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn field_sub_is_add_neg(a in arb_fe(), b in arb_fe()) {
        prop_assert_eq!(a - b, a + (-b));
    }

    #[test]
    fn field_inverse_law(a in arb_fe()) {
        if !a.is_zero() {
            prop_assert_eq!(a * a.invert().unwrap(), FieldElement::ONE);
        }
    }

    #[test]
    fn field_square_matches_mul(a in arb_fe()) {
        prop_assert_eq!(a.square(), a * a);
    }

    #[test]
    fn field_bytes_roundtrip(a in arb_fe()) {
        prop_assert_eq!(FieldElement::from_be_bytes(&a.to_be_bytes()), Some(a));
    }

    #[test]
    fn scalar_ring_laws(a in arb_scalar(), b in arb_scalar(), c in arb_scalar()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a + (-a), Scalar::ZERO);
    }

    #[test]
    fn scalar_inverse_law(a in arb_scalar()) {
        if !a.is_zero() {
            prop_assert_eq!(a * a.invert().unwrap(), Scalar::ONE);
        }
    }
}

proptest! {
    // Group operations are slower; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn scalar_mul_homomorphism(a in arb_scalar(), b in arb_scalar()) {
        let g = Point::generator();
        prop_assert_eq!(g * a + g * b, g * (a + b));
    }

    #[test]
    fn windowed_mul_matches_binary(k in arb_scalar()) {
        let g = Point::generator();
        prop_assert_eq!(g.mul_scalar(&k), g.mul_scalar_binary(&k));
    }

    #[test]
    fn point_compression_roundtrip(k in arb_scalar()) {
        let p = Point::generator() * k;
        let enc = p.to_compressed_bytes();
        prop_assert_eq!(Point::from_compressed_bytes(&enc).unwrap(), p);
    }

    #[test]
    fn schnorr_roundtrip(seed in any::<[u8; 16]>(), msg in proptest::collection::vec(any::<u8>(), 0..256)) {
        let kp = KeyPair::from_seed(&seed);
        let sig = kp.sign(&msg);
        prop_assert!(kp.public_key().verify(&msg, &sig));
    }

    #[test]
    fn schnorr_rejects_bitflip(seed in any::<[u8; 8]>(), msg in proptest::collection::vec(any::<u8>(), 1..64), flip in 0usize..64) {
        let kp = KeyPair::from_seed(&seed);
        let sig = kp.sign(&msg);
        let mut tampered = msg.clone();
        let idx = flip % tampered.len();
        tampered[idx] ^= 1;
        prop_assert!(!kp.public_key().verify(&tampered, &sig));
    }

    #[test]
    fn cosi_round_verifies(n in 1usize..6, record in proptest::collection::vec(any::<u8>(), 1..64)) {
        let keys: Vec<KeyPair> = (0..n).map(|i| KeyPair::from_seed(&[i as u8, 0xAA])).collect();
        let witnesses: Vec<Witness> =
            keys.iter().map(|k| Witness::commit(k, b"prop-round", &record)).collect();
        let agg = cosi::aggregate_commitments(witnesses.iter().map(|w| w.commitment()));
        let c = cosi::challenge(&agg, &record);
        let sig = cosi::CollectiveSignature::assemble(agg, witnesses.iter().map(|w| w.respond(&c)));
        let pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();
        prop_assert!(sig.verify(&record, &pks));
        // And rejects a different record.
        let mut other = record.clone();
        other[0] ^= 0xFF;
        prop_assert!(!sig.verify(&other, &pks));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn merkle_proofs_sound(
        n in 1usize..64,
        updates in proptest::collection::vec((any::<u16>(), any::<u64>()), 0..16),
    ) {
        let mut data: Vec<Vec<u8>> = (0..n).map(|i| format!("item-{i}").into_bytes()).collect();
        let mut tree = MerkleTree::from_leaves(data.iter().map(|d| hash_leaf(d)).collect());
        for (idx, val) in updates {
            let i = (idx as usize) % n;
            data[i] = val.to_be_bytes().to_vec();
            tree.update_leaf(i, hash_leaf(&data[i]));
        }
        let root = tree.root();
        for (i, d) in data.iter().enumerate() {
            prop_assert!(tree.proof(i).verify(hash_leaf(d), &root));
        }
        // Rebuilding from scratch gives the same root.
        let rebuilt = MerkleTree::from_leaves(data.iter().map(|d| hash_leaf(d)).collect());
        prop_assert_eq!(rebuilt.root(), root);
    }

    #[test]
    fn merkle_rejects_cross_proofs(n in 2usize..64, i in any::<u16>(), j in any::<u16>()) {
        let i = (i as usize) % n;
        let j = (j as usize) % n;
        prop_assume!(i != j);
        let leaves: Vec<_> = (0..n).map(|k| hash_leaf(&(k as u64).to_be_bytes())).collect();
        let tree = MerkleTree::from_leaves(leaves.clone());
        // Proof for i never validates leaf j's data.
        prop_assert!(!tree.proof(i).verify(leaves[j], &tree.root()));
    }

    #[test]
    fn sha256_streaming_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512), split in any::<u16>()) {
        let cut = (split as usize) % (data.len() + 1);
        let mut h = Sha256::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }
}
