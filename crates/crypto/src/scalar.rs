//! Arithmetic modulo the secp256k1 group order
//! `n = 0xFFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFE BAAEDCE6 AF48A03B BFD25E8C D0364141`.
//!
//! [`Scalar`] values are secret keys, nonces, Schnorr challenges and
//! Schnorr responses. They are always fully reduced.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, Mul, Neg, Sub};

use crate::arith;
use crate::hash::Digest;

/// The group order `n`, little-endian limbs.
pub(crate) const N: [u64; 4] = [
    0xBFD2_5E8C_D036_4141,
    0xBAAE_DCE6_AF48_A03B,
    0xFFFF_FFFF_FFFF_FFFE,
    0xFFFF_FFFF_FFFF_FFFF,
];

/// `c = 2^256 - n`.
const C: [u64; 4] = [0x402D_A173_2FC9_BEBF, 0x4551_2319_50B7_5FC4, 0x1, 0];

/// The GLV endomorphism eigenvalue `λ`: a primitive cube root of unity
/// mod `n`, satisfying `λ·(x, y) = (β·x, y)` on the curve. Splitting
/// `k = k1 + λ·k2` with half-width `k1, k2` halves the doubling count
/// of every scalar-multiplication ladder (see [`crate::point`]).
pub(crate) const LAMBDA: [u64; 4] = [
    0xDF02_967C_1B23_BD72,
    0x122E_22EA_2081_6678,
    0xA526_1C02_8812_645A,
    0x5363_AD4C_C05C_30E0,
];

/// GLV lattice basis: `(a1, b1)` and `(a2, b2)` with
/// `a_i + b_i·λ ≡ 0 (mod n)` and all entries ≈ `√n`. `b1` is negative;
/// `MINUS_B1` stores its absolute value, and `b2 = a1`.
const MINUS_B1: [u64; 4] = [0x6F54_7FA9_0ABF_E4C3, 0xE443_7ED6_010E_8828, 0, 0];
const B2: [u64; 4] = [0xE86C_90E4_9284_EB15, 0x3086_D221_A7D4_6BCD, 0, 0];

/// The precomputed rounding multipliers `g1 = round(2^384·b2/n)` and
/// `g2 = round(2^384·(−b1)/n)`, derived once by exact long division so
/// each split costs two widening multiplies and a shift.
fn glv_multipliers() -> &'static ([u64; 4], [u64; 4]) {
    use std::sync::OnceLock;
    static G: OnceLock<([u64; 4], [u64; 4])> = OnceLock::new();
    G.get_or_init(|| {
        let wide = |v: &[u64; 4]| {
            // v · 2^384 (v has two significant limbs).
            let mut w = [0u64; 8];
            w[6] = v[0];
            w[7] = v[1];
            w
        };
        (
            arith::div_rounded_wide(&wide(&B2), &N),
            arith::div_rounded_wide(&wide(&MINUS_B1), &N),
        )
    })
}

/// An integer modulo the secp256k1 group order.
///
/// # Example
///
/// ```
/// use fides_crypto::scalar::Scalar;
///
/// let a = Scalar::from_u64(5);
/// let b = Scalar::from_u64(7);
/// assert_eq!(a * b, Scalar::from_u64(35));
/// ```
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Scalar([u64; 4]);

impl Scalar {
    /// The additive identity.
    pub const ZERO: Scalar = Scalar([0, 0, 0, 0]);
    /// The multiplicative identity.
    pub const ONE: Scalar = Scalar([1, 0, 0, 0]);

    /// Constructs from a small integer.
    pub fn from_u64(v: u64) -> Self {
        Scalar([v, 0, 0, 0])
    }

    /// Parses 32 big-endian bytes; returns `None` if the value is ≥ `n`.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Option<Self> {
        let limbs = arith::limbs_from_be_bytes(bytes);
        if arith::cmp4(&limbs, &N) == Ordering::Less {
            Some(Scalar(limbs))
        } else {
            None
        }
    }

    /// Parses 32 big-endian bytes, reducing modulo `n`. Never fails; used
    /// for turning hash outputs into challenges.
    pub fn from_be_bytes_reduced(bytes: &[u8; 32]) -> Self {
        let limbs = arith::limbs_from_be_bytes(bytes);
        let mut wide = [0u64; 8];
        wide[..4].copy_from_slice(&limbs);
        Scalar(arith::reduce_wide(wide, &N, &C))
    }

    /// Interprets a digest as a scalar (mod `n`).
    pub fn from_digest(d: &Digest) -> Self {
        Scalar::from_be_bytes_reduced(d.as_bytes())
    }

    /// Serializes as 32 big-endian bytes.
    pub fn to_be_bytes(self) -> [u8; 32] {
        arith::limbs_to_be_bytes(&self.0)
    }

    /// Returns `true` for the additive identity.
    pub fn is_zero(&self) -> bool {
        arith::is_zero4(&self.0)
    }

    /// Multiplicative inverse via the safegcd divstep algorithm
    /// ([`crate::safegcd`]); `None` for zero.
    pub fn invert(&self) -> Option<Self> {
        if self.is_zero() {
            return None;
        }
        Some(Scalar(crate::safegcd::modinv(&self.0, &N)))
    }

    /// Multiplicative inverse via Fermat (`a^(n-2) mod n`) — the
    /// pre-safegcd reference path, kept for differential testing.
    #[doc(hidden)]
    pub fn invert_fermat(&self) -> Option<Self> {
        if self.is_zero() {
            return None;
        }
        let n_minus_2 = arith::sub4(&N, &[2, 0, 0, 0]).0;
        Some(Scalar(arith::pow_mod(&self.0, &n_minus_2, &N, &C)))
    }

    /// Bit `i` (little-endian) of the canonical representative.
    pub(crate) fn bit(&self, i: usize) -> bool {
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// The 4-bit window `[4*i, 4*i+4)` of the canonical representative.
    pub(crate) fn nibble(&self, i: usize) -> u8 {
        ((self.0[i / 16] >> ((i % 16) * 4)) & 0xF) as u8
    }

    /// The width-`w` non-adjacent form: little-endian digits
    /// `d_i ∈ {0, ±1, ±3, …, ±(2^(w-1) − 1)}` with `Σ d_i·2^i = self`
    /// and no two adjacent non-zero digits.
    ///
    /// wNAF is the standard scalar recoding for variable-base
    /// multiplication: only one digit in `w+1` is non-zero on average,
    /// so a double-and-add ladder needs `~256/(w+1)` point additions
    /// instead of `~256·(2^w−1)/2^w` for plain windows — the backbone of
    /// the Strauss–Shamir verification path in [`crate::point`].
    ///
    /// Requires `2 ≤ w ≤ 8` (digits must fit `i8`).
    ///
    /// The recoding is a single left-to-right carry scan over the limb
    /// array (no 256 iterations of multi-limb shift/subtract), so it
    /// costs ~`256/w` window extractions per scalar — cheap enough to
    /// run once per term of a large batch verification.
    pub(crate) fn wnaf(&self, w: u32) -> Vec<i8> {
        debug_assert!((2..=8).contains(&w), "wNAF width out of range");
        let mut digits = Vec::with_capacity(257);
        let half = 1u64 << (w - 1);
        let mut carry = 0u64;
        let mut pos = 0usize;
        while pos < 256 || carry != 0 {
            let bit = if pos < 256 {
                (self.0[pos / 64] >> (pos % 64)) & 1
            } else {
                0
            };
            if bit == carry {
                // Effective bit (bit + carry) is even: zero digit, the
                // carry propagates unchanged.
                digits.push(0);
                pos += 1;
                continue;
            }
            // Effective window value: odd, in [1, 2^w - 1].
            let word = self.extract_bits(pos, w) + carry;
            let digit = if word >= half {
                carry = 1;
                word as i64 - (1i64 << w)
            } else {
                carry = 0;
                word as i64
            };
            digits.push(digit as i8);
            digits.resize(digits.len() + (w as usize - 1), 0);
            pos += w as usize;
        }
        while digits.last() == Some(&0) {
            digits.pop();
        }
        digits
    }

    /// Bits `[pos, pos + w)` of the canonical representative
    /// (zero-padded past bit 255); `w < 64`.
    fn extract_bits(&self, pos: usize, w: u32) -> u64 {
        let limb = pos / 64;
        let shift = pos % 64;
        let mut v = if limb < 4 { self.0[limb] >> shift } else { 0 };
        if shift + w as usize > 64 && limb + 1 < 4 {
            v |= self.0[limb + 1] << (64 - shift);
        }
        v & ((1u64 << w) - 1)
    }

    /// GLV decomposition: returns `((|k1|, neg1), (|k2|, neg2))` with
    /// `±|k1| + λ·±|k2| ≡ self (mod n)` and both magnitudes below
    /// ~`2^129` — about half the bits of a full scalar, so a ladder
    /// over the split halves needs half the doublings.
    ///
    /// Uses the classic lattice rounding: `c_i = round(g_i·k / 2^384)`
    /// approximates the closest lattice vector, `k2 = c1·(−b1) − c2·b2`
    /// and `k1 = k − λ·k2` (mod n). The recomposition identity holds by
    /// construction for *any* `c_i`; the constants only govern how
    /// small the halves come out, and the differential proptests pin
    /// both properties.
    #[doc(hidden)] // pub for the differential proptests
    pub fn split_glv(&self) -> ((Scalar, bool), (Scalar, bool)) {
        let (g1, g2) = glv_multipliers();
        let c1 = self.mul_shift_384(g1);
        let c2 = self.mul_shift_384(g2);
        let k2 = c1 * Scalar(MINUS_B1) - c2 * Scalar(B2);
        let k1 = *self - k2 * Scalar(LAMBDA);
        (Self::abs_small(k1), Self::abs_small(k2))
    }

    /// The GLV endomorphism eigenvalue `λ` as a scalar (test support).
    #[doc(hidden)]
    pub fn glv_lambda() -> Scalar {
        Scalar(LAMBDA)
    }

    /// `round(self · g / 2^384)` — the split's lattice-rounding kernel.
    fn mul_shift_384(&self, g: &[u64; 4]) -> Scalar {
        let wide = arith::mul4(&self.0, g);
        let round_up = wide[5] >> 63;
        let (r, carry) = arith::add4(&[wide[6], wide[7], 0, 0], &[round_up, 0, 0, 0]);
        debug_assert_eq!(carry, 0);
        Scalar(r)
    }

    /// Canonicalizes a known-small (±~2^129) residue to its magnitude
    /// and sign: representatives near `n` are negative small values.
    fn abs_small(k: Scalar) -> (Scalar, bool) {
        if k.bits() > 140 {
            (-k, true)
        } else {
            (k, false)
        }
    }

    /// The number of significant bits of the canonical representative.
    pub(crate) fn bits(&self) -> u32 {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return (i as u32) * 64 + (64 - self.0[i].leading_zeros());
            }
        }
        0
    }
}

impl Add for Scalar {
    type Output = Scalar;
    fn add(self, rhs: Scalar) -> Scalar {
        Scalar(arith::add_mod(&self.0, &rhs.0, &N))
    }
}

impl Sub for Scalar {
    type Output = Scalar;
    fn sub(self, rhs: Scalar) -> Scalar {
        Scalar(arith::sub_mod(&self.0, &rhs.0, &N))
    }
}

impl Mul for Scalar {
    type Output = Scalar;
    fn mul(self, rhs: Scalar) -> Scalar {
        Scalar(arith::mul_mod(&self.0, &rhs.0, &N, &C))
    }
}

impl Neg for Scalar {
    type Output = Scalar;
    fn neg(self) -> Scalar {
        Scalar(arith::sub_mod(&[0, 0, 0, 0], &self.0, &N))
    }
}

impl fmt::Debug for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Do not print full scalars: they may be secret keys.
        let bytes = self.to_be_bytes();
        write!(f, "Scalar({:02x}{:02x}…)", bytes[0], bytes[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc(v: u64) -> Scalar {
        Scalar::from_u64(v)
    }

    #[test]
    fn identities() {
        let a = sc(777);
        assert_eq!(a + Scalar::ZERO, a);
        assert_eq!(a * Scalar::ONE, a);
        assert_eq!(a - a, Scalar::ZERO);
        assert_eq!(a + (-a), Scalar::ZERO);
    }

    #[test]
    fn wraparound() {
        let n_minus_1 = Scalar(arith::sub4(&N, &[1, 0, 0, 0]).0);
        assert_eq!(n_minus_1 + sc(1), Scalar::ZERO);
        assert_eq!(n_minus_1 + sc(2), Scalar::ONE);
    }

    #[test]
    fn inverse() {
        let a = sc(123_456_789);
        assert_eq!(a * a.invert().unwrap(), Scalar::ONE);
        assert!(Scalar::ZERO.invert().is_none());
    }

    #[test]
    fn reduction_of_large_bytes() {
        // 2^256 - 1 reduced mod n must equal c - 1 (since 2^256 ≡ c).
        let s = Scalar::from_be_bytes_reduced(&[0xFF; 32]);
        let expect = Scalar(arith::sub4(&C, &[1, 0, 0, 0]).0);
        assert_eq!(s, expect);
    }

    #[test]
    fn canonical_bytes_roundtrip() {
        let a = Scalar::from_be_bytes_reduced(Digest::new([9u8; 32]).as_bytes());
        assert_eq!(Scalar::from_be_bytes(&a.to_be_bytes()), Some(a));
    }

    #[test]
    fn non_canonical_rejected() {
        assert_eq!(Scalar::from_be_bytes(&[0xFF; 32]), None);
        // n itself is non-canonical.
        let n_bytes = arith::limbs_to_be_bytes(&N);
        assert_eq!(Scalar::from_be_bytes(&n_bytes), None);
    }

    #[test]
    fn bits_and_nibbles() {
        let a = sc(0b1011);
        assert!(a.bit(0));
        assert!(a.bit(1));
        assert!(!a.bit(2));
        assert!(a.bit(3));
        assert_eq!(a.nibble(0), 0b1011);
        assert_eq!(a.nibble(1), 0);
        let b = Scalar([0, 0, 0, 0xF000_0000_0000_0000]);
        assert_eq!(b.nibble(63), 0xF);
    }

    #[test]
    fn debug_does_not_leak_full_value() {
        let s = format!("{:?}", sc(42));
        assert!(s.len() < 20);
        assert!(s.contains('…'));
    }

    #[test]
    fn associativity_spot_check() {
        let a = Scalar::from_be_bytes_reduced(&[0xAB; 32]);
        let b = Scalar::from_be_bytes_reduced(&[0xCD; 32]);
        let c = Scalar::from_be_bytes_reduced(&[0xEF; 32]);
        assert_eq!((a * b) * c, a * (b * c));
        assert_eq!((a + b) + c, a + (b + c));
    }

    /// Evaluates a wNAF digit string back to a scalar: Σ dᵢ·2ⁱ mod n.
    fn eval_wnaf(digits: &[i8]) -> Scalar {
        let two = Scalar::from_u64(2);
        let mut acc = Scalar::ZERO;
        for &d in digits.iter().rev() {
            acc = acc * two;
            if d >= 0 {
                acc = acc + Scalar::from_u64(d as u64);
            } else {
                acc = acc - Scalar::from_u64((-(d as i64)) as u64);
            }
        }
        acc
    }

    #[test]
    fn wnaf_reconstructs_value() {
        let cases = [
            Scalar::ZERO,
            Scalar::ONE,
            sc(2),
            sc(0xFFFF_FFFF_FFFF_FFFF),
            -Scalar::ONE,
            Scalar::from_be_bytes_reduced(&[0xA7; 32]),
            Scalar::from_be_bytes_reduced(&[0x01; 32]),
            Scalar::from_be_bytes_reduced(&[0xFE; 32]),
        ];
        for w in 2..=8u32 {
            for k in cases {
                assert_eq!(eval_wnaf(&k.wnaf(w)), k, "w={w} k={k:?}");
            }
        }
    }

    #[test]
    fn wnaf_digits_are_odd_and_bounded() {
        let k = Scalar::from_be_bytes_reduced(&[0xB3; 32]);
        for w in 2..=8u32 {
            let bound = 1i16 << (w - 1);
            for &d in &k.wnaf(w) {
                if d != 0 {
                    assert_eq!(d.rem_euclid(2), 1, "digit {d} must be odd");
                    assert!(
                        (i16::from(d)).abs() < bound,
                        "digit {d} out of range for w={w}"
                    );
                }
            }
        }
    }

    #[test]
    fn wnaf_nonzero_digits_are_spaced() {
        // After a non-zero digit, the next w-1 digits must be zero.
        let k = Scalar::from_be_bytes_reduced(&[0x6D; 32]);
        for w in 2..=8u32 {
            let naf = k.wnaf(w);
            let mut i = 0;
            while i < naf.len() {
                if naf[i] != 0 {
                    for j in 1..w as usize {
                        if i + j < naf.len() {
                            assert_eq!(naf[i + j], 0, "w={w} digits adjacent at {i}");
                        }
                    }
                    i += w as usize;
                } else {
                    i += 1;
                }
            }
        }
    }

    #[test]
    fn wnaf_length_bounded() {
        // wNAF of a reduced scalar has at most 257 digits.
        let k = -Scalar::ONE;
        for w in 2..=8u32 {
            assert!(k.wnaf(w).len() <= 257);
        }
    }

    #[test]
    fn lambda_is_cube_root_of_unity() {
        let lambda = Scalar(LAMBDA);
        assert_ne!(lambda, Scalar::ONE);
        assert_eq!(lambda * lambda * lambda, Scalar::ONE);
    }

    #[test]
    fn glv_basis_vectors_annihilate() {
        // a1 + b1·λ ≡ 0 with b1 = −MINUS_B1 and a1 = B2.
        let lambda = Scalar(LAMBDA);
        assert_eq!(Scalar(B2), Scalar(MINUS_B1) * lambda);
    }

    #[test]
    fn glv_split_recomposes_and_is_short() {
        let lambda = Scalar(LAMBDA);
        let cases = [
            Scalar::ONE,
            sc(2),
            -Scalar::ONE,
            lambda,
            -lambda,
            Scalar::from_be_bytes_reduced(&[0xA7; 32]),
            Scalar::from_be_bytes_reduced(&[0x01; 32]),
            Scalar::from_be_bytes_reduced(&[0xFE; 32]),
            Scalar::from_be_bytes_reduced(&[0x5A; 32]),
        ];
        for k in cases {
            let ((k1, s1), (k2, s2)) = k.split_glv();
            let v1 = if s1 { -k1 } else { k1 };
            let v2 = if s2 { -k2 } else { k2 };
            assert_eq!(v1 + lambda * v2, k, "recomposition failed for {k:?}");
            assert!(k1.bits() <= 129, "k1 too wide: {} bits", k1.bits());
            assert!(k2.bits() <= 129, "k2 too wide: {} bits", k2.bits());
        }
    }

    #[test]
    fn glv_split_of_zero() {
        let ((k1, _), (k2, _)) = Scalar::ZERO.split_glv();
        assert!(k1.is_zero());
        assert!(k2.is_zero());
    }

    #[test]
    fn bits_counts_significant_bits() {
        assert_eq!(Scalar::ZERO.bits(), 0);
        assert_eq!(Scalar::ONE.bits(), 1);
        assert_eq!(sc(0xFF).bits(), 8);
        assert_eq!(Scalar([0, 1, 0, 0]).bits(), 65);
        assert_eq!((-Scalar::ONE).bits(), 256);
    }
}
