//! The [`Digest`] type: a 32-byte hash value with hex formatting.

use core::fmt;

/// A 256-bit digest — the output of SHA-256 and the node label type of
/// Merkle hash trees.
///
/// # Example
///
/// ```
/// use fides_crypto::{Digest, Sha256};
///
/// let d = Sha256::digest(b"block");
/// assert_eq!(d.to_hex().len(), 64);
/// assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Digest([u8; 32]);

impl Digest {
    /// The all-zero digest, used as the previous-block hash of the genesis
    /// block in the tamper-proof log.
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Wraps raw bytes as a digest.
    pub const fn new(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }

    /// Borrows the digest as a byte slice.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Consumes the digest, returning the raw bytes.
    pub fn into_bytes(self) -> [u8; 32] {
        self.0
    }

    /// Returns `true` if every byte is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&b| b == 0)
    }

    /// Lowercase hex representation (64 characters).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in &self.0 {
            s.push(hex_digit(b >> 4));
            s.push(hex_digit(b & 0xF));
        }
        s
    }

    /// Parses a 64-character hex string. Returns `None` on bad length or
    /// non-hex characters.
    pub fn from_hex(s: &str) -> Option<Digest> {
        let bytes = s.as_bytes();
        if bytes.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for i in 0..32 {
            let hi = hex_val(bytes[i * 2])?;
            let lo = hex_val(bytes[i * 2 + 1])?;
            out[i] = (hi << 4) | lo;
        }
        Some(Digest(out))
    }

    /// A short prefix (8 hex chars) for log/debug output.
    pub fn short(&self) -> String {
        self.to_hex()[..8].to_string()
    }
}

fn hex_digit(v: u8) -> char {
    char::from_digit(u32::from(v), 16).expect("nibble is < 16")
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}…)", self.short())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl From<[u8; 32]> for Digest {
    fn from(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let mut bytes = [0u8; 32];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = (i * 7 + 3) as u8;
        }
        let d = Digest::new(bytes);
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert_eq!(Digest::from_hex("xyz"), None);
        assert_eq!(Digest::from_hex(&"g".repeat(64)), None);
        assert_eq!(Digest::from_hex(&"a".repeat(63)), None);
        assert_eq!(Digest::from_hex(&"a".repeat(65)), None);
    }

    #[test]
    fn from_hex_accepts_uppercase() {
        let d = Digest::from_hex(&"AB".repeat(32)).unwrap();
        assert_eq!(d.as_bytes()[0], 0xAB);
    }

    #[test]
    fn zero_is_zero() {
        assert!(Digest::ZERO.is_zero());
        assert!(!Digest::new([1u8; 32]).is_zero());
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", Digest::ZERO);
        assert!(s.contains("Digest"));
        assert!(!s.is_empty());
    }

    #[test]
    fn short_is_prefix() {
        let d = Digest::new([0xABu8; 32]);
        assert_eq!(d.short(), "abababab");
    }
}
