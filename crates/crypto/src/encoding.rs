//! Canonical binary encoding.
//!
//! Every structure that is hashed or signed in Fides (blocks, messages,
//! read/write sets) is serialized through this module so that all servers
//! and the auditor derive byte-identical encodings. The format is a simple
//! deterministic TLV-free layout: fixed-width big-endian integers and
//! `u32`-length-prefixed byte strings.
//!
//! # Example
//!
//! ```
//! use fides_crypto::encoding::{Decoder, Encoder};
//!
//! let mut enc = Encoder::new();
//! enc.put_u64(7);
//! enc.put_bytes(b"hello");
//! let buf = enc.into_bytes();
//!
//! let mut dec = Decoder::new(&buf);
//! assert_eq!(dec.take_u64().unwrap(), 7);
//! assert_eq!(dec.take_bytes().unwrap(), b"hello");
//! assert!(dec.finish().is_ok());
//! ```

use core::fmt;

use crate::hash::Digest;

/// Errors produced while decoding canonical bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the requested field was complete.
    UnexpectedEnd,
    /// A length prefix exceeded the remaining input.
    BadLength,
    /// A tag or enum discriminant had no defined meaning.
    InvalidTag(u8),
    /// Trailing bytes remained after [`Decoder::finish`].
    TrailingBytes(usize),
    /// A byte string was not valid UTF-8 where a string was expected.
    InvalidUtf8,
    /// A structurally valid value was semantically invalid (e.g. a curve
    /// point not on the curve).
    InvalidValue(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "unexpected end of input"),
            DecodeError::BadLength => write!(f, "length prefix exceeds remaining input"),
            DecodeError::InvalidTag(t) => write!(f, "invalid tag byte {t:#04x}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            DecodeError::InvalidUtf8 => write!(f, "byte string is not valid utf-8"),
            DecodeError::InvalidValue(what) => write!(f, "invalid value: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append-only canonical encoder.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// Creates an encoder with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the bytes encoded so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Current encoded length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends raw bytes with no length prefix (for fixed-width fields).
    pub fn put_fixed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u32` length prefix followed by the bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len()` exceeds `u32::MAX` (4 GiB), which no Fides
    /// structure approaches.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        let len = u32::try_from(bytes.len()).expect("byte string longer than u32::MAX");
        self.put_u32(len);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Appends a digest (fixed 32 bytes).
    pub fn put_digest(&mut self, d: &Digest) {
        self.put_fixed(d.as_bytes());
    }

    /// Appends `Some`/`None` as a tag byte followed by the value.
    pub fn put_option<T, F: FnOnce(&mut Encoder, &T)>(&mut self, v: &Option<T>, f: F) {
        match v {
            None => self.put_u8(0),
            Some(inner) => {
                self.put_u8(1);
                f(self, inner);
            }
        }
    }

    /// Appends a `u32` element count followed by each element.
    pub fn put_seq<T, F: FnMut(&mut Encoder, &T)>(&mut self, items: &[T], mut f: F) {
        let len = u32::try_from(items.len()).expect("sequence longer than u32::MAX");
        self.put_u32(len);
        for item in items {
            f(self, item);
        }
    }
}

/// Cursor-based canonical decoder.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Decoder { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Errors unless the input has been fully consumed.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes(self.remaining()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEnd);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn take_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    pub fn take_bool(&mut self) -> Result<bool, DecodeError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }

    pub fn take_u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    pub fn take_u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn take_u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        Ok(u64::from_be_bytes(buf))
    }

    /// Reads `n` raw bytes (fixed-width field).
    pub fn take_fixed(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n)
    }

    /// Reads a `u32`-length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.take_u32()? as usize;
        if self.remaining() < len {
            return Err(DecodeError::BadLength);
        }
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<&'a str, DecodeError> {
        let bytes = self.take_bytes()?;
        core::str::from_utf8(bytes).map_err(|_| DecodeError::InvalidUtf8)
    }

    /// Reads a 32-byte digest.
    pub fn take_digest(&mut self) -> Result<Digest, DecodeError> {
        let b = self.take(32)?;
        let mut out = [0u8; 32];
        out.copy_from_slice(b);
        Ok(Digest::new(out))
    }

    /// Reads an `Option` encoded by [`Encoder::put_option`].
    pub fn take_option<T, F: FnOnce(&mut Decoder<'a>) -> Result<T, DecodeError>>(
        &mut self,
        f: F,
    ) -> Result<Option<T>, DecodeError> {
        match self.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }

    /// Reads a sequence encoded by [`Encoder::put_seq`].
    pub fn take_seq<T, F: FnMut(&mut Decoder<'a>) -> Result<T, DecodeError>>(
        &mut self,
        mut f: F,
    ) -> Result<Vec<T>, DecodeError> {
        let len = self.take_u32()? as usize;
        // Guard against absurd prefixes: each element takes >= 1 byte.
        if len > self.remaining() {
            return Err(DecodeError::BadLength);
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(f(self)?);
        }
        Ok(out)
    }
}

/// Types with a canonical byte encoding.
pub trait Encodable {
    /// Appends the canonical encoding of `self` to `enc`.
    fn encode_into(&self, enc: &mut Encoder);

    /// Convenience: the canonical encoding as a fresh byte vector.
    fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode_into(&mut enc);
        enc.into_bytes()
    }

    /// Convenience: SHA-256 of the canonical encoding.
    fn canonical_digest(&self) -> Digest {
        crate::sha256::Sha256::digest(&self.encode())
    }
}

/// Types decodable from their canonical byte encoding.
pub trait Decodable: Sized {
    /// Reads one value from the decoder.
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError>;

    /// Decodes a value that must occupy the entire input.
    fn decode(data: &[u8]) -> Result<Self, DecodeError> {
        let mut dec = Decoder::new(data);
        let v = Self::decode_from(&mut dec)?;
        dec.finish()?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut enc = Encoder::new();
        enc.put_u8(0xAB);
        enc.put_bool(true);
        enc.put_u16(0x1234);
        enc.put_u32(0xDEADBEEF);
        enc.put_u64(u64::MAX);
        enc.put_str("fides");
        enc.put_digest(&Digest::ZERO);
        let buf = enc.into_bytes();

        let mut dec = Decoder::new(&buf);
        assert_eq!(dec.take_u8().unwrap(), 0xAB);
        assert!(dec.take_bool().unwrap());
        assert_eq!(dec.take_u16().unwrap(), 0x1234);
        assert_eq!(dec.take_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(dec.take_u64().unwrap(), u64::MAX);
        assert_eq!(dec.take_str().unwrap(), "fides");
        assert_eq!(dec.take_digest().unwrap(), Digest::ZERO);
        dec.finish().unwrap();
    }

    #[test]
    fn option_roundtrip() {
        let mut enc = Encoder::new();
        enc.put_option(&Some(42u64), |e, v| e.put_u64(*v));
        enc.put_option(&None::<u64>, |e, v| e.put_u64(*v));
        let buf = enc.into_bytes();
        let mut dec = Decoder::new(&buf);
        assert_eq!(dec.take_option(|d| d.take_u64()).unwrap(), Some(42));
        assert_eq!(dec.take_option(|d| d.take_u64()).unwrap(), None);
    }

    #[test]
    fn seq_roundtrip() {
        let items = vec![1u64, 2, 3, 4, 5];
        let mut enc = Encoder::new();
        enc.put_seq(&items, |e, v| e.put_u64(*v));
        let buf = enc.into_bytes();
        let mut dec = Decoder::new(&buf);
        assert_eq!(dec.take_seq(|d| d.take_u64()).unwrap(), items);
    }

    #[test]
    fn unexpected_end() {
        let mut dec = Decoder::new(&[0x01]);
        assert_eq!(dec.take_u32(), Err(DecodeError::UnexpectedEnd));
    }

    #[test]
    fn bad_length_prefix() {
        // Claims 100 bytes follow but only 1 does.
        let buf = [0u8, 0, 0, 100, 0xFF];
        let mut dec = Decoder::new(&buf);
        assert_eq!(dec.take_bytes(), Err(DecodeError::BadLength));
    }

    #[test]
    fn trailing_bytes_detected() {
        let dec = Decoder::new(&[1, 2, 3]);
        assert_eq!(dec.finish(), Err(DecodeError::TrailingBytes(3)));
    }

    #[test]
    fn invalid_bool_tag() {
        let mut dec = Decoder::new(&[7]);
        assert_eq!(dec.take_bool(), Err(DecodeError::InvalidTag(7)));
    }

    #[test]
    fn invalid_utf8() {
        let mut enc = Encoder::new();
        enc.put_bytes(&[0xFF, 0xFE]);
        let buf = enc.into_bytes();
        let mut dec = Decoder::new(&buf);
        assert_eq!(dec.take_str(), Err(DecodeError::InvalidUtf8));
    }

    #[test]
    fn huge_seq_prefix_rejected() {
        let buf = [0xFFu8, 0xFF, 0xFF, 0xFF];
        let mut dec = Decoder::new(&buf);
        assert_eq!(dec.take_seq(|d| d.take_u8()), Err(DecodeError::BadLength));
    }

    #[test]
    fn length_prefix_makes_encoding_injective() {
        // ("ab","c") and ("a","bc") must encode differently.
        let mut e1 = Encoder::new();
        e1.put_bytes(b"ab");
        e1.put_bytes(b"c");
        let mut e2 = Encoder::new();
        e2.put_bytes(b"a");
        e2.put_bytes(b"bc");
        assert_ne!(e1.into_bytes(), e2.into_bytes());
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            DecodeError::UnexpectedEnd,
            DecodeError::BadLength,
            DecodeError::InvalidTag(3),
            DecodeError::TrailingBytes(2),
            DecodeError::InvalidUtf8,
            DecodeError::InvalidValue("point"),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
