//! CoSi — collective signing (paper §2.2).
//!
//! CoSi lets a leader produce a record that a group of witnesses validates
//! and collectively signs, yielding a signature with the size and
//! verification cost of a *single* Schnorr signature. TFCommit (paper
//! §4.3) runs one CoSi round per block: the coordinator is the leader and
//! every database server (including the coordinator itself) is a witness.
//!
//! The four phases, mapped to this module's API:
//!
//! 1. **Announcement** — the leader distributes the round id and record;
//!    no cryptography here (plain message in `fides-core`).
//! 2. **Commitment** — each witness calls [`Witness::commit`], producing
//!    a Schnorr commitment `X_i = v_i·G`.
//! 3. **Challenge** — the leader aggregates `X = Σ X_i` and computes
//!    `c = H(enc(X) ‖ record)` via [`challenge`].
//! 4. **Response** — each witness validates the record and calls
//!    [`Witness::respond`], producing `r_i = v_i + c·sk_i`; the leader
//!    aggregates `s = Σ r_i` into a [`CollectiveSignature`].
//!
//! Verification ([`CollectiveSignature::verify`]) checks
//! `s·G == X + c·ΣP_i` — anyone holding the witnesses' public keys can
//! verify at the cost of one signature check (§2.2).
//!
//! [`identify_invalid_responses`] implements the culprit identification of
//! Lemma 4: each partial response is individually checkable against the
//! witness's commitment and public key, so a leader holding all parts can
//! name exactly which witness lied.
//!
//! # Example
//!
//! ```
//! use fides_crypto::cosi::{self, Witness};
//! use fides_crypto::schnorr::KeyPair;
//!
//! let keys: Vec<KeyPair> = (0..4).map(|i| KeyPair::from_seed(&[i])).collect();
//! let record = b"block #7";
//!
//! // Commitment phase.
//! let witnesses: Vec<Witness> = keys
//!     .iter()
//!     .map(|kp| Witness::commit(kp, b"round-7", record))
//!     .collect();
//! let commitments: Vec<_> = witnesses.iter().map(|w| w.commitment()).collect();
//!
//! // Challenge phase (leader).
//! let agg = cosi::aggregate_commitments(commitments.iter().copied());
//! let c = cosi::challenge(&agg, record);
//!
//! // Response phase.
//! let responses: Vec<_> = witnesses.iter().map(|w| w.respond(&c)).collect();
//! let sig = cosi::CollectiveSignature::assemble(agg, responses.iter().copied());
//!
//! let pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();
//! assert!(sig.verify(record, &pks));
//! ```

use core::fmt;

use crate::encoding::{Decodable, DecodeError, Decoder, Encodable, Encoder};
use crate::point::Point;
use crate::scalar::Scalar;
use crate::schnorr::{derive_nonce, KeyPair, PublicKey};
use crate::sha256::Sha256;

/// A witness's Schnorr commitment `X_i = v_i·G` (phase 2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Commitment(pub Point);

/// A witness's Schnorr response `r_i = v_i + c·sk_i` (phase 4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Response(pub Scalar);

/// Per-round witness state: the secret nonce and its public commitment.
///
/// Dropping a `Witness` without responding is safe (the nonce is never
/// reused because it is derived from the round id and record).
pub struct Witness {
    secret: Scalar,
    commitment: Commitment,
    key: KeyPair,
}

impl fmt::Debug for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The per-round secret is never printed.
        write!(f, "Witness(commitment={:?})", self.commitment)
    }
}

impl Witness {
    /// Phase 2: derive the per-round secret and commitment.
    ///
    /// The secret nonce is derived deterministically from the secret key,
    /// the round id and the record, so a witness never reuses a nonce as
    /// long as round ids are unique — TFCommit uses the block height and
    /// previous-block hash.
    pub fn commit(key: &KeyPair, round_id: &[u8], record_hint: &[u8]) -> Witness {
        let mut material = Vec::with_capacity(round_id.len() + record_hint.len() + 1);
        material.extend_from_slice(round_id);
        material.push(0x1F); // separator between round id and record hint
        material.extend_from_slice(record_hint);
        let v = derive_nonce(key.secret_key(), &material, b"fides.cosi.nonce.v1");
        Witness {
            secret: v,
            commitment: Commitment(Point::mul_generator(&v).normalize()),
            key: *key,
        }
    }

    /// The public commitment to send to the leader.
    pub fn commitment(&self) -> Commitment {
        self.commitment
    }

    /// Phase 4: compute the response for challenge `c`.
    pub fn respond(&self, c: &Scalar) -> Response {
        Response(self.secret + *c * self.key.secret_key().scalar())
    }

    /// A deliberately wrong response — used by fault-injection tests to
    /// model the malicious behaviour of Lemma 4.
    #[doc(hidden)]
    pub fn respond_corrupt(&self, c: &Scalar) -> Response {
        Response(self.secret + *c * self.key.secret_key().scalar() + Scalar::ONE)
    }
}

/// Aggregates witness commitments: `X = Σ X_i` (phase 3, leader side).
///
/// The sum is normalized to `Z = 1` once, so the challenge hash, the
/// wire encoding and the verifier's final comparison all avoid a field
/// inversion.
pub fn aggregate_commitments<I: IntoIterator<Item = Commitment>>(commitments: I) -> Point {
    commitments
        .into_iter()
        .map(|c| c.0)
        .sum::<Point>()
        .normalize()
}

/// Computes the collective challenge `c = H(enc(X) ‖ record)` (§2.2:
/// `ch = hash(X | R)`).
pub fn challenge(aggregate_commitment: &Point, record: &[u8]) -> Scalar {
    let digest = Sha256::digest_parts(&[
        b"fides.cosi.challenge.v1",
        &aggregate_commitment.to_compressed_bytes(),
        record,
    ]);
    Scalar::from_digest(&digest)
}

/// Aggregates the group's public keys: `P = Σ P_i`.
pub fn aggregate_public_keys<'a, I: IntoIterator<Item = &'a PublicKey>>(keys: I) -> Point {
    keys.into_iter().map(|k| k.point()).sum()
}

/// The final collective signature `(X, s)`: same size as one Schnorr
/// signature regardless of group size.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct CollectiveSignature {
    /// Aggregated commitment `X = Σ X_i`.
    pub aggregate_commitment: Point,
    /// Aggregated response `s = Σ r_i`.
    pub aggregate_response: Scalar,
}

impl CollectiveSignature {
    /// Phase 5 (leader): sum the responses into the final signature.
    pub fn assemble<I: IntoIterator<Item = Response>>(
        aggregate_commitment: Point,
        responses: I,
    ) -> CollectiveSignature {
        let s = responses.into_iter().fold(Scalar::ZERO, |acc, r| acc + r.0);
        CollectiveSignature {
            aggregate_commitment,
            aggregate_response: s,
        }
    }

    /// Verifies the co-sign over `record` for the given witness set.
    ///
    /// Cost is independent of the group size modulo the key aggregation
    /// (`ΣP_i`), exactly the CoSi property the paper relies on: "anyone
    /// with the public keys of all the involved servers can verify the
    /// co-sign and the verification cost is the same as verifying a
    /// single signature."
    ///
    /// Like [`PublicKey::verify`](crate::schnorr::PublicKey::verify),
    /// the check `s·G == X + c·ΣPᵢ` runs as one Strauss–Shamir
    /// double-scalar multiplication `s·G + (−c)·ΣPᵢ == X`.
    pub fn verify(&self, record: &[u8], public_keys: &[PublicKey]) -> bool {
        if public_keys.is_empty() {
            return false;
        }
        let c = challenge(&self.aggregate_commitment, record);
        let agg_pk = aggregate_public_keys(public_keys.iter());
        Point::mul_shamir_generator(&self.aggregate_response, &(-c), &agg_pk)
            == self.aggregate_commitment
    }

    /// A placeholder (all-zero) signature for blocks still under
    /// construction. Never verifies.
    pub fn placeholder() -> CollectiveSignature {
        CollectiveSignature {
            aggregate_commitment: Point::IDENTITY,
            aggregate_response: Scalar::ZERO,
        }
    }
}

/// Verifies `N` collective signatures for the **same witness set**
/// with one multi-scalar multiplication — the whole-log fast path used
/// by chain validation and audit catch-up.
///
/// Per item `i` the single check is `sᵢ·G == Xᵢ + cᵢ·P` with the shared
/// aggregate key `P = ΣPⱼ`. The random linear combination (128-bit
/// `zᵢ`, `z₀ = 1`) folds all of them into
///
/// ```text
/// Σ zᵢ·Xᵢ + (Σ zᵢ·cᵢ)·P  ==  (Σ zᵢ·sᵢ)·G
/// ```
///
/// — note the `P` terms collapse into a *single* point term, so the
/// marginal cost per additional block is one short-scalar ladder
/// contribution, far below a full verification. A `false` result does
/// not attribute blame; callers fall back to per-signature
/// [`CollectiveSignature::verify`] to pinpoint the offending item
/// (audit semantics preserved).
///
/// The empty batch is vacuously valid; an empty key set is invalid
/// (matching the single-verify contract).
pub fn verify_batch(items: &[(&[u8], CollectiveSignature)], public_keys: &[PublicKey]) -> bool {
    if items.is_empty() {
        return true;
    }
    if public_keys.is_empty() {
        return false;
    }
    if let [(record, sig)] = items {
        return sig.verify(record, public_keys);
    }
    let agg_pk = aggregate_public_keys(public_keys.iter());
    let challenges: Vec<Scalar> = items
        .iter()
        .map(|(record, sig)| challenge(&sig.aggregate_commitment, record))
        .collect();
    let zs = batch_randomizers(items, &challenges, public_keys);
    let mut s_combined = Scalar::ZERO;
    let mut c_combined = Scalar::ZERO;
    let mut terms = Vec::with_capacity(items.len() + 1);
    for ((_, sig), (c, z)) in items.iter().zip(challenges.iter().zip(&zs)) {
        s_combined = s_combined + *z * sig.aggregate_response;
        c_combined = c_combined + *z * *c;
        terms.push((*z, sig.aggregate_commitment));
    }
    terms.push((c_combined, agg_pk));
    Point::multi_mul(&terms) == Point::mul_generator(&s_combined)
}

/// Derives deterministic 128-bit batch randomizers (`z₀ = 1`).
///
/// The transcript commits to the witness set, every signature `(X, s)`
/// and its challenge `c = H(enc(X) ‖ record)` — the latter transitively
/// commits to the record under collision resistance.
fn batch_randomizers(
    items: &[(&[u8], CollectiveSignature)],
    challenges: &[Scalar],
    public_keys: &[PublicKey],
) -> Vec<Scalar> {
    let mut transcript = Sha256::new();
    transcript.update(b"fides.cosi.batch.v1");
    for pk in public_keys {
        transcript.update(&pk.to_bytes());
    }
    for ((_, sig), c) in items.iter().zip(challenges) {
        transcript.update(&sig.aggregate_commitment.to_compressed_bytes());
        transcript.update(&sig.aggregate_response.to_be_bytes());
        transcript.update(&c.to_be_bytes());
    }
    let seed = transcript.finalize();
    (0..items.len())
        .map(|i| {
            if i == 0 {
                return Scalar::ONE;
            }
            let digest = Sha256::digest_parts(&[
                b"fides.cosi.batch.z.v1",
                seed.as_bytes(),
                &(i as u64).to_be_bytes(),
            ]);
            let mut bytes = [0u8; 32];
            bytes[16..].copy_from_slice(&digest.as_bytes()[16..]);
            let z = Scalar::from_be_bytes(&bytes).expect("128-bit value is canonical");
            if z.is_zero() {
                Scalar::ONE
            } else {
                z
            }
        })
        .collect()
}

/// Checks each witness's partial response against its commitment:
/// `r_i·G == X_i + c·P_i`. Returns the indices of invalid responses.
///
/// This is the leader-side check behind Lemma 4 ("the coordinator … can
/// check partial signatures produced by excluding one server at a time
/// and detect the precise server without which the signature is valid") —
/// checking partials directly is equivalent and linear instead of
/// quadratic.
pub fn identify_invalid_responses(
    challenge: &Scalar,
    commitments: &[Commitment],
    responses: &[Response],
    public_keys: &[PublicKey],
) -> Vec<usize> {
    debug_assert_eq!(commitments.len(), responses.len());
    debug_assert_eq!(commitments.len(), public_keys.len());
    let mut bad = Vec::new();
    for (i, ((cm, resp), pk)) in commitments
        .iter()
        .zip(responses.iter())
        .zip(public_keys.iter())
        .enumerate()
    {
        let lhs = Point::mul_generator(&resp.0);
        let rhs = cm.0 + pk.point() * *challenge;
        if lhs != rhs {
            bad.push(i);
        }
    }
    bad
}

impl Encodable for CollectiveSignature {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_fixed(&self.aggregate_commitment.to_compressed_bytes());
        enc.put_fixed(&self.aggregate_response.to_be_bytes());
    }
}

impl Decodable for CollectiveSignature {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let mut xb = [0u8; 33];
        xb.copy_from_slice(dec.take_fixed(33)?);
        let x = Point::from_compressed_bytes(&xb)?;
        let mut sb = [0u8; 32];
        sb.copy_from_slice(dec.take_fixed(32)?);
        let s =
            Scalar::from_be_bytes(&sb).ok_or(DecodeError::InvalidValue("cosi response scalar"))?;
        Ok(CollectiveSignature {
            aggregate_commitment: x,
            aggregate_response: s,
        })
    }
}

impl Encodable for Commitment {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_fixed(&self.0.to_compressed_bytes());
    }
}

impl Decodable for Commitment {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let mut b = [0u8; 33];
        b.copy_from_slice(dec.take_fixed(33)?);
        Ok(Commitment(Point::from_compressed_bytes(&b)?))
    }
}

impl Encodable for Response {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_fixed(&self.0.to_be_bytes());
    }
}

impl Decodable for Response {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let mut b = [0u8; 32];
        b.copy_from_slice(dec.take_fixed(32)?);
        let s = Scalar::from_be_bytes(&b).ok_or(DecodeError::InvalidValue("response scalar"))?;
        Ok(Response(s))
    }
}

impl fmt::Debug for CollectiveSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CollectiveSignature(X={:?}, s={:?})",
            self.aggregate_commitment, self.aggregate_response
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_round(n: u8, record: &[u8]) -> (Vec<KeyPair>, CollectiveSignature) {
        let keys: Vec<KeyPair> = (0..n).map(|i| KeyPair::from_seed(&[i, n])).collect();
        let witnesses: Vec<Witness> = keys
            .iter()
            .map(|kp| Witness::commit(kp, b"round", record))
            .collect();
        let agg = aggregate_commitments(witnesses.iter().map(|w| w.commitment()));
        let c = challenge(&agg, record);
        let sig = CollectiveSignature::assemble(agg, witnesses.iter().map(|w| w.respond(&c)));
        (keys, sig)
    }

    #[test]
    fn full_round_verifies() {
        for n in [1u8, 2, 3, 5, 9] {
            let (keys, sig) = run_round(n, b"record");
            let pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();
            assert!(sig.verify(b"record", &pks), "n={n}");
        }
    }

    #[test]
    fn wrong_record_fails() {
        let (keys, sig) = run_round(4, b"record-a");
        let pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();
        assert!(!sig.verify(b"record-b", &pks));
    }

    #[test]
    fn missing_witness_key_fails() {
        let (keys, sig) = run_round(4, b"record");
        let pks: Vec<_> = keys.iter().skip(1).map(|k| k.public_key()).collect();
        assert!(!sig.verify(b"record", &pks));
    }

    #[test]
    fn extra_key_fails() {
        let (keys, sig) = run_round(3, b"record");
        let mut pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();
        pks.push(KeyPair::from_seed(b"outsider").public_key());
        assert!(!sig.verify(b"record", &pks));
    }

    #[test]
    fn corrupt_response_invalidates_signature() {
        let keys: Vec<KeyPair> = (0..4).map(|i| KeyPair::from_seed(&[i])).collect();
        let record = b"block";
        let witnesses: Vec<Witness> = keys
            .iter()
            .map(|kp| Witness::commit(kp, b"r", record))
            .collect();
        let agg = aggregate_commitments(witnesses.iter().map(|w| w.commitment()));
        let c = challenge(&agg, record);
        let mut responses: Vec<Response> = witnesses.iter().map(|w| w.respond(&c)).collect();
        responses[2] = witnesses[2].respond_corrupt(&c);
        let sig = CollectiveSignature::assemble(agg, responses.iter().copied());
        let pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();
        assert!(!sig.verify(record, &pks));
    }

    #[test]
    fn culprit_identification_lemma4() {
        let keys: Vec<KeyPair> = (0..5).map(|i| KeyPair::from_seed(&[i, 99])).collect();
        let record = b"block";
        let witnesses: Vec<Witness> = keys
            .iter()
            .map(|kp| Witness::commit(kp, b"r", record))
            .collect();
        let commitments: Vec<_> = witnesses.iter().map(|w| w.commitment()).collect();
        let agg = aggregate_commitments(commitments.iter().copied());
        let c = challenge(&agg, record);
        let mut responses: Vec<Response> = witnesses.iter().map(|w| w.respond(&c)).collect();
        // Witnesses 1 and 3 lie.
        responses[1] = witnesses[1].respond_corrupt(&c);
        responses[3] = witnesses[3].respond_corrupt(&c);
        let pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();
        let culprits = identify_invalid_responses(&c, &commitments, &responses, &pks);
        assert_eq!(culprits, vec![1, 3]);
    }

    #[test]
    fn no_culprits_when_honest() {
        let keys: Vec<KeyPair> = (0..3).map(|i| KeyPair::from_seed(&[i, 7])).collect();
        let witnesses: Vec<Witness> = keys
            .iter()
            .map(|kp| Witness::commit(kp, b"r", b"rec"))
            .collect();
        let commitments: Vec<_> = witnesses.iter().map(|w| w.commitment()).collect();
        let agg = aggregate_commitments(commitments.iter().copied());
        let c = challenge(&agg, b"rec");
        let responses: Vec<Response> = witnesses.iter().map(|w| w.respond(&c)).collect();
        let pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();
        assert!(identify_invalid_responses(&c, &commitments, &responses, &pks).is_empty());
    }

    #[test]
    fn signature_encoding_roundtrip() {
        let (_, sig) = run_round(3, b"enc");
        let decoded = CollectiveSignature::decode(&sig.encode()).unwrap();
        assert_eq!(decoded, sig);
    }

    #[test]
    fn placeholder_never_verifies() {
        let keys: Vec<_> = (0..2)
            .map(|i| KeyPair::from_seed(&[i]).public_key())
            .collect();
        assert!(!CollectiveSignature::placeholder().verify(b"anything", &keys));
    }

    #[test]
    fn distinct_rounds_distinct_commitments() {
        let kp = KeyPair::from_seed(b"w");
        let w1 = Witness::commit(&kp, b"round-1", b"rec");
        let w2 = Witness::commit(&kp, b"round-2", b"rec");
        assert_ne!(w1.commitment(), w2.commitment());
    }

    #[test]
    fn empty_key_set_rejected() {
        let (_, sig) = run_round(2, b"x");
        assert!(!sig.verify(b"x", &[]));
    }

    #[test]
    fn challenge_binds_commitment_and_record() {
        let p1 = Point::generator();
        let p2 = Point::generator().double();
        assert_ne!(challenge(&p1, b"r"), challenge(&p2, b"r"));
        assert_ne!(challenge(&p1, b"r1"), challenge(&p1, b"r2"));
    }

    /// `n` rounds signed by the same witness set, distinct records.
    fn signed_batch(rounds: usize, keys: &[KeyPair]) -> (Vec<Vec<u8>>, Vec<CollectiveSignature>) {
        let mut records = Vec::with_capacity(rounds);
        let mut sigs = Vec::with_capacity(rounds);
        for r in 0..rounds {
            let record = format!("block #{r}").into_bytes();
            let witnesses: Vec<Witness> = keys
                .iter()
                .map(|k| Witness::commit(k, &(r as u64).to_be_bytes(), &record))
                .collect();
            let agg = aggregate_commitments(witnesses.iter().map(|w| w.commitment()));
            let c = challenge(&agg, &record);
            sigs.push(CollectiveSignature::assemble(
                agg,
                witnesses.iter().map(|w| w.respond(&c)),
            ));
            records.push(record);
        }
        (records, sigs)
    }

    fn batch_items<'a>(
        records: &'a [Vec<u8>],
        sigs: &[CollectiveSignature],
    ) -> Vec<(&'a [u8], CollectiveSignature)> {
        records
            .iter()
            .map(Vec::as_slice)
            .zip(sigs.iter().copied())
            .collect()
    }

    #[test]
    fn batch_accepts_valid_log() {
        let keys: Vec<KeyPair> = (0..4).map(|i| KeyPair::from_seed(&[i, 0xC1])).collect();
        let pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();
        for rounds in [0usize, 1, 2, 5, 16] {
            let (records, sigs) = signed_batch(rounds, &keys);
            assert!(
                verify_batch(&batch_items(&records, &sigs), &pks),
                "rounds={rounds}"
            );
        }
    }

    #[test]
    fn batch_rejects_one_bad_block() {
        let keys: Vec<KeyPair> = (0..4).map(|i| KeyPair::from_seed(&[i, 0xC2])).collect();
        let pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();
        let (records, mut sigs) = signed_batch(7, &keys);
        sigs[3].aggregate_response = sigs[3].aggregate_response + Scalar::ONE;
        let items = batch_items(&records, &sigs);
        assert!(!verify_batch(&items, &pks));
        // The per-signature fallback pinpoints block 3.
        let bad: Vec<usize> = items
            .iter()
            .enumerate()
            .filter(|(_, (rec, sig))| !sig.verify(rec, &pks))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(bad, vec![3]);
    }

    #[test]
    fn batch_rejects_placeholder_in_log() {
        let keys: Vec<KeyPair> = (0..3).map(|i| KeyPair::from_seed(&[i, 0xC3])).collect();
        let pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();
        let (records, mut sigs) = signed_batch(4, &keys);
        sigs[2] = CollectiveSignature::placeholder();
        assert!(!verify_batch(&batch_items(&records, &sigs), &pks));
    }

    #[test]
    fn batch_rejects_wrong_witness_set() {
        let keys: Vec<KeyPair> = (0..3).map(|i| KeyPair::from_seed(&[i, 0xC4])).collect();
        let (records, sigs) = signed_batch(3, &keys);
        let other: Vec<_> = (0..3u8)
            .map(|i| KeyPair::from_seed(&[i, 0xC5]).public_key())
            .collect();
        assert!(!verify_batch(&batch_items(&records, &sigs), &other));
    }

    #[test]
    fn batch_rejects_empty_key_set() {
        let keys: Vec<KeyPair> = (0..2).map(|i| KeyPair::from_seed(&[i, 0xC6])).collect();
        let (records, sigs) = signed_batch(2, &keys);
        assert!(!verify_batch(&batch_items(&records, &sigs), &[]));
    }

    #[test]
    fn batch_agrees_with_individual_verifies() {
        let keys: Vec<KeyPair> = (0..3).map(|i| KeyPair::from_seed(&[i, 0xC7])).collect();
        let pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();
        let (records, mut sigs) = signed_batch(5, &keys);
        let agree = |records: &[Vec<u8>], sigs: &[CollectiveSignature], pks: &[PublicKey]| {
            let batch = verify_batch(&batch_items(records, sigs), pks);
            let individual = records.iter().zip(sigs).all(|(r, s)| s.verify(r, pks));
            batch == individual
        };
        assert!(agree(&records, &sigs, &pks));
        sigs[0].aggregate_response = sigs[0].aggregate_response + Scalar::ONE;
        assert!(agree(&records, &sigs, &pks));
    }
}
