//! Cryptographic substrate for the Fides auditable data management system.
//!
//! Everything in this crate is implemented from scratch — no external
//! cryptography dependencies — because digital signatures, collective
//! signing and Merkle hash trees are the subject matter of the paper this
//! repository reproduces (*Fides: Managing Data on Untrusted
//! Infrastructure*, Maiyya et al., ICDCS 2020).
//!
//! The crate provides:
//!
//! * [`sha256`] — the SHA-256 hash function and HMAC-SHA256,
//! * [`field`] / [`scalar`] / [`point`] — secp256k1 arithmetic,
//! * [`schnorr`] — Schnorr digital signatures (§2.1 of the paper),
//! * [`cosi`] — CoSi collective signing (§2.2),
//! * [`merkle`] — Merkle hash trees with verification objects (§2.3),
//! * [`encoding`] — a canonical binary encoding used for everything that
//!   is hashed or signed.
//!
//! # Example
//!
//! ```
//! use fides_crypto::schnorr::KeyPair;
//!
//! let kp = KeyPair::from_seed(b"server-1");
//! let sig = kp.sign(b"end transaction");
//! assert!(kp.public_key().verify(b"end transaction", &sig));
//! ```
//!
//! # Security note
//!
//! The implementation favours clarity over side-channel resistance: scalar
//! multiplication is not constant-time. That is adequate for a research
//! reproduction whose threat model (the paper's §3.2) is about *detecting*
//! misbehaving servers, not about hiding keys from co-located attackers.

pub mod cosi;
pub mod encoding;
pub mod hash;
pub mod merkle;
pub mod point;
pub mod schnorr;
pub mod sha256;

pub mod field;
pub mod scalar;

mod arith;

pub use hash::Digest;
pub use merkle::{MerkleTree, VerificationObject};
pub use point::Point;
pub use schnorr::{KeyPair, PublicKey, SecretKey, Signature};
pub use sha256::Sha256;
