//! Cryptographic substrate for the Fides auditable data management system.
//!
//! Everything in this crate is implemented from scratch — no external
//! cryptography dependencies — because digital signatures, collective
//! signing and Merkle hash trees are the subject matter of the paper this
//! repository reproduces (*Fides: Managing Data on Untrusted
//! Infrastructure*, Maiyya et al., ICDCS 2020).
//!
//! The crate provides:
//!
//! * [`sha256`] — the SHA-256 hash function and HMAC-SHA256,
//! * [`field`] / [`scalar`] / [`point`] — secp256k1 arithmetic,
//! * [`schnorr`] — Schnorr digital signatures (§2.1 of the paper),
//! * [`cosi`] — CoSi collective signing (§2.2),
//! * [`merkle`] — Merkle hash trees with verification objects (§2.3),
//! * [`encoding`] — a canonical binary encoding used for everything that
//!   is hashed or signed.
//!
//! # The verification engine
//!
//! The paper attributes TFCommit's entire overhead over 2PC to its
//! "additional computations" — collective signing and Merkle hashing
//! (§6.1) — so signature *verification* is this crate's hot path and is
//! built as a layered fast path:
//!
//! * **Scalar recoding** — [`scalar`] produces width-`w` non-adjacent
//!   forms (wNAF) by a single carry scan, so a 256-bit scalar costs
//!   `~256/(w+1)` point additions in a ladder.
//! * **Double-scalar multiplication** —
//!   [`point::Point::mul_shamir_generator`] evaluates `a·G + b·P`
//!   (the shape of every Schnorr/CoSi check, `s·G − e·P = R`) with one
//!   Strauss–Shamir shared doubling ladder, a static batch-affine table
//!   of odd generator multiples, and mixed Jacobian+affine additions.
//! * **Batch verification** — [`schnorr::verify_batch`] and
//!   [`cosi::verify_batch`] fold `N` signatures into one
//!   random-linear-combination check evaluated by
//!   [`point::Point::multi_mul`], whose per-point odd-multiple tables
//!   and per-bit digit reductions both run as *batched affine*
//!   additions: Montgomery's trick shares one field inversion across
//!   each batch of independent additions. A failing batch falls back to
//!   per-signature verification ([`schnorr::find_invalid`]), so audit
//!   attribution is unaffected.
//!
//! Measured on the reference dev machine (release build, medians):
//! `schnorr/verify` 162.8 µs → 51.9 µs (3.1×) versus the seed's two
//! independent full-width multiplications; `schnorr/verify_batch` of 64
//! signatures 1.70 ms versus 5.54 ms for 64 sequential verifies (3.3×);
//! `cosi/verify_batch` of 64 same-witness-set blocks — the
//! whole-log-validation shape — 0.92 ms versus 5.73 ms (6.2×).
//!
//! # Example
//!
//! ```
//! use fides_crypto::schnorr::KeyPair;
//!
//! let kp = KeyPair::from_seed(b"server-1");
//! let sig = kp.sign(b"end transaction");
//! assert!(kp.public_key().verify(b"end transaction", &sig));
//! ```
//!
//! # Security note
//!
//! The implementation favours clarity over side-channel resistance: scalar
//! multiplication is not constant-time. That is adequate for a research
//! reproduction whose threat model (the paper's §3.2) is about *detecting*
//! misbehaving servers, not about hiding keys from co-located attackers.

pub mod cosi;
pub mod encoding;
pub mod hash;
pub mod merkle;
pub mod point;
pub mod schnorr;
pub mod sha256;

pub mod field;
pub mod scalar;

mod arith;
mod safegcd;

pub use hash::Digest;
pub use merkle::{MerkleTree, MultiProof, VerificationObject};
pub use point::Point;
pub use schnorr::{KeyPair, PublicKey, SecretKey, Signature};
pub use sha256::Sha256;
