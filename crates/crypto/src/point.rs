//! secp256k1 group arithmetic: `y² = x³ + 7` over `F_p`.
//!
//! Points are kept in Jacobian projective coordinates `(X, Y, Z)` with
//! affine `x = X/Z²`, `y = Y/Z³`; `Z = 0` encodes the point at infinity
//! (the group identity).
//!
//! Besides the classic windowed [`Point::mul_scalar`], the module
//! provides the **verification engine** the upper layers build on:
//!
//! * [`AffinePoint`] and [`Point::add_affine`] — mixed Jacobian+affine
//!   addition (`7M + 4S` instead of `11M + 5S`),
//! * [`Point::batch_normalize`] — Montgomery's trick: `N` points are
//!   converted to affine with a **single** field inversion,
//! * [`Point::mul_shamir_generator`] — the Strauss–Shamir double-scalar
//!   multiplication `a·G + b·P` with interleaved wNAF digits, sharing
//!   one doubling ladder between both scalars (the shape of every
//!   Schnorr/CoSi verification),
//! * [`Point::multi_mul`] — `Σ aᵢ·Pᵢ` over an arbitrary term list with
//!   batch-normalized per-point odd-multiple tables (the shape of batch
//!   signature verification).

use core::fmt;
use core::ops::{Add, Neg};

use crate::encoding::DecodeError;
use crate::field::FieldElement;
use crate::scalar::Scalar;

/// A point on secp256k1 (including the identity).
///
/// # Example
///
/// ```
/// use fides_crypto::point::Point;
/// use fides_crypto::scalar::Scalar;
///
/// let g = Point::generator();
/// let two_g = g * Scalar::from_u64(2);
/// assert_eq!(g + g, two_g);
/// ```
#[derive(Clone, Copy)]
pub struct Point {
    x: FieldElement,
    y: FieldElement,
    z: FieldElement,
}

/// Generator x-coordinate.
const GX: [u64; 4] = [
    0x59F2_815B_16F8_1798,
    0x029B_FCDB_2DCE_28D9,
    0x55A0_6295_CE87_0B07,
    0x79BE_667E_F9DC_BBAC,
];

/// Generator y-coordinate.
const GY: [u64; 4] = [
    0x9C47_D08F_FB10_D4B8,
    0xFD17_B448_A685_5419,
    0x5DA4_FBFC_0E11_08A8,
    0x483A_DA77_26A3_C465,
];

/// The GLV endomorphism constant `β`: a primitive cube root of unity in
/// the base field, with `λ·(x, y) = (β·x, y)` for `λ` =
/// [`crate::scalar::LAMBDA`]. Applying the endomorphism is one field
/// multiplication — that asymmetry is what makes the GLV split pay.
const BETA: [u64; 4] = [
    0xC139_6C28_7195_01EE,
    0x9CF0_4975_12F5_8995,
    0x6E64_479E_AC34_34E9,
    0x7AE9_6A2B_657C_0710,
];

#[inline]
fn beta() -> FieldElement {
    FieldElement::from_limbs(BETA)
}

impl Point {
    /// The group identity (point at infinity).
    pub const IDENTITY: Point = Point {
        x: FieldElement::ONE,
        y: FieldElement::ONE,
        z: FieldElement::ZERO,
    };

    /// The standard secp256k1 base point `G`.
    pub fn generator() -> Point {
        Point {
            x: FieldElement::from_limbs(GX),
            y: FieldElement::from_limbs(GY),
            z: FieldElement::ONE,
        }
    }

    /// Constructs a point from affine coordinates, checking the curve
    /// equation.
    pub fn from_affine(x: FieldElement, y: FieldElement) -> Option<Point> {
        let lhs = y.square();
        let rhs = x.square() * x + FieldElement::SEVEN;
        if lhs == rhs {
            Some(Point {
                x,
                y,
                z: FieldElement::ONE,
            })
        } else {
            None
        }
    }

    /// Returns `true` for the identity.
    #[inline]
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// Converts to affine coordinates; `None` for the identity.
    pub fn to_affine(&self) -> Option<(FieldElement, FieldElement)> {
        if self.is_identity() {
            return None;
        }
        if self.z == FieldElement::ONE {
            // Already normalized (e.g. freshly decoded): skip the
            // field inversion entirely.
            return Some((self.x, self.y));
        }
        let z_inv = self.z.invert().expect("non-identity point has z != 0");
        let z_inv2 = z_inv.square();
        let z_inv3 = z_inv2 * z_inv;
        Some((self.x * z_inv2, self.y * z_inv3))
    }

    /// Returns the same point with `Z = 1` (or the identity unchanged).
    ///
    /// Normalizing once at a trust boundary (key construction, fresh
    /// signatures) makes every later encoding/equality/mixed-addition
    /// of the point cheap.
    pub fn normalize(&self) -> Point {
        match self.to_affine() {
            None => Point::IDENTITY,
            Some((x, y)) => Point {
                x,
                y,
                z: FieldElement::ONE,
            },
        }
    }

    /// Point doubling (Jacobian, a = 0 formulas).
    #[inline]
    pub fn double(&self) -> Point {
        if self.is_identity() || self.y.is_zero() {
            return Point::IDENTITY;
        }
        let a = self.x.square();
        let b = self.y.square();
        let c = b.square();
        // D = 2*((X+B)^2 - A - C)
        let d = {
            let t = (self.x + b).square() - a - c;
            t + t
        };
        let e = a + a + a; // 3*X^2  (a = 0 curve)
        let f = e.square();
        let x3 = f - (d + d);
        let c8 = {
            let c2 = c + c;
            let c4 = c2 + c2;
            c4 + c4
        };
        let y3 = e * (d - x3) - c8;
        let z3 = {
            let t = self.y * self.z;
            t + t
        };
        Point {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Fast fixed-base multiplication `k·G` using a lazily built
    /// 8-bit-window table (32 windows × 256 entries): at most 31 point
    /// additions and no doublings. The table is stored **batch-affine**
    /// (normalized with a single field inversion at build time), so
    /// every table hit is a mixed addition. Signing and nonce
    /// commitments go through this path.
    pub fn mul_generator(k: &Scalar) -> Point {
        let table = generator_table();
        let bytes = k.to_be_bytes(); // big-endian: bytes[31] is window 0
        let mut acc = Point::IDENTITY;
        for (w, byte) in bytes.iter().rev().enumerate() {
            let d = *byte as usize;
            if d != 0 {
                acc = acc.add_affine(&table[w * 256 + d]);
            }
        }
        acc
    }

    /// Multiplies by a scalar with a 4-bit window.
    pub fn mul_scalar(&self, k: &Scalar) -> Point {
        if k.is_zero() || self.is_identity() {
            return Point::IDENTITY;
        }
        // Precompute 1P..15P.
        let mut table = [Point::IDENTITY; 16];
        table[1] = *self;
        for i in 2..16 {
            table[i] = table[i - 1] + *self;
        }
        let mut acc = Point::IDENTITY;
        for w in (0..64).rev() {
            for _ in 0..4 {
                acc = acc.double();
            }
            let nib = k.nibble(w) as usize;
            if nib != 0 {
                acc = acc + table[nib];
            }
        }
        acc
    }

    /// Compressed SEC1-style encoding: 33 bytes, prefix `0x02`/`0x03` by
    /// y-parity; the identity encodes as 33 zero bytes.
    pub fn to_compressed_bytes(&self) -> [u8; 33] {
        let mut out = [0u8; 33];
        match self.to_affine() {
            None => out, // identity: all zeros
            Some((x, y)) => {
                out[0] = if y.is_odd() { 0x03 } else { 0x02 };
                out[1..].copy_from_slice(&x.to_be_bytes());
                out
            }
        }
    }

    /// Decodes a compressed point; validates the curve equation.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::InvalidValue`] if the prefix byte is
    /// unknown, the x-coordinate is non-canonical, or x³+7 has no square
    /// root.
    pub fn from_compressed_bytes(bytes: &[u8; 33]) -> Result<Point, DecodeError> {
        if bytes.iter().all(|&b| b == 0) {
            return Ok(Point::IDENTITY);
        }
        let parity_odd = match bytes[0] {
            0x02 => false,
            0x03 => true,
            _ => return Err(DecodeError::InvalidValue("point prefix byte")),
        };
        let mut xb = [0u8; 32];
        xb.copy_from_slice(&bytes[1..]);
        let x = FieldElement::from_be_bytes(&xb)
            .ok_or(DecodeError::InvalidValue("x coordinate not canonical"))?;
        let y2 = x.square() * x + FieldElement::SEVEN;
        let mut y = y2
            .sqrt()
            .ok_or(DecodeError::InvalidValue("x not on curve"))?;
        if y.is_odd() != parity_odd {
            y = -y;
        }
        Ok(Point {
            x,
            y,
            z: FieldElement::ONE,
        })
    }

    /// Binary double-and-add multiplication — used in tests as an
    /// independent check on the windowed implementation.
    #[doc(hidden)]
    pub fn mul_scalar_binary(&self, k: &Scalar) -> Point {
        let mut acc = Point::IDENTITY;
        for i in (0..256).rev() {
            acc = acc.double();
            if k.bit(i) {
                acc = acc + *self;
            }
        }
        acc
    }

    /// The curve endomorphism `φ(x, y) = (β·x, y)`, which equals
    /// multiplication by `λ` ([`crate::scalar::LAMBDA`]) at the cost of
    /// a single field multiplication. In Jacobian coordinates scaling
    /// `X` scales the affine `x = X/Z²` identically.
    pub fn endomorphism(&self) -> Point {
        Point {
            x: self.x * beta(),
            y: self.y,
            z: self.z,
        }
    }

    /// Mixed addition `self + rhs` where `rhs` is affine (`Z₂ = 1`):
    /// 7M + 4S versus 11M + 5S for the general Jacobian formula
    /// (madd-2007-bl), with the usual identity/doubling fallbacks.
    #[inline]
    pub fn add_affine(&self, rhs: &AffinePoint) -> Point {
        if rhs.infinity {
            return *self;
        }
        if self.is_identity() {
            return Point {
                x: rhs.x,
                y: rhs.y,
                z: FieldElement::ONE,
            };
        }
        let z1z1 = self.z.square();
        let u2 = rhs.x * z1z1;
        let s2 = rhs.y * self.z * z1z1;
        if u2 == self.x {
            if s2 == self.y {
                return self.double();
            }
            return Point::IDENTITY; // P + (-P)
        }
        let h = u2 - self.x;
        let hh = h.square();
        let i = {
            let hh4 = hh + hh;
            hh4 + hh4
        };
        let j = h * i;
        let r = {
            let t = s2 - self.y;
            t + t
        };
        let v = self.x * i;
        let x3 = r.square() - j - (v + v);
        let y3 = {
            let yj = self.y * j;
            r * (v - x3) - (yj + yj)
        };
        let z3 = (self.z + h).square() - z1z1 - hh;
        Point {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Converts a batch of points to affine with a **single** field
    /// inversion (Montgomery's trick): multiply a running prefix of the
    /// `Z` coordinates, invert the total once, then walk backwards
    /// emitting each `Z⁻¹`. Identity points map to the affine point at
    /// infinity.
    pub fn batch_normalize(points: &[Point]) -> Vec<AffinePoint> {
        // Prefix products over the non-identity zs.
        let mut prefix = Vec::with_capacity(points.len());
        let mut acc = FieldElement::ONE;
        for p in points {
            if !p.is_identity() {
                acc = acc * p.z;
            }
            prefix.push(acc);
        }
        let mut inv = match acc.invert() {
            Some(inv) => inv,
            // All inputs are the identity.
            None => FieldElement::ONE,
        };
        let mut out = vec![AffinePoint::IDENTITY; points.len()];
        for idx in (0..points.len()).rev() {
            let p = &points[idx];
            if p.is_identity() {
                continue;
            }
            // prefix[idx] = z_0 ⋯ z_idx, so inv * prefix[idx-1] = z_idx⁻¹.
            let prev = if idx == 0 {
                FieldElement::ONE
            } else {
                prefix[idx - 1]
            };
            let z_inv = inv * prev;
            inv = inv * p.z;
            let z_inv2 = z_inv.square();
            out[idx] = AffinePoint {
                x: p.x * z_inv2,
                y: p.y * z_inv2 * z_inv,
                infinity: false,
            };
        }
        out
    }

    /// Strauss–Shamir double-scalar multiplication `a·G + b·P` with GLV
    /// splitting.
    ///
    /// Both scalars are decomposed as `k = ±k1 + λ·(±k2)` with
    /// half-width halves ([`Scalar::split_glv`]), turning the sum into
    /// four half-width terms — `a1·G + a2·φ(G) + b1·P + b2·φ(P)` —
    /// recoded to wNAF and walked over one **shared** doubling ladder
    /// of ~130 doublings (half the pre-GLV count). The generator halves
    /// resolve against static affine tables of odd multiples of `G` and
    /// `φ(G)`; `P`'s halves against a per-call batch-normalized table
    /// (one shared field inversion for all 16 entries, so every ladder
    /// addition is a mixed addition).
    ///
    /// This is the shape of every Schnorr/CoSi verification:
    /// `s·G − e·P = R`.
    pub fn mul_shamir_generator(a: &Scalar, b: &Scalar, p: &Point) -> Point {
        if b.is_zero() || p.is_identity() {
            return Point::mul_generator(a);
        }
        if a.is_zero() {
            return p.mul_scalar(b);
        }
        let ((a1, sa1), (a2, sa2)) = a.split_glv();
        let ((b1, sb1), (b2, sb2)) = b.split_glv();
        let na1 = a1.wnaf(GEN_WNAF_WIDTH);
        let na2 = a2.wnaf(GEN_WNAF_WIDTH);
        let nb1 = b1.wnaf(5);
        let nb2 = b2.wnaf(5);
        // Odd multiples P, 3P, …, 15P and their endomorphism images,
        // batch-normalized together: one field inversion for 16 mixed-
        // addition-ready table entries.
        let jacobian = odd_multiples::<8>(p);
        let mut both = Vec::with_capacity(16);
        both.extend_from_slice(&jacobian);
        both.extend(jacobian.iter().map(Point::endomorphism));
        let table = Point::batch_normalize(&both);
        let (table_p, table_pe) = table.split_at(8);
        let signed = |d: i8, negate: bool| if negate { -d } else { d };
        let table_digit = |acc: Point, d: i8, table: &[AffinePoint]| {
            let entry = table[(d.unsigned_abs() as usize - 1) / 2];
            acc.add_affine(&if d < 0 { entry.neg() } else { entry })
        };
        let len = na1.len().max(na2.len()).max(nb1.len()).max(nb2.len());
        let mut acc = Point::IDENTITY;
        for i in (0..len).rev() {
            acc = acc.double();
            if let Some(&d) = na1.get(i) {
                if d != 0 {
                    acc = acc.add_affine(&generator_wnaf_entry(signed(d, sa1)));
                }
            }
            if let Some(&d) = na2.get(i) {
                if d != 0 {
                    acc = acc.add_affine(&generator_endo_wnaf_entry(signed(d, sa2)));
                }
            }
            if let Some(&d) = nb1.get(i) {
                if d != 0 {
                    acc = table_digit(acc, signed(d, sb1), table_p);
                }
            }
            if let Some(&d) = nb2.get(i) {
                if d != 0 {
                    acc = table_digit(acc, signed(d, sb2), table_pe);
                }
            }
        }
        acc
    }

    /// The pre-GLV Strauss–Shamir ladder (full-width wNAF over ~256
    /// doublings). Kept as a differential-test oracle and the "before"
    /// side of the GLV speedup microbenchmark — not a production path.
    #[doc(hidden)]
    pub fn mul_shamir_generator_wnaf(a: &Scalar, b: &Scalar, p: &Point) -> Point {
        if b.is_zero() || p.is_identity() {
            return Point::mul_generator(a);
        }
        if a.is_zero() {
            return p.mul_scalar(b);
        }
        let na = a.wnaf(GEN_WNAF_WIDTH);
        let nb = b.wnaf(5);
        let table_p = odd_multiples::<8>(p);
        let len = na.len().max(nb.len());
        let mut acc = Point::IDENTITY;
        for i in (0..len).rev() {
            acc = acc.double();
            if let Some(&d) = na.get(i) {
                if d != 0 {
                    acc = acc.add_affine(&generator_wnaf_entry(d));
                }
            }
            if let Some(&d) = nb.get(i) {
                if d > 0 {
                    acc = acc + table_p[(d as usize - 1) / 2];
                } else if d < 0 {
                    acc = acc + (-table_p[((-d) as usize - 1) / 2]);
                }
            }
        }
        acc
    }

    /// Multi-scalar multiplication `Σ aᵢ·Pᵢ` (Strauss' interleaved wNAF
    /// with batch-affine tables).
    ///
    /// All per-point odd-multiple tables are normalized to affine with
    /// **one** field inversion (Montgomery's trick), so every ladder
    /// addition is a cheap mixed addition. The ladder length adapts to
    /// the largest scalar, so short (e.g. 128-bit randomizer) scalars
    /// cost proportionally less — the property batch verification's
    /// random linear combination relies on.
    ///
    /// Terms with a zero scalar or identity point are skipped.
    ///
    /// Wide scalars are first GLV-split ([`Scalar::split_glv`]) into
    /// two half-width terms against `P` and `φ(P)` (one field
    /// multiplication per split), so the shared ladder shrinks to
    /// ~130 doublings even when full-width scalars are present — batch
    /// verification's 128-bit randomizer terms and the split halves
    /// then all have comparable length.
    pub fn multi_mul(terms: &[(Scalar, Point)]) -> Point {
        let mut live: Vec<(Scalar, Point)> = Vec::with_capacity(terms.len());
        for (a, p) in terms {
            if a.is_zero() || p.is_identity() {
                continue;
            }
            if a.bits() > 160 {
                let ((k1, s1), (k2, s2)) = a.split_glv();
                if !k1.is_zero() {
                    live.push((k1, if s1 { -*p } else { *p }));
                }
                if !k2.is_zero() {
                    let pe = p.endomorphism();
                    live.push((k2, if s2 { -pe } else { pe }));
                }
            } else {
                live.push((*a, *p));
            }
        }
        if live.is_empty() {
            return Point::IDENTITY;
        }
        // Pick a wNAF width per term by scalar size and batch size. A
        // table of `2^(w-2)` odd multiples costs real work to build, so
        // short scalars (batch-verification randomizers are 128-bit)
        // get narrower windows. Large batches amortize table building
        // across terms (column-batched affine additions below), which
        // shifts the optimum toward wider windows.
        let column_batched = live.len() >= 16;
        let widths: Vec<u32> = live
            .iter()
            .map(|(a, _)| match (column_batched, a.bits()) {
                (_, 0..=40) => 3,
                (_, 41..=160) => 4,
                (false, _) => 5,
                (true, _) => 6,
            })
            .collect();
        let table_sizes: Vec<usize> = widths.iter().map(|&w| 1usize << (w - 2)).collect();
        let mut offsets = Vec::with_capacity(live.len());
        let mut total = 0u32;
        for &size in &table_sizes {
            offsets.push(total);
            total += size as u32;
        }

        let affine: Vec<AffinePoint> = if column_batched {
            // Odd-multiple tables built **in affine form** with batched
            // additions: each table column `(2j+1)·P` across all points
            // is one batch of independent affine additions sharing a
            // single field inversion. Replaces per-point Jacobian table
            // chains plus a final normalization pass; the per-column
            // inversion amortizes once enough points share it.
            let base_points: Vec<Point> = live.iter().map(|(_, p)| *p).collect();
            let base = Point::batch_normalize(&base_points);
            let doubled = batch_double_affine(&base);
            let mut affine = vec![AffinePoint::IDENTITY; total as usize];
            for (t, b) in base.iter().enumerate() {
                affine[offsets[t] as usize] = *b;
            }
            let max_size = table_sizes.iter().copied().max().unwrap_or(1);
            for j in 1..max_size {
                let idx: Vec<usize> = (0..live.len()).filter(|&t| table_sizes[t] > j).collect();
                let lhs: Vec<AffinePoint> = idx
                    .iter()
                    .map(|&t| affine[offsets[t] as usize + j - 1])
                    .collect();
                let rhs: Vec<AffinePoint> = idx.iter().map(|&t| doubled[t]).collect();
                let sums = batch_add_affine(&lhs, &rhs);
                for (&t, s) in idx.iter().zip(sums) {
                    affine[offsets[t] as usize + j] = s;
                }
            }
            affine
        } else {
            // Few terms: Jacobian chains plus one batch normalization.
            let mut jacobian = Vec::with_capacity(total as usize);
            for ((_, p), &size) in live.iter().zip(&table_sizes) {
                match size {
                    2 => jacobian.extend_from_slice(&odd_multiples::<2>(p)),
                    4 => jacobian.extend_from_slice(&odd_multiples::<4>(p)),
                    _ => jacobian.extend_from_slice(&odd_multiples::<8>(p)),
                }
            }
            Point::batch_normalize(&jacobian)
        };

        // Bucket the (sparse) wNAF digit contributions by bit position.
        let mut len = 0usize;
        let nafs: Vec<Vec<i8>> = live
            .iter()
            .zip(&widths)
            .map(|((a, _), &w)| {
                let naf = a.wnaf(w);
                len = len.max(naf.len());
                naf
            })
            .collect();
        let mut buckets: Vec<Vec<AffinePoint>> = vec![Vec::new(); len];
        for (t, naf) in nafs.iter().enumerate() {
            for (i, &d) in naf.iter().enumerate() {
                if d != 0 {
                    let entry = affine[(offsets[t] + (d.unsigned_abs() as u32 - 1) / 2) as usize];
                    buckets[i].push(if d < 0 { entry.neg() } else { entry });
                }
            }
        }

        // Tree-reduce every bucket to at most one point. All pairwise
        // additions of one tree level — across every bit position — are
        // independent, so each level is a single batched affine-addition
        // pass (3 field muls per addition plus one shared inversion),
        // instead of a serial chain of 11-mul mixed additions into the
        // accumulator. This is where batch verification's arithmetic
        // advantage over sequential verification comes from.
        loop {
            let mut lhs = Vec::new();
            let mut rhs = Vec::new();
            for bucket in &buckets {
                let mut j = 0;
                while j + 1 < bucket.len() {
                    lhs.push(bucket[j]);
                    rhs.push(bucket[j + 1]);
                    j += 2;
                }
            }
            if lhs.is_empty() {
                break;
            }
            let sums = batch_add_affine(&lhs, &rhs);
            let mut consumed = 0usize;
            for bucket in buckets.iter_mut() {
                let pairs = bucket.len() / 2;
                let leftover = if bucket.len() % 2 == 1 {
                    bucket.pop()
                } else {
                    None
                };
                bucket.clear();
                bucket.extend_from_slice(&sums[consumed..consumed + pairs]);
                consumed += pairs;
                if let Some(l) = leftover {
                    bucket.push(l);
                }
            }
        }

        // Final ladder: one doubling per bit, at most one mixed
        // addition per bit position.
        let mut acc = Point::IDENTITY;
        for i in (0..len).rev() {
            acc = acc.double();
            if let Some(point) = buckets[i].first() {
                acc = acc.add_affine(point);
            }
        }
        acc
    }
}

/// Computes the odd multiples `P, 3P, 5P, …, (2N−1)P` in Jacobian form.
fn odd_multiples<const N: usize>(p: &Point) -> [Point; N] {
    let twice = p.double();
    let mut table = [*p; N];
    for i in 1..N {
        table[i] = table[i - 1] + twice;
    }
    table
}

/// Element-wise affine doubling `out[i] = 2·a[i]` with one shared field
/// inversion (`λ = 3x²/2y`). Identity inputs double to the identity.
fn batch_double_affine(points: &[AffinePoint]) -> Vec<AffinePoint> {
    let mut denominators: Vec<FieldElement> = points
        .iter()
        .map(|p| {
            if p.infinity {
                FieldElement::ZERO
            } else {
                p.y + p.y
            }
        })
        .collect();
    FieldElement::batch_invert(&mut denominators);
    points
        .iter()
        .zip(&denominators)
        .map(|(p, inv)| {
            if p.infinity || inv.is_zero() {
                // Identity, or y = 0 (no such secp256k1 point, but stay
                // total): tangent is vertical, result is the identity.
                return AffinePoint::IDENTITY;
            }
            let x2 = p.x.square();
            let lambda = (x2 + x2 + x2) * *inv;
            let x3 = lambda.square() - p.x - p.x;
            let y3 = lambda * (p.x - x3) - p.y;
            AffinePoint {
                x: x3,
                y: y3,
                infinity: false,
            }
        })
        .collect()
}

/// Element-wise affine addition `out[i] = a[i] + b[i]` with one shared
/// field inversion (`λ = (y₂−y₁)/(x₂−x₁)`). Degenerate pairs (an
/// identity operand, or equal x-coordinates) fall back to the generic
/// Jacobian path.
fn batch_add_affine(a: &[AffinePoint], b: &[AffinePoint]) -> Vec<AffinePoint> {
    debug_assert_eq!(a.len(), b.len());
    let mut denominators: Vec<FieldElement> = a
        .iter()
        .zip(b)
        .map(|(p, q)| {
            if p.infinity || q.infinity || p.x == q.x {
                FieldElement::ZERO
            } else {
                q.x - p.x
            }
        })
        .collect();
    FieldElement::batch_invert(&mut denominators);
    a.iter()
        .zip(b)
        .zip(&denominators)
        .map(|((p, q), inv)| {
            if inv.is_zero() {
                // Rare: identity operand, doubling, or cancellation.
                let sum = p.to_point().add_affine(q);
                return Point::batch_normalize(&[sum])[0];
            }
            let lambda = (q.y - p.y) * *inv;
            let x3 = lambda.square() - p.x - q.x;
            let y3 = lambda * (p.x - x3) - p.y;
            AffinePoint {
                x: x3,
                y: y3,
                infinity: false,
            }
        })
        .collect()
}

/// A point in affine coordinates (plus an explicit infinity flag) —
/// the representation used by precomputed tables, where mixed addition
/// makes every table hit cheaper than a general Jacobian addition.
#[derive(Clone, Copy, Debug)]
pub struct AffinePoint {
    x: FieldElement,
    y: FieldElement,
    infinity: bool,
}

impl AffinePoint {
    /// The affine encoding of the group identity.
    pub const IDENTITY: AffinePoint = AffinePoint {
        x: FieldElement::ZERO,
        y: FieldElement::ZERO,
        infinity: true,
    };

    /// The negation (mirror over the x-axis).
    pub fn neg(&self) -> AffinePoint {
        AffinePoint {
            x: self.x,
            y: -self.y,
            infinity: self.infinity,
        }
    }

    /// Returns `true` for the identity.
    pub fn is_identity(&self) -> bool {
        self.infinity
    }

    /// Converts back to Jacobian form.
    pub fn to_point(&self) -> Point {
        if self.infinity {
            Point::IDENTITY
        } else {
            Point {
                x: self.x,
                y: self.y,
                z: FieldElement::ONE,
            }
        }
    }
}

impl Add for Point {
    type Output = Point;

    /// General Jacobian addition with doubling fallback.
    #[inline]
    fn add(self, rhs: Point) -> Point {
        if self.is_identity() {
            return rhs;
        }
        if rhs.is_identity() {
            return self;
        }
        let z1z1 = self.z.square();
        let z2z2 = rhs.z.square();
        let u1 = self.x * z2z2;
        let u2 = rhs.x * z1z1;
        let s1 = self.y * z2z2 * rhs.z;
        let s2 = rhs.y * z1z1 * self.z;
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Point::IDENTITY; // P + (-P)
        }
        let h = u2 - u1;
        let i = {
            let t = h + h;
            t.square()
        };
        let j = h * i;
        let r = {
            let t = s2 - s1;
            t + t
        };
        let v = u1 * i;
        let x3 = r.square() - j - (v + v);
        let y3 = {
            let s1j = s1 * j;
            r * (v - x3) - (s1j + s1j)
        };
        let z3 = {
            let t = (self.z + rhs.z).square() - z1z1 - z2z2;
            t * h
        };
        Point {
            x: x3,
            y: y3,
            z: z3,
        }
    }
}

impl Neg for Point {
    type Output = Point;
    fn neg(self) -> Point {
        if self.is_identity() {
            self
        } else {
            Point {
                x: self.x,
                y: -self.y,
                z: self.z,
            }
        }
    }
}

impl core::ops::Mul<Scalar> for Point {
    type Output = Point;
    fn mul(self, k: Scalar) -> Point {
        self.mul_scalar(&k)
    }
}

/// The fixed-base window table, flat-indexed as `[w * 256 + d]` =
/// `d · 256^w · G`, stored as batch-normalized **affine** points so
/// `mul_generator` uses mixed (Jacobian+affine) additions.
///
/// ~528 KiB, built once on first use (≈ 8k point additions plus one
/// field inversion for the whole normalization).
fn generator_table() -> &'static [AffinePoint] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Box<[AffinePoint]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut jacobian = Vec::with_capacity(32 * 256);
        let mut base = Point::generator(); // 256^w · G
        for _ in 0..32 {
            let window_start = jacobian.len();
            jacobian.push(Point::IDENTITY);
            for d in 1..256 {
                let prev = jacobian[window_start + d - 1];
                jacobian.push(prev + base);
            }
            // base <<= 8 bits.
            base = jacobian[window_start + 255] + base;
        }
        Point::batch_normalize(&jacobian).into_boxed_slice()
    })
}

/// Width of the generator wNAF digits used by the Strauss–Shamir path.
const GEN_WNAF_WIDTH: u32 = 8;

/// Static affine table of odd generator multiples `(2i+1)·G` for
/// `i < 64`, backing the `a·G` half of [`Point::mul_shamir_generator`].
fn generator_wnaf_table() -> &'static [AffinePoint] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Box<[AffinePoint]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let jacobian = odd_multiples::<{ 1 << (GEN_WNAF_WIDTH - 2) }>(&Point::generator());
        Point::batch_normalize(&jacobian).into_boxed_slice()
    })
}

/// The affine table entry for a (non-zero, odd) generator wNAF digit.
fn generator_wnaf_entry(d: i8) -> AffinePoint {
    debug_assert!(d != 0 && d % 2 != 0);
    let entry = generator_wnaf_table()[(d.unsigned_abs() as usize - 1) / 2];
    if d > 0 {
        entry
    } else {
        entry.neg()
    }
}

/// Static affine table of odd multiples of `φ(G) = λ·G` — the
/// generator-half partner of the GLV split. Since
/// `φ((2i+1)·G) = (2i+1)·φ(G)`, this is just the `G` table with every
/// x-coordinate scaled by `β`.
fn generator_endo_wnaf_table() -> &'static [AffinePoint] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Box<[AffinePoint]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let b = beta();
        generator_wnaf_table()
            .iter()
            .map(|p| AffinePoint {
                x: p.x * b,
                y: p.y,
                infinity: p.infinity,
            })
            .collect()
    })
}

/// The affine table entry for a (non-zero, odd) `φ(G)` wNAF digit.
fn generator_endo_wnaf_entry(d: i8) -> AffinePoint {
    debug_assert!(d != 0 && d % 2 != 0);
    let entry = generator_endo_wnaf_table()[(d.unsigned_abs() as usize - 1) / 2];
    if d > 0 {
        entry
    } else {
        entry.neg()
    }
}

impl PartialEq for Point {
    /// Projective equality: compares affine coordinates without division.
    fn eq(&self, other: &Point) -> bool {
        match (self.is_identity(), other.is_identity()) {
            (true, true) => return true,
            (true, false) | (false, true) => return false,
            _ => {}
        }
        let z1z1 = self.z.square();
        let z2z2 = other.z.square();
        self.x * z2z2 == other.x * z1z1 && self.y * z2z2 * other.z == other.y * z1z1 * self.z
    }
}

impl Eq for Point {}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.to_affine() {
            None => write!(f, "Point(identity)"),
            Some((x, _)) => {
                let bytes = x.to_be_bytes();
                write!(f, "Point(x={:02x}{:02x}…)", bytes[0], bytes[1])
            }
        }
    }
}

/// Sums an iterator of points (used for CoSi aggregation).
impl core::iter::Sum for Point {
    fn sum<I: Iterator<Item = Point>>(iter: I) -> Point {
        iter.fold(Point::IDENTITY, |acc, p| acc + p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> Point {
        Point::generator()
    }

    #[test]
    fn generator_is_on_curve() {
        let (x, y) = g().to_affine().unwrap();
        assert!(Point::from_affine(x, y).is_some());
    }

    #[test]
    fn identity_laws() {
        assert_eq!(g() + Point::IDENTITY, g());
        assert_eq!(Point::IDENTITY + g(), g());
        assert!((g() + (-g())).is_identity());
        assert!(Point::IDENTITY.double().is_identity());
    }

    #[test]
    fn doubling_matches_addition() {
        assert_eq!(g().double(), g() + g());
        let p = g() * Scalar::from_u64(12345);
        assert_eq!(p.double(), p + p);
    }

    #[test]
    fn order_of_generator() {
        // n * G = identity; (n-1) * G = -G.
        let n_minus_1 = -Scalar::ONE; // n - 1 mod n
        let p = g() * n_minus_1;
        assert_eq!(p, -g());
        assert!((p + g()).is_identity());
    }

    #[test]
    fn known_multiples() {
        // 2G affine x from standard test vectors.
        let two_g = g() * Scalar::from_u64(2);
        let (x, _) = two_g.to_affine().unwrap();
        let mut expect = [0u8; 32];
        // x(2G) = C6047F9441ED7D6D3045406E95C07CD85C778E4B8CEF3CA7ABAC09B95C709EE5
        let hex = "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5";
        for i in 0..32 {
            expect[i] = u8::from_str_radix(&hex[i * 2..i * 2 + 2], 16).unwrap();
        }
        assert_eq!(x.to_be_bytes(), expect);
    }

    #[test]
    fn scalar_mul_is_additive_homomorphism() {
        let a = Scalar::from_u64(1234);
        let b = Scalar::from_u64(5678);
        assert_eq!(g() * a + g() * b, g() * (a + b));
    }

    #[test]
    fn windowed_matches_binary() {
        let k = Scalar::from_be_bytes_reduced(&[0x5Au8; 32]);
        assert_eq!(g().mul_scalar(&k), g().mul_scalar_binary(&k));
    }

    #[test]
    fn fixed_base_matches_general_mul() {
        let cases = [
            Scalar::ZERO,
            Scalar::ONE,
            Scalar::from_u64(2),
            Scalar::from_u64(255),
            Scalar::from_u64(256),
            -Scalar::ONE, // n - 1
            Scalar::from_be_bytes_reduced(&[0xA7u8; 32]),
            Scalar::from_be_bytes_reduced(&[0x01u8; 32]),
        ];
        for k in cases {
            assert_eq!(Point::mul_generator(&k), g().mul_scalar(&k), "k={k:?}");
        }
    }

    #[test]
    fn zero_scalar_gives_identity() {
        assert!((g() * Scalar::ZERO).is_identity());
    }

    #[test]
    fn compressed_roundtrip() {
        for v in [1u64, 2, 3, 7, 1000, 123_456_789] {
            let p = g() * Scalar::from_u64(v);
            let enc = p.to_compressed_bytes();
            let dec = Point::from_compressed_bytes(&enc).unwrap();
            assert_eq!(dec, p, "v={v}");
        }
    }

    #[test]
    fn identity_roundtrip() {
        let enc = Point::IDENTITY.to_compressed_bytes();
        assert_eq!(enc, [0u8; 33]);
        assert!(Point::from_compressed_bytes(&enc).unwrap().is_identity());
    }

    #[test]
    fn bad_prefix_rejected() {
        let mut enc = g().to_compressed_bytes();
        enc[0] = 0x05;
        assert!(Point::from_compressed_bytes(&enc).is_err());
    }

    #[test]
    fn off_curve_x_rejected() {
        // Find an x with no curve point (about half of all x).
        let mut bytes = [0u8; 33];
        bytes[0] = 0x02;
        let mut rejected = false;
        for v in 1u8..30 {
            bytes[32] = v;
            if Point::from_compressed_bytes(&bytes).is_err() {
                rejected = true;
                break;
            }
        }
        assert!(rejected, "expected some x to be off-curve");
    }

    #[test]
    fn negation_roundtrip() {
        let p = g() * Scalar::from_u64(99);
        assert_eq!(-(-p), p);
        assert!((p + (-p)).is_identity());
    }

    #[test]
    fn associativity_spot_check() {
        let p = g() * Scalar::from_u64(11);
        let q = g() * Scalar::from_u64(22);
        let r = g() * Scalar::from_u64(33);
        assert_eq!((p + q) + r, p + (q + r));
    }

    #[test]
    fn commutativity_spot_check() {
        let p = g() * Scalar::from_u64(44);
        let q = g() * Scalar::from_u64(55);
        assert_eq!(p + q, q + p);
    }

    #[test]
    fn sum_iterator() {
        let pts = [g(), g().double(), g() * Scalar::from_u64(3)];
        let total: Point = pts.into_iter().sum();
        assert_eq!(total, g() * Scalar::from_u64(6));
    }

    #[test]
    fn tangent_doubling_with_y_zero_is_identity() {
        // No secp256k1 point has y = 0 (x^3 + 7 = 0 has no root), but the
        // guard must still behave: identity doubling.
        assert!(Point::IDENTITY.double().is_identity());
    }

    #[test]
    fn add_affine_matches_general_addition() {
        let p = g() * Scalar::from_u64(1234);
        let q = g() * Scalar::from_u64(5678);
        let q_affine = Point::batch_normalize(&[q])[0];
        assert_eq!(p.add_affine(&q_affine), p + q);
        // Identity left operand.
        assert_eq!(Point::IDENTITY.add_affine(&q_affine), q);
        // Identity right operand.
        assert_eq!(p.add_affine(&AffinePoint::IDENTITY), p);
        // Doubling fallback.
        let p_affine = Point::batch_normalize(&[p])[0];
        assert_eq!(p.add_affine(&p_affine), p.double());
        // Cancellation.
        assert!(p.add_affine(&p_affine.neg()).is_identity());
    }

    #[test]
    fn batch_normalize_matches_to_affine() {
        let points: Vec<Point> = (1u64..20).map(|v| g() * Scalar::from_u64(v)).collect();
        let affine = Point::batch_normalize(&points);
        for (p, a) in points.iter().zip(&affine) {
            let (x, y) = p.to_affine().unwrap();
            assert!(!a.is_identity());
            assert_eq!(a.to_point(), *p);
            let (ax, ay) = a.to_point().to_affine().unwrap();
            assert_eq!((ax, ay), (x, y));
        }
    }

    #[test]
    fn batch_normalize_handles_identities() {
        let p = g() * Scalar::from_u64(7);
        let batch = [
            Point::IDENTITY,
            p,
            Point::IDENTITY,
            p.double(),
            Point::IDENTITY,
        ];
        let affine = Point::batch_normalize(&batch);
        assert!(affine[0].is_identity());
        assert!(affine[2].is_identity());
        assert!(affine[4].is_identity());
        assert_eq!(affine[1].to_point(), p);
        assert_eq!(affine[3].to_point(), p.double());
        // All identities.
        let all_id = Point::batch_normalize(&[Point::IDENTITY; 3]);
        assert!(all_id.iter().all(|a| a.is_identity()));
    }

    #[test]
    fn shamir_matches_composed_muls() {
        let cases = [
            (Scalar::from_u64(1), Scalar::from_u64(1), 2u64),
            (Scalar::from_u64(12345), Scalar::from_u64(99999), 3),
            (
                Scalar::from_be_bytes_reduced(&[0xA7; 32]),
                Scalar::from_be_bytes_reduced(&[0x3C; 32]),
                77,
            ),
            (-Scalar::ONE, Scalar::from_be_bytes_reduced(&[0xF1; 32]), 5),
        ];
        for (a, b, pv) in cases {
            let p = g() * Scalar::from_u64(pv);
            let expect = Point::mul_generator(&a) + p.mul_scalar(&b);
            assert_eq!(Point::mul_shamir_generator(&a, &b, &p), expect);
        }
    }

    #[test]
    fn shamir_degenerate_inputs() {
        let p = g() * Scalar::from_u64(42);
        let a = Scalar::from_be_bytes_reduced(&[0x55; 32]);
        let b = Scalar::from_be_bytes_reduced(&[0x66; 32]);
        assert_eq!(
            Point::mul_shamir_generator(&a, &Scalar::ZERO, &p),
            Point::mul_generator(&a)
        );
        assert_eq!(
            Point::mul_shamir_generator(&Scalar::ZERO, &b, &p),
            p.mul_scalar(&b)
        );
        assert_eq!(
            Point::mul_shamir_generator(&a, &b, &Point::IDENTITY),
            Point::mul_generator(&a)
        );
        assert!(Point::mul_shamir_generator(&Scalar::ZERO, &Scalar::ZERO, &p).is_identity());
    }

    #[test]
    fn multi_mul_matches_naive_sum() {
        let terms: Vec<(Scalar, Point)> = [(3u64, 2u64), (1, 9), (0xFFFF_FFFF, 31), (7919, 104729)]
            .iter()
            .map(|&(a, pv)| (Scalar::from_u64(a), g() * Scalar::from_u64(pv)))
            .collect();
        let expect = terms
            .iter()
            .fold(Point::IDENTITY, |acc, (a, p)| acc + p.mul_scalar(a));
        assert_eq!(Point::multi_mul(&terms), expect);
    }

    #[test]
    fn multi_mul_with_large_scalars() {
        let a = Scalar::from_be_bytes_reduced(&[0xAB; 32]);
        let b = -Scalar::from_u64(12345); // close to n
        let p = g() * Scalar::from_u64(17);
        let q = g() * Scalar::from_u64(23);
        let expect = p.mul_scalar(&a) + q.mul_scalar(&b);
        assert_eq!(Point::multi_mul(&[(a, p), (b, q)]), expect);
    }

    #[test]
    fn multi_mul_skips_degenerate_terms() {
        let p = g() * Scalar::from_u64(5);
        assert!(Point::multi_mul(&[]).is_identity());
        assert!(Point::multi_mul(&[(Scalar::ZERO, p)]).is_identity());
        assert!(Point::multi_mul(&[(Scalar::ONE, Point::IDENTITY)]).is_identity());
        let terms = [
            (Scalar::ZERO, p),
            (Scalar::from_u64(2), p),
            (Scalar::ONE, Point::IDENTITY),
        ];
        assert_eq!(Point::multi_mul(&terms), p.double());
    }

    #[test]
    fn endomorphism_is_lambda_multiplication() {
        use crate::scalar::LAMBDA;
        let lambda = Scalar::from_be_bytes_reduced(&arith_be(&LAMBDA));
        for v in [1u64, 2, 7, 123_456_789] {
            let p = g() * Scalar::from_u64(v);
            assert_eq!(p.endomorphism(), p.mul_scalar(&lambda), "v={v}");
        }
        assert!(Point::IDENTITY.endomorphism().is_identity());
    }

    fn arith_be(limbs: &[u64; 4]) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in limbs.iter().enumerate() {
            out[(3 - i) * 8..(4 - i) * 8].copy_from_slice(&limb.to_be_bytes());
        }
        out
    }

    #[test]
    fn shamir_matches_for_full_width_scalars() {
        // Exercise the GLV four-stream ladder with scalars spanning the
        // whole range, including negatives of small values (bits = 256).
        let p = g() * Scalar::from_u64(987_654_321);
        let cases = [
            (-Scalar::ONE, -Scalar::from_u64(2)),
            (
                Scalar::from_be_bytes_reduced(&[0xFF; 32]),
                -Scalar::from_be_bytes_reduced(&[0x80; 32]),
            ),
        ];
        for (a, b) in cases {
            let expect = Point::mul_generator(&a) + p.mul_scalar(&b);
            assert_eq!(Point::mul_shamir_generator(&a, &b, &p), expect);
        }
    }

    #[test]
    fn multi_mul_cancelling_terms_give_identity() {
        let a = Scalar::from_be_bytes_reduced(&[0x42; 32]);
        let p = g() * Scalar::from_u64(1000);
        assert!(Point::multi_mul(&[(a, p), (-a, p)]).is_identity());
    }
}
