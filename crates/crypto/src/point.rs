//! secp256k1 group arithmetic: `y² = x³ + 7` over `F_p`.
//!
//! Points are kept in Jacobian projective coordinates `(X, Y, Z)` with
//! affine `x = X/Z²`, `y = Y/Z³`; `Z = 0` encodes the point at infinity
//! (the group identity). Scalar multiplication uses a 4-bit
//! window — adequate for a research system (see the crate-level security
//! note).

use core::fmt;
use core::ops::{Add, Neg};

use crate::encoding::DecodeError;
use crate::field::FieldElement;
use crate::scalar::Scalar;

/// A point on secp256k1 (including the identity).
///
/// # Example
///
/// ```
/// use fides_crypto::point::Point;
/// use fides_crypto::scalar::Scalar;
///
/// let g = Point::generator();
/// let two_g = g * Scalar::from_u64(2);
/// assert_eq!(g + g, two_g);
/// ```
#[derive(Clone, Copy)]
pub struct Point {
    x: FieldElement,
    y: FieldElement,
    z: FieldElement,
}

/// Generator x-coordinate.
const GX: [u64; 4] = [
    0x59F2_815B_16F8_1798,
    0x029B_FCDB_2DCE_28D9,
    0x55A0_6295_CE87_0B07,
    0x79BE_667E_F9DC_BBAC,
];

/// Generator y-coordinate.
const GY: [u64; 4] = [
    0x9C47_D08F_FB10_D4B8,
    0xFD17_B448_A685_5419,
    0x5DA4_FBFC_0E11_08A8,
    0x483A_DA77_26A3_C465,
];

impl Point {
    /// The group identity (point at infinity).
    pub const IDENTITY: Point = Point {
        x: FieldElement::ONE,
        y: FieldElement::ONE,
        z: FieldElement::ZERO,
    };

    /// The standard secp256k1 base point `G`.
    pub fn generator() -> Point {
        Point {
            x: FieldElement::from_limbs(GX),
            y: FieldElement::from_limbs(GY),
            z: FieldElement::ONE,
        }
    }

    /// Constructs a point from affine coordinates, checking the curve
    /// equation.
    pub fn from_affine(x: FieldElement, y: FieldElement) -> Option<Point> {
        let lhs = y.square();
        let rhs = x.square() * x + FieldElement::SEVEN;
        if lhs == rhs {
            Some(Point {
                x,
                y,
                z: FieldElement::ONE,
            })
        } else {
            None
        }
    }

    /// Returns `true` for the identity.
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// Converts to affine coordinates; `None` for the identity.
    pub fn to_affine(&self) -> Option<(FieldElement, FieldElement)> {
        if self.is_identity() {
            return None;
        }
        let z_inv = self.z.invert().expect("non-identity point has z != 0");
        let z_inv2 = z_inv.square();
        let z_inv3 = z_inv2 * z_inv;
        Some((self.x * z_inv2, self.y * z_inv3))
    }

    /// Point doubling (Jacobian, a = 0 formulas).
    pub fn double(&self) -> Point {
        if self.is_identity() || self.y.is_zero() {
            return Point::IDENTITY;
        }
        let a = self.x.square();
        let b = self.y.square();
        let c = b.square();
        // D = 2*((X+B)^2 - A - C)
        let d = {
            let t = (self.x + b).square() - a - c;
            t + t
        };
        let e = a + a + a; // 3*X^2  (a = 0 curve)
        let f = e.square();
        let x3 = f - (d + d);
        let c8 = {
            let c2 = c + c;
            let c4 = c2 + c2;
            c4 + c4
        };
        let y3 = e * (d - x3) - c8;
        let z3 = {
            let t = self.y * self.z;
            t + t
        };
        Point {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Fast fixed-base multiplication `k·G` using a lazily built
    /// 8-bit-window table (32 windows × 256 entries): 31 point
    /// additions and no doublings. Signing, nonce commitments and the
    /// `s·G` half of verification all go through this path.
    pub fn mul_generator(k: &Scalar) -> Point {
        let table = generator_table();
        let bytes = k.to_be_bytes(); // big-endian: bytes[31] is window 0
        let mut acc = Point::IDENTITY;
        for (w, byte) in bytes.iter().rev().enumerate() {
            let d = *byte as usize;
            if d != 0 {
                acc = acc + table[w][d];
            }
        }
        acc
    }

    /// Multiplies by a scalar with a 4-bit window.
    pub fn mul_scalar(&self, k: &Scalar) -> Point {
        if k.is_zero() || self.is_identity() {
            return Point::IDENTITY;
        }
        // Precompute 1P..15P.
        let mut table = [Point::IDENTITY; 16];
        table[1] = *self;
        for i in 2..16 {
            table[i] = table[i - 1] + *self;
        }
        let mut acc = Point::IDENTITY;
        for w in (0..64).rev() {
            for _ in 0..4 {
                acc = acc.double();
            }
            let nib = k.nibble(w) as usize;
            if nib != 0 {
                acc = acc + table[nib];
            }
        }
        acc
    }

    /// Compressed SEC1-style encoding: 33 bytes, prefix `0x02`/`0x03` by
    /// y-parity; the identity encodes as 33 zero bytes.
    pub fn to_compressed_bytes(&self) -> [u8; 33] {
        let mut out = [0u8; 33];
        match self.to_affine() {
            None => out, // identity: all zeros
            Some((x, y)) => {
                out[0] = if y.is_odd() { 0x03 } else { 0x02 };
                out[1..].copy_from_slice(&x.to_be_bytes());
                out
            }
        }
    }

    /// Decodes a compressed point; validates the curve equation.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::InvalidValue`] if the prefix byte is
    /// unknown, the x-coordinate is non-canonical, or x³+7 has no square
    /// root.
    pub fn from_compressed_bytes(bytes: &[u8; 33]) -> Result<Point, DecodeError> {
        if bytes.iter().all(|&b| b == 0) {
            return Ok(Point::IDENTITY);
        }
        let parity_odd = match bytes[0] {
            0x02 => false,
            0x03 => true,
            _ => return Err(DecodeError::InvalidValue("point prefix byte")),
        };
        let mut xb = [0u8; 32];
        xb.copy_from_slice(&bytes[1..]);
        let x = FieldElement::from_be_bytes(&xb)
            .ok_or(DecodeError::InvalidValue("x coordinate not canonical"))?;
        let y2 = x.square() * x + FieldElement::SEVEN;
        let mut y = y2
            .sqrt()
            .ok_or(DecodeError::InvalidValue("x not on curve"))?;
        if y.is_odd() != parity_odd {
            y = -y;
        }
        Ok(Point {
            x,
            y,
            z: FieldElement::ONE,
        })
    }

    /// Binary double-and-add multiplication — used in tests as an
    /// independent check on the windowed implementation.
    #[doc(hidden)]
    pub fn mul_scalar_binary(&self, k: &Scalar) -> Point {
        let mut acc = Point::IDENTITY;
        for i in (0..256).rev() {
            acc = acc.double();
            if k.bit(i) {
                acc = acc + *self;
            }
        }
        acc
    }
}

impl Add for Point {
    type Output = Point;

    /// General Jacobian addition with doubling fallback.
    fn add(self, rhs: Point) -> Point {
        if self.is_identity() {
            return rhs;
        }
        if rhs.is_identity() {
            return self;
        }
        let z1z1 = self.z.square();
        let z2z2 = rhs.z.square();
        let u1 = self.x * z2z2;
        let u2 = rhs.x * z1z1;
        let s1 = self.y * z2z2 * rhs.z;
        let s2 = rhs.y * z1z1 * self.z;
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Point::IDENTITY; // P + (-P)
        }
        let h = u2 - u1;
        let i = {
            let t = h + h;
            t.square()
        };
        let j = h * i;
        let r = {
            let t = s2 - s1;
            t + t
        };
        let v = u1 * i;
        let x3 = r.square() - j - (v + v);
        let y3 = {
            let s1j = s1 * j;
            r * (v - x3) - (s1j + s1j)
        };
        let z3 = {
            let t = (self.z + rhs.z).square() - z1z1 - z2z2;
            t * h
        };
        Point {
            x: x3,
            y: y3,
            z: z3,
        }
    }
}

impl Neg for Point {
    type Output = Point;
    fn neg(self) -> Point {
        if self.is_identity() {
            self
        } else {
            Point {
                x: self.x,
                y: -self.y,
                z: self.z,
            }
        }
    }
}

impl core::ops::Mul<Scalar> for Point {
    type Output = Point;
    fn mul(self, k: Scalar) -> Point {
        self.mul_scalar(&k)
    }
}

/// The fixed-base window table: `TABLE[w][d] = d · 256^w · G`.
///
/// ~786 KiB, built once on first use (≈ 8k point additions).
fn generator_table() -> &'static Vec<[Point; 256]> {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Vec<[Point; 256]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = Vec::with_capacity(32);
        let mut base = Point::generator(); // 256^w · G
        for _ in 0..32 {
            let mut window = [Point::IDENTITY; 256];
            for d in 1..256 {
                window[d] = window[d - 1] + base;
            }
            // base <<= 8 bits.
            let next = window[255] + base;
            table.push(window);
            base = next;
        }
        table
    })
}

impl PartialEq for Point {
    /// Projective equality: compares affine coordinates without division.
    fn eq(&self, other: &Point) -> bool {
        match (self.is_identity(), other.is_identity()) {
            (true, true) => return true,
            (true, false) | (false, true) => return false,
            _ => {}
        }
        let z1z1 = self.z.square();
        let z2z2 = other.z.square();
        self.x * z2z2 == other.x * z1z1
            && self.y * z2z2 * other.z == other.y * z1z1 * self.z
    }
}

impl Eq for Point {}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.to_affine() {
            None => write!(f, "Point(identity)"),
            Some((x, _)) => {
                let bytes = x.to_be_bytes();
                write!(f, "Point(x={:02x}{:02x}…)", bytes[0], bytes[1])
            }
        }
    }
}

/// Sums an iterator of points (used for CoSi aggregation).
impl core::iter::Sum for Point {
    fn sum<I: Iterator<Item = Point>>(iter: I) -> Point {
        iter.fold(Point::IDENTITY, |acc, p| acc + p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> Point {
        Point::generator()
    }

    #[test]
    fn generator_is_on_curve() {
        let (x, y) = g().to_affine().unwrap();
        assert!(Point::from_affine(x, y).is_some());
    }

    #[test]
    fn identity_laws() {
        assert_eq!(g() + Point::IDENTITY, g());
        assert_eq!(Point::IDENTITY + g(), g());
        assert!((g() + (-g())).is_identity());
        assert!(Point::IDENTITY.double().is_identity());
    }

    #[test]
    fn doubling_matches_addition() {
        assert_eq!(g().double(), g() + g());
        let p = g() * Scalar::from_u64(12345);
        assert_eq!(p.double(), p + p);
    }

    #[test]
    fn order_of_generator() {
        // n * G = identity; (n-1) * G = -G.
        let n_minus_1 = -Scalar::ONE; // n - 1 mod n
        let p = g() * n_minus_1;
        assert_eq!(p, -g());
        assert!((p + g()).is_identity());
    }

    #[test]
    fn known_multiples() {
        // 2G affine x from standard test vectors.
        let two_g = g() * Scalar::from_u64(2);
        let (x, _) = two_g.to_affine().unwrap();
        let mut expect = [0u8; 32];
        // x(2G) = C6047F9441ED7D6D3045406E95C07CD85C778E4B8CEF3CA7ABAC09B95C709EE5
        let hex = "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5";
        for i in 0..32 {
            expect[i] = u8::from_str_radix(&hex[i * 2..i * 2 + 2], 16).unwrap();
        }
        assert_eq!(x.to_be_bytes(), expect);
    }

    #[test]
    fn scalar_mul_is_additive_homomorphism() {
        let a = Scalar::from_u64(1234);
        let b = Scalar::from_u64(5678);
        assert_eq!(g() * a + g() * b, g() * (a + b));
    }

    #[test]
    fn windowed_matches_binary() {
        let k = Scalar::from_be_bytes_reduced(&[0x5Au8; 32]);
        assert_eq!(g().mul_scalar(&k), g().mul_scalar_binary(&k));
    }

    #[test]
    fn fixed_base_matches_general_mul() {
        let cases = [
            Scalar::ZERO,
            Scalar::ONE,
            Scalar::from_u64(2),
            Scalar::from_u64(255),
            Scalar::from_u64(256),
            -Scalar::ONE, // n - 1
            Scalar::from_be_bytes_reduced(&[0xA7u8; 32]),
            Scalar::from_be_bytes_reduced(&[0x01u8; 32]),
        ];
        for k in cases {
            assert_eq!(Point::mul_generator(&k), g().mul_scalar(&k), "k={k:?}");
        }
    }

    #[test]
    fn zero_scalar_gives_identity() {
        assert!((g() * Scalar::ZERO).is_identity());
    }

    #[test]
    fn compressed_roundtrip() {
        for v in [1u64, 2, 3, 7, 1000, 123_456_789] {
            let p = g() * Scalar::from_u64(v);
            let enc = p.to_compressed_bytes();
            let dec = Point::from_compressed_bytes(&enc).unwrap();
            assert_eq!(dec, p, "v={v}");
        }
    }

    #[test]
    fn identity_roundtrip() {
        let enc = Point::IDENTITY.to_compressed_bytes();
        assert_eq!(enc, [0u8; 33]);
        assert!(Point::from_compressed_bytes(&enc).unwrap().is_identity());
    }

    #[test]
    fn bad_prefix_rejected() {
        let mut enc = g().to_compressed_bytes();
        enc[0] = 0x05;
        assert!(Point::from_compressed_bytes(&enc).is_err());
    }

    #[test]
    fn off_curve_x_rejected() {
        // Find an x with no curve point (about half of all x).
        let mut bytes = [0u8; 33];
        bytes[0] = 0x02;
        let mut rejected = false;
        for v in 1u8..30 {
            bytes[32] = v;
            if Point::from_compressed_bytes(&bytes).is_err() {
                rejected = true;
                break;
            }
        }
        assert!(rejected, "expected some x to be off-curve");
    }

    #[test]
    fn negation_roundtrip() {
        let p = g() * Scalar::from_u64(99);
        assert_eq!(-(-p), p);
        assert!((p + (-p)).is_identity());
    }

    #[test]
    fn associativity_spot_check() {
        let p = g() * Scalar::from_u64(11);
        let q = g() * Scalar::from_u64(22);
        let r = g() * Scalar::from_u64(33);
        assert_eq!((p + q) + r, p + (q + r));
    }

    #[test]
    fn commutativity_spot_check() {
        let p = g() * Scalar::from_u64(44);
        let q = g() * Scalar::from_u64(55);
        assert_eq!(p + q, q + p);
    }

    #[test]
    fn sum_iterator() {
        let pts = [g(), g().double(), g() * Scalar::from_u64(3)];
        let total: Point = pts.into_iter().sum();
        assert_eq!(total, g() * Scalar::from_u64(6));
    }

    #[test]
    fn tangent_doubling_with_y_zero_is_identity() {
        // No secp256k1 point has y = 0 (x^3 + 7 = 0 has no root), but the
        // guard must still behave: identity doubling.
        assert!(Point::IDENTITY.double().is_identity());
    }
}
