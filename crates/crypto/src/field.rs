//! Arithmetic in the secp256k1 base field
//! `F_p`, `p = 2^256 − 2^32 − 977`.
//!
//! [`FieldElement`] values are always fully reduced. The implementation
//! uses 4×64-bit limbs with post-multiplication folding (see
//! [`crate::arith`]).

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, Mul, Neg, Sub};

use crate::arith;

/// `p = 2^256 - 2^32 - 977`, little-endian limbs.
pub(crate) const P: [u64; 4] = [
    0xFFFF_FFFE_FFFF_FC2F,
    0xFFFF_FFFF_FFFF_FFFF,
    0xFFFF_FFFF_FFFF_FFFF,
    0xFFFF_FFFF_FFFF_FFFF,
];

/// `c = 2^256 - p = 2^32 + 977`.
const C: [u64; 4] = [0x1_0000_03D1, 0, 0, 0];

/// An element of the secp256k1 base field.
///
/// # Example
///
/// ```
/// use fides_crypto::field::FieldElement;
///
/// let a = FieldElement::from_u64(3);
/// let inv = a.invert().unwrap();
/// assert_eq!(a * inv, FieldElement::ONE);
/// ```
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct FieldElement([u64; 4]);

impl FieldElement {
    /// The additive identity.
    pub const ZERO: FieldElement = FieldElement([0, 0, 0, 0]);
    /// The multiplicative identity.
    pub const ONE: FieldElement = FieldElement([1, 0, 0, 0]);
    /// The curve constant `b = 7` of `y² = x³ + 7`.
    pub const SEVEN: FieldElement = FieldElement([7, 0, 0, 0]);

    /// Constructs from a small integer.
    pub fn from_u64(v: u64) -> Self {
        FieldElement([v, 0, 0, 0])
    }

    /// Constructs from raw little-endian limbs, reducing mod `p`.
    pub fn from_limbs(limbs: [u64; 4]) -> Self {
        let mut l = limbs;
        while arith::cmp4(&l, &P) != Ordering::Less {
            l = arith::sub4(&l, &P).0;
        }
        FieldElement(l)
    }

    /// Parses 32 big-endian bytes; returns `None` if the value is ≥ `p`
    /// (canonical encodings only).
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Option<Self> {
        let limbs = arith::limbs_from_be_bytes(bytes);
        if arith::cmp4(&limbs, &P) == Ordering::Less {
            Some(FieldElement(limbs))
        } else {
            None
        }
    }

    /// Serializes as 32 big-endian bytes.
    pub fn to_be_bytes(self) -> [u8; 32] {
        arith::limbs_to_be_bytes(&self.0)
    }

    /// Returns `true` for the additive identity.
    #[inline]
    pub fn is_zero(&self) -> bool {
        arith::is_zero4(&self.0)
    }

    /// Returns `true` if the canonical integer representative is odd.
    pub fn is_odd(&self) -> bool {
        self.0[0] & 1 == 1
    }

    /// Field squaring.
    #[inline]
    pub fn square(&self) -> Self {
        FieldElement(arith::reduce_wide(arith::sqr4(&self.0), &P, &C))
    }

    /// Raises to an arbitrary 256-bit power (little-endian limbs).
    pub fn pow(&self, exp: &[u64; 4]) -> Self {
        FieldElement(arith::pow_mod(&self.0, exp, &P, &C))
    }

    /// Multiplicative inverse via the safegcd (Bernstein–Yang) divstep
    /// algorithm ([`crate::safegcd`]); ~7× faster than the Fermat
    /// ladder. Returns `None` for zero.
    pub fn invert(&self) -> Option<Self> {
        if self.is_zero() {
            return None;
        }
        Some(FieldElement(crate::safegcd::modinv(&self.0, &P)))
    }

    /// Multiplicative inverse via Fermat's little theorem
    /// (`a^(p-2) mod p`) — the pre-safegcd reference path, kept for
    /// differential testing. Returns `None` for zero.
    #[doc(hidden)]
    pub fn invert_fermat(&self) -> Option<Self> {
        if self.is_zero() {
            return None;
        }
        let p_minus_2 = arith::sub4(&P, &[2, 0, 0, 0]).0;
        Some(self.pow(&p_minus_2))
    }

    /// Square root, if one exists. `p ≡ 3 (mod 4)`, so
    /// `sqrt(a) = a^((p+1)/4)` when `a` is a quadratic residue.
    pub fn sqrt(&self) -> Option<Self> {
        let (p_plus_1, carry) = arith::add4(&P, &[1, 0, 0, 0]);
        debug_assert_eq!(carry, 0);
        let exp = arith::shr4(&p_plus_1, 2);
        let candidate = self.pow(&exp);
        if candidate.square() == *self {
            Some(candidate)
        } else {
            None
        }
    }

    /// Raw little-endian limbs (test support and debugging).
    #[doc(hidden)]
    pub fn limbs(&self) -> &[u64; 4] {
        &self.0
    }

    /// Inverts every non-zero element in place with a **single** field
    /// inversion (Montgomery's trick); zero elements are left as zero.
    ///
    /// This backs batch point normalization and batched affine
    /// addition: `N` inversions cost `3N` multiplications plus one real
    /// inversion.
    pub fn batch_invert(values: &mut [FieldElement]) {
        // Forward pass: prefix products of the non-zero entries.
        let mut prefix = Vec::with_capacity(values.len());
        let mut acc = FieldElement::ONE;
        for v in values.iter() {
            prefix.push(acc);
            if !v.is_zero() {
                acc = acc * *v;
            }
        }
        let Some(mut inv) = acc.invert() else {
            // Every entry was zero.
            return;
        };
        // Backward pass: peel one inverse off per entry.
        for (v, p) in values.iter_mut().zip(prefix.iter()).rev() {
            if v.is_zero() {
                continue;
            }
            let v_inv = inv * *p;
            inv = inv * *v;
            *v = v_inv;
        }
    }
}

impl Add for FieldElement {
    type Output = FieldElement;
    #[inline]
    fn add(self, rhs: FieldElement) -> FieldElement {
        FieldElement(arith::add_mod(&self.0, &rhs.0, &P))
    }
}

impl Sub for FieldElement {
    type Output = FieldElement;
    #[inline]
    fn sub(self, rhs: FieldElement) -> FieldElement {
        FieldElement(arith::sub_mod(&self.0, &rhs.0, &P))
    }
}

impl Mul for FieldElement {
    type Output = FieldElement;
    #[inline]
    fn mul(self, rhs: FieldElement) -> FieldElement {
        FieldElement(arith::mul_mod(&self.0, &rhs.0, &P, &C))
    }
}

impl Neg for FieldElement {
    type Output = FieldElement;
    #[inline]
    fn neg(self) -> FieldElement {
        FieldElement(arith::sub_mod(&[0, 0, 0, 0], &self.0, &P))
    }
}

impl fmt::Debug for FieldElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FieldElement(0x{self})")
    }
}

impl fmt::Display for FieldElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.to_be_bytes() {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(v: u64) -> FieldElement {
        FieldElement::from_u64(v)
    }

    #[test]
    fn additive_identity() {
        let a = fe(12345);
        assert_eq!(a + FieldElement::ZERO, a);
        assert_eq!(a - a, FieldElement::ZERO);
    }

    #[test]
    fn multiplicative_identity() {
        let a = fe(98765);
        assert_eq!(a * FieldElement::ONE, a);
    }

    #[test]
    fn negation() {
        let a = fe(7);
        assert_eq!(a + (-a), FieldElement::ZERO);
        assert_eq!(-FieldElement::ZERO, FieldElement::ZERO);
    }

    #[test]
    fn wraparound_addition() {
        // (p - 1) + 2 = 1 mod p
        let p_minus_1 = FieldElement::from_limbs(arith::sub4(&P, &[1, 0, 0, 0]).0);
        assert_eq!(p_minus_1 + fe(2), FieldElement::ONE);
    }

    #[test]
    fn small_multiplication() {
        assert_eq!(fe(6) * fe(7), fe(42));
    }

    #[test]
    fn square_matches_mul() {
        let a = FieldElement::from_limbs([u64::MAX, 123, u64::MAX, 0x7FFF_FFFF_FFFF_FFFF]);
        assert_eq!(a.square(), a * a);
    }

    #[test]
    fn inversion() {
        let a = fe(2);
        let inv = a.invert().unwrap();
        assert_eq!(a * inv, FieldElement::ONE);
        assert!(FieldElement::ZERO.invert().is_none());
    }

    #[test]
    fn inversion_large_value() {
        let a = FieldElement::from_limbs([0xDEAD_BEEF, 0xCAFE_BABE, 0x1234_5678, 0x0FED_CBA9]);
        assert_eq!(a * a.invert().unwrap(), FieldElement::ONE);
    }

    #[test]
    fn sqrt_of_square() {
        let a = fe(1234567);
        let sq = a.square();
        let root = sq.sqrt().unwrap();
        assert!(root == a || root == -a);
    }

    #[test]
    fn sqrt_of_non_residue() {
        // 5 is a quadratic non-residue mod the secp256k1 prime? Check by
        // construction: take a known residue r = x^2 and a generator-like
        // non-residue. We find one by trial: if sqrt fails, it is a
        // non-residue; assert at least one of small values is.
        let mut found_nonresidue = false;
        for v in 2u64..20 {
            if fe(v).sqrt().is_none() {
                found_nonresidue = true;
                break;
            }
        }
        assert!(found_nonresidue);
    }

    #[test]
    fn byte_encoding_roundtrip() {
        let a = FieldElement::from_limbs([1, 2, 3, 4]);
        let bytes = a.to_be_bytes();
        assert_eq!(FieldElement::from_be_bytes(&bytes), Some(a));
    }

    #[test]
    fn non_canonical_bytes_rejected() {
        let bytes = [0xFFu8; 32]; // 2^256 - 1 > p
        assert_eq!(FieldElement::from_be_bytes(&bytes), None);
    }

    #[test]
    fn parity() {
        assert!(fe(3).is_odd());
        assert!(!fe(4).is_odd());
    }

    #[test]
    fn from_limbs_reduces() {
        assert_eq!(FieldElement::from_limbs(P), FieldElement::ZERO);
    }

    #[test]
    fn distributive_law_spot_check() {
        let a = fe(0xABCD);
        let b = FieldElement::from_limbs([u64::MAX, u64::MAX, 0, 0]);
        let c = fe(0x4242_4242);
        assert_eq!(a * (b + c), a * b + a * c);
    }
}
