//! Modular inversion by the safegcd (Bernstein–Yang) divstep algorithm.
//!
//! Replaces the Fermat ladder (`a^(m-2)`, ~330 modular multiplications)
//! with a run of *divsteps* — a branch-predictable transformation on the
//! low bits of an extended-GCD state — batched 62 at a time: each batch
//! runs entirely on single `u64`/`i64` words and is then applied to the
//! full-width state as one 2×2 integer matrix, so the multi-precision
//! work is 12 small matrix applications instead of hundreds of modular
//! multiplications. Measured on the dev box this is ~7× faster than the
//! Fermat ladder; field inversion sits under every point normalization
//! and every batched-affine addition column in
//! [`crate::point::Point::multi_mul`], so the win is structural.
//!
//! The implementation follows the safegcd paper's `divstep` (delta
//! variant) with the signed-62-limb representation popularized by
//! libsecp256k1's `modinv64`:
//!
//! * values are 5 limbs of 62 bits, limbs 0–3 in `[0, 2^62)`, limb 4
//!   signed (so a whole value's sign is its top limb's sign);
//! * 62 divsteps are computed on the bottom words of `f` and `g`,
//!   accumulating a transition matrix `t = [[u, v], [q, r]]` with
//!   `|u|+|v| ≤ 2^62`, `|q|+|r| ≤ 2^62`;
//! * `(f, g) ← t·(f, g)/2^62` exactly (the low 62 bits cancel by
//!   construction), and the Bézout pair `(d, e)` follows the same
//!   matrix modulo `m`, with a multiple of `m` added to make the
//!   division by `2^62` exact.
//!
//! 12 batches (744 divsteps) exceed the paper's worst-case bound for
//! 256-bit inputs (742), and the loop exits early once `g = 0` —
//! random inputs finish in 9–10 batches. On termination `f = ±1` and
//! `±d ≡ x⁻¹ (mod m)`.
//!
//! Works for any odd 256-bit modulus; both the base field (`p`) and the
//! scalar group order (`n`) route their `invert()` through here.

/// Low-62-bit mask.
const M62: i64 = (u64::MAX >> 2) as i64;

/// A value in signed-62-limb form: `Σ v[i]·2^(62i)`, limbs 0–3 in
/// `[0, 2^62)`, limb 4 carrying the sign.
type Signed62 = [i64; 5];

/// The 2×2 divstep transition matrix, scaled by `2^62`.
struct Trans {
    u: i64,
    v: i64,
    q: i64,
    r: i64,
}

#[inline]
fn to_signed62(x: &[u64; 4]) -> Signed62 {
    let m = M62 as u64;
    [
        (x[0] & m) as i64,
        (((x[0] >> 62) | (x[1] << 2)) & m) as i64,
        (((x[1] >> 60) | (x[2] << 4)) & m) as i64,
        (((x[2] >> 58) | (x[3] << 6)) & m) as i64,
        (x[3] >> 56) as i64,
    ]
}

/// Converts back to 4×64-bit limbs; the value must already be
/// normalized to `[0, 2^256)`.
#[inline]
fn from_signed62(a: &Signed62) -> [u64; 4] {
    debug_assert!(a[4] >= 0);
    let v: [u64; 5] = [
        a[0] as u64,
        a[1] as u64,
        a[2] as u64,
        a[3] as u64,
        a[4] as u64,
    ];
    [
        v[0] | (v[1] << 62),
        (v[1] >> 2) | (v[2] << 60),
        (v[2] >> 4) | (v[3] << 58),
        (v[3] >> 6) | (v[4] << 56),
    ]
}

/// `m[0]⁻¹ mod 2^62` by Newton iteration (each step doubles the number
/// of correct low bits; 6 steps ≥ 64 bits).
#[inline]
fn modulus_inv62(m0: u64) -> u64 {
    debug_assert!(m0 & 1 == 1, "modulus must be odd");
    let mut x = m0;
    for _ in 0..6 {
        x = x.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(x)));
    }
    x & (M62 as u64)
}

/// Runs 62 divsteps on the bottom words of `f` and `g`, returning the
/// updated `delta` and the transition matrix.
///
/// Each divstep is the safegcd paper's map
/// `(δ, f, g) → (1−δ, g, (g−f)/2)` when `δ > 0` and `g` is odd, else
/// `(1+δ, f, (g + (g mod 2)·f)/2)`; halvings are postponed into the
/// matrix scale, so after `k` steps `2^k·(f_k, g_k) = t·(f_0, g_0)`.
fn divsteps_62(mut delta: i64, f0: u64, g0: u64) -> (i64, Trans) {
    let (mut u, mut v, mut q, mut r): (i64, i64, i64, i64) = (1, 0, 0, 1);
    let mut f = f0;
    let mut g = g0;
    for _ in 0..62 {
        if delta > 0 && (g & 1) == 1 {
            delta = 1 - delta;
            let nf = g;
            let ng = g.wrapping_sub(f) >> 1;
            f = nf;
            g = ng;
            let (nu, nv) = (q << 1, r << 1);
            let (nq, nr) = (q - u, r - v);
            u = nu;
            v = nv;
            q = nq;
            r = nr;
        } else {
            delta += 1;
            if g & 1 == 1 {
                g = g.wrapping_add(f) >> 1;
                q += u;
                r += v;
            } else {
                g >>= 1;
            }
            u <<= 1;
            v <<= 1;
        }
    }
    (delta, Trans { u, v, q, r })
}

/// `(f, g) ← t·(f, g) / 2^62` over the full 5-limb values. The division
/// is exact: the matrix was built so the low 62 bits cancel.
fn update_fg(f: &mut Signed62, g: &mut Signed62, t: &Trans) {
    let (u, v, q, r) = (t.u as i128, t.v as i128, t.q as i128, t.r as i128);
    let mut cf = u * f[0] as i128 + v * g[0] as i128;
    let mut cg = q * f[0] as i128 + r * g[0] as i128;
    debug_assert!(cf as i64 & M62 == 0);
    debug_assert!(cg as i64 & M62 == 0);
    cf >>= 62;
    cg >>= 62;
    for i in 1..5 {
        cf += u * f[i] as i128 + v * g[i] as i128;
        cg += q * f[i] as i128 + r * g[i] as i128;
        f[i - 1] = cf as i64 & M62;
        cf >>= 62;
        g[i - 1] = cg as i64 & M62;
        cg >>= 62;
    }
    f[4] = cf as i64;
    g[4] = cg as i64;
}

/// `(d, e) ← t·(d, e) / 2^62 (mod m)`: the same matrix applied to the
/// Bézout coefficients, with a multiple of the modulus mixed in so the
/// division by `2^62` is exact. Keeps `d, e ∈ (−2m, m)`.
fn update_de(d: &mut Signed62, e: &mut Signed62, t: &Trans, m: &Signed62, m_inv62: u64) {
    let (u, v, q, r) = (t.u, t.v, t.q, t.r);
    // Sign-extension correction: start the modulus multipliers at
    // `u·[d<0] + v·[e<0]` (resp. q/r) so the output range is preserved.
    let sd = d[4] >> 63;
    let se = e[4] >> 63;
    let mut md = (u & sd) + (v & se);
    let mut me = (q & sd) + (r & se);
    let (ui, vi, qi, ri) = (u as i128, v as i128, q as i128, r as i128);
    let mut cd = ui * d[0] as i128 + vi * e[0] as i128;
    let mut ce = qi * d[0] as i128 + ri * e[0] as i128;
    // Choose md, me so the low 62 bits of `t·(d,e) + m·(md,me)` vanish.
    md -= (m_inv62.wrapping_mul(cd as u64).wrapping_add(md as u64) & M62 as u64) as i64;
    me -= (m_inv62.wrapping_mul(ce as u64).wrapping_add(me as u64) & M62 as u64) as i64;
    cd += m[0] as i128 * md as i128;
    ce += m[0] as i128 * me as i128;
    debug_assert!(cd as i64 & M62 == 0);
    debug_assert!(ce as i64 & M62 == 0);
    cd >>= 62;
    ce >>= 62;
    for i in 1..5 {
        cd += ui * d[i] as i128 + vi * e[i] as i128;
        ce += qi * d[i] as i128 + ri * e[i] as i128;
        cd += m[i] as i128 * md as i128;
        ce += m[i] as i128 * me as i128;
        d[i - 1] = cd as i64 & M62;
        cd >>= 62;
        e[i - 1] = ce as i64 & M62;
        ce >>= 62;
    }
    d[4] = cd as i64;
    e[4] = ce as i64;
}

/// Brings `a ∈ (−2m, m)` into `[0, m)`, negating first when `negate`
/// (the sign of the final `f`, which holds ±gcd).
fn normalize(a: &mut Signed62, negate: bool, m: &Signed62) {
    if negate {
        // a ← −a, limb-normalized.
        let mut carry: i64 = 0;
        for limb in a.iter_mut().take(4) {
            let t = -*limb + carry;
            *limb = t & M62;
            carry = t >> 62;
        }
        a[4] = -a[4] + carry;
    }
    // At most two corrective additions (range is (−2m, 2m)).
    while a[4] < 0 {
        let mut carry: i64 = 0;
        for i in 0..4 {
            let t = a[i] + m[i] + carry;
            a[i] = t & M62;
            carry = t >> 62;
        }
        a[4] += m[4] + carry;
    }
    // And at most one subtraction to land in [0, m).
    loop {
        // Compare a ≥ m (both now non-negative and limb-normalized).
        let mut greater_eq = true;
        for i in (0..5).rev() {
            if a[i] > m[i] {
                break;
            }
            if a[i] < m[i] {
                greater_eq = false;
                break;
            }
        }
        if !greater_eq {
            break;
        }
        let mut borrow: i64 = 0;
        for i in 0..4 {
            let t = a[i] - m[i] + borrow;
            a[i] = t & M62;
            borrow = t >> 62;
        }
        a[4] = a[4] - m[4] + borrow;
    }
}

/// Computes `x⁻¹ mod m` for an odd modulus `m` and `0 < x < m`.
///
/// Panics (debug) if `x` and `m` are not coprime — impossible for the
/// prime moduli used by [`crate::field`] and [`crate::scalar`].
pub(crate) fn modinv(x: &[u64; 4], m: &[u64; 4]) -> [u64; 4] {
    let modulus = to_signed62(m);
    let m_inv62 = modulus_inv62(m[0]);
    let mut f = modulus;
    let mut g = to_signed62(x);
    // d tracks the coefficient with f (`f ≡ d·x mod m`), e with g.
    let mut d: Signed62 = [0; 5];
    let mut e: Signed62 = [1, 0, 0, 0, 0];
    let mut delta: i64 = 1;
    let mut done = false;
    // 12 × 62 = 744 divsteps ≥ the 742 worst-case bound for 256-bit
    // inputs; typical inputs drain g in 9–10 batches.
    for _ in 0..12 {
        let (nd, t) = divsteps_62(delta, f[0] as u64, g[0] as u64);
        delta = nd;
        update_de(&mut d, &mut e, &t, &modulus, m_inv62);
        update_fg(&mut f, &mut g, &t);
        if g.iter().all(|&l| l == 0) {
            done = true;
            break;
        }
    }
    assert!(done, "safegcd did not converge (non-coprime input?)");
    // f = ±gcd(x, m) = ±1; the inverse is ±d accordingly.
    normalize(&mut d, f[4] < 0, &modulus);
    from_signed62(&d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith;
    use crate::field;
    use crate::scalar;

    #[test]
    fn signed62_roundtrip() {
        let cases = [
            [0u64, 0, 0, 0],
            [1, 0, 0, 0],
            [u64::MAX, u64::MAX, u64::MAX, u64::MAX],
            [0x0123_4567_89AB_CDEF, 42, u64::MAX, 7],
        ];
        for c in cases {
            assert_eq!(from_signed62(&to_signed62(&c)), c);
        }
    }

    #[test]
    fn modulus_inv62_is_inverse() {
        for m0 in [field::P[0], scalar::N[0], 1u64, 0xFFFF_FFFF_FFFF_FFFF] {
            let inv = modulus_inv62(m0);
            assert_eq!(m0.wrapping_mul(inv) & (M62 as u64), 1, "m0={m0:#x}");
        }
    }

    #[test]
    fn inverts_small_values_mod_p() {
        for v in 1u64..50 {
            let x = [v, 0, 0, 0];
            let inv = modinv(&x, &field::P);
            let prod = arith::mul_mod(&x, &inv, &field::P, &[0x1_0000_03D1, 0, 0, 0]);
            assert_eq!(prod, [1, 0, 0, 0], "v={v}");
        }
    }

    #[test]
    fn inverts_p_minus_one() {
        // p − 1 is its own inverse mod p.
        let x = arith::sub4(&field::P, &[1, 0, 0, 0]).0;
        let inv = modinv(&x, &field::P);
        assert_eq!(inv, x);
    }

    #[test]
    fn inverts_one() {
        assert_eq!(modinv(&[1, 0, 0, 0], &field::P), [1, 0, 0, 0]);
        assert_eq!(modinv(&[1, 0, 0, 0], &scalar::N), [1, 0, 0, 0]);
    }

    #[test]
    fn matches_fermat_mod_both_moduli() {
        // Deterministic pseudo-random values via a simple LCG.
        let mut s = 0x1234_5678_9ABC_DEF0u64;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s
        };
        for (m, c) in [
            (field::P, [0x1_0000_03D1u64, 0, 0, 0]),
            (
                scalar::N,
                [0x402D_A173_2FC9_BEBF, 0x4551_2319_50B7_5FC4, 0x1, 0],
            ),
        ] {
            for _ in 0..50 {
                let mut x = [next(), next(), next(), next()];
                while arith::cmp4(&x, &m) != core::cmp::Ordering::Less {
                    x = arith::sub4(&x, &m).0;
                }
                if arith::is_zero4(&x) {
                    continue;
                }
                let inv = modinv(&x, &m);
                let prod = arith::mul_mod(&x, &inv, &m, &c);
                assert_eq!(prod, [1, 0, 0, 0]);
                let m_minus_2 = arith::sub4(&m, &[2, 0, 0, 0]).0;
                let fermat = arith::pow_mod(&x, &m_minus_2, &m, &c);
                assert_eq!(inv, fermat);
            }
        }
    }
}
