//! Shared 256-bit modular arithmetic used by [`crate::field`] and
//! [`crate::scalar`].
//!
//! Values are four little-endian `u64` limbs. Both secp256k1 moduli are of
//! the form `2^256 - c` for a small `c`, which makes reduction after a
//! widening multiplication a simple fold: `lo + hi * c (mod m)`.

use core::cmp::Ordering;

/// Add with carry: returns `(a + b + carry, carry_out)`.
#[inline(always)]
pub(crate) fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let wide = u128::from(a) + u128::from(b) + u128::from(carry);
    (wide as u64, (wide >> 64) as u64)
}

/// Subtract with borrow: returns `(a - b - borrow, borrow_out)`.
#[inline(always)]
pub(crate) fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let wide = u128::from(a)
        .wrapping_sub(u128::from(b))
        .wrapping_sub(u128::from(borrow));
    (wide as u64, (wide >> 127) as u64)
}

/// Multiply-accumulate: returns `(acc + a * b + carry, carry_out)`.
#[inline(always)]
pub(crate) fn mac(acc: u64, a: u64, b: u64, carry: u64) -> (u64, u64) {
    let wide = u128::from(acc) + u128::from(a) * u128::from(b) + u128::from(carry);
    (wide as u64, (wide >> 64) as u64)
}

/// `a + b` over 4 limbs; returns the sum and the carry-out.
#[inline]
pub(crate) fn add4(a: &[u64; 4], b: &[u64; 4]) -> ([u64; 4], u64) {
    let mut out = [0u64; 4];
    let mut carry = 0u64;
    for i in 0..4 {
        let (s, c) = adc(a[i], b[i], carry);
        out[i] = s;
        carry = c;
    }
    (out, carry)
}

/// `a - b` over 4 limbs; returns the difference and the borrow-out.
#[inline]
pub(crate) fn sub4(a: &[u64; 4], b: &[u64; 4]) -> ([u64; 4], u64) {
    let mut out = [0u64; 4];
    let mut borrow = 0u64;
    for i in 0..4 {
        let (d, bo) = sbb(a[i], b[i], borrow);
        out[i] = d;
        borrow = bo;
    }
    (out, borrow)
}

/// Schoolbook 4x4 limb multiplication producing an 8-limb product.
#[inline]
pub(crate) fn mul4(a: &[u64; 4], b: &[u64; 4]) -> [u64; 8] {
    let mut out = [0u64; 8];
    for i in 0..4 {
        let mut carry = 0u64;
        for j in 0..4 {
            let (lo, hi) = mac(out[i + j], a[i], b[j], carry);
            out[i + j] = lo;
            carry = hi;
        }
        out[i + 4] = carry;
    }
    out
}

/// Dedicated squaring: computes the off-diagonal products once and
/// doubles them (~1.4× faster than `mul4(a, a)`), which matters because
/// point doubling — the inner loop of scalar multiplication — is
/// squaring-heavy.
#[inline]
pub(crate) fn sqr4(a: &[u64; 4]) -> [u64; 8] {
    // Off-diagonal partial products a[i]*a[j] for i < j.
    let mut out = [0u64; 8];
    let mut carry;
    // Row i = 0.
    carry = 0;
    for j in 1..4 {
        let (lo, hi) = mac(out[j], a[0], a[j], carry);
        out[j] = lo;
        carry = hi;
    }
    out[4] = carry;
    // Row i = 1.
    carry = 0;
    for j in 2..4 {
        let (lo, hi) = mac(out[1 + j], a[1], a[j], carry);
        out[1 + j] = lo;
        carry = hi;
    }
    out[5] = carry;
    // Row i = 2.
    let (lo, hi) = mac(out[5], a[2], a[3], 0);
    out[5] = lo;
    out[6] = hi;

    // Double the off-diagonal sum.
    let mut top = 0u64;
    let mut prev = 0u64;
    for limb in out.iter_mut() {
        let new_prev = *limb >> 63;
        *limb = (*limb << 1) | prev;
        prev = new_prev;
    }
    top |= prev;
    let _ = top; // the doubled sum never overflows 512 bits (top bit of
                 // out[7] is 0: products of 256-bit values fit 512 bits)

    // Add the diagonal a[i]^2 terms.
    let mut carry2 = 0u64;
    for i in 0..4 {
        let (lo, hi) = mac(out[2 * i], a[i], a[i], 0);
        let (lo2, c1) = adc(lo, carry2, 0);
        out[2 * i] = lo2;
        let (hi2, c2) = adc(out[2 * i + 1], hi, c1);
        out[2 * i + 1] = hi2;
        carry2 = c2;
    }
    debug_assert_eq!(carry2, 0);
    out
}

/// Lexicographic comparison of two 4-limb little-endian values.
#[inline]
pub(crate) fn cmp4(a: &[u64; 4], b: &[u64; 4]) -> Ordering {
    for i in (0..4).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    Ordering::Equal
}

#[inline]
pub(crate) fn is_zero4(a: &[u64; 4]) -> bool {
    a.iter().all(|&l| l == 0)
}

/// Number of significant limbs of a little-endian value.
#[inline(always)]
fn limb_len(a: &[u64]) -> usize {
    a.iter().rposition(|&l| l != 0).map_or(0, |i| i + 1)
}

/// Reduce an 8-limb (512-bit) value modulo `m = 2^256 - c`.
///
/// Uses the identity `2^256 ≡ c (mod m)`: repeatedly folds the high half
/// into the low half as `lo + hi * c` until the high half is zero, then
/// performs final conditional subtractions. Terminates in at most four
/// folds for the secp256k1 moduli (`c < 2^130`).
///
/// The fold multiplies only the *significant* limbs of `hi` and `c`
/// instead of a full 4×4 schoolbook product. For the base field
/// (`c = 2^32 + 977` fits one limb) this turns the first fold into 4
/// multiply-accumulates and the second into 1 — reduction drops from
/// roughly the cost of the 4×4 multiply itself to a small fraction of
/// it, which is the single largest constant-factor win in point
/// arithmetic (every doubling performs ~7 reductions).
#[inline]
pub(crate) fn reduce_wide(wide: [u64; 8], m: &[u64; 4], c: &[u64; 4]) -> [u64; 4] {
    let c_len = limb_len(c);
    let mut w = wide;
    loop {
        let hi = [w[4], w[5], w[6], w[7]];
        let hi_len = limb_len(&hi);
        if hi_len == 0 {
            break;
        }
        // next = hi[..hi_len] * c[..c_len] + lo. hi * c < 2^256 * 2^130,
        // so the sum fits in 8 limbs with no carry out of the top limb.
        let mut next = [0u64; 8];
        next[..4].copy_from_slice(&w[..4]);
        for i in 0..hi_len {
            let mut carry = 0u64;
            for j in 0..c_len {
                let (lo_limb, hi_limb) = mac(next[i + j], hi[i], c[j], carry);
                next[i + j] = lo_limb;
                carry = hi_limb;
            }
            let mut k = i + c_len;
            while carry != 0 {
                debug_assert!(k < 8, "fold overflowed 512 bits");
                let (s, cy) = adc(next[k], carry, 0);
                next[k] = s;
                carry = cy;
                k += 1;
            }
        }
        w = next;
    }
    let mut r = [w[0], w[1], w[2], w[3]];
    while cmp4(&r, m) != Ordering::Less {
        r = sub4(&r, m).0;
    }
    r
}

/// `(a + b) mod m`, assuming `a, b < m`.
#[inline]
pub(crate) fn add_mod(a: &[u64; 4], b: &[u64; 4], m: &[u64; 4]) -> [u64; 4] {
    let (sum, carry) = add4(a, b);
    if carry == 1 || cmp4(&sum, m) != Ordering::Less {
        // The borrow from the subtraction cancels against the carry.
        sub4(&sum, m).0
    } else {
        sum
    }
}

/// `(a - b) mod m`, assuming `a, b < m`.
#[inline]
pub(crate) fn sub_mod(a: &[u64; 4], b: &[u64; 4], m: &[u64; 4]) -> [u64; 4] {
    let (diff, borrow) = sub4(a, b);
    if borrow == 1 {
        add4(&diff, m).0
    } else {
        diff
    }
}

/// `(a * b) mod m` where `m = 2^256 - c`.
#[inline]
pub(crate) fn mul_mod(a: &[u64; 4], b: &[u64; 4], m: &[u64; 4], c: &[u64; 4]) -> [u64; 4] {
    reduce_wide(mul4(a, b), m, c)
}

/// `a^e mod m` by fixed 4-bit-window exponentiation, MSB first. `e` is
/// little-endian.
///
/// Both secp256k1 inversion exponents (`p−2`, `n−2`) are dense in ones,
/// so the windowed form (≈ 256 squarings + 64 window multiplies + 14
/// table multiplies) roughly halves the multiply count of plain
/// square-and-multiply — inversions back every point normalization and
/// signature encoding, so this is a hot path.
pub(crate) fn pow_mod(a: &[u64; 4], e: &[u64; 4], m: &[u64; 4], c: &[u64; 4]) -> [u64; 4] {
    if is_zero4(e) {
        return [1, 0, 0, 0]; // a^0 = 1
    }
    // table[d] = a^d for d in 0..16.
    let mut table = [[1u64, 0, 0, 0]; 16];
    table[1] = *a;
    for d in 2..16 {
        table[d] = mul_mod(&table[d - 1], a, m, c);
    }
    let mut result = [1u64, 0, 0, 0];
    let mut started = false;
    for limb_idx in (0..4).rev() {
        for window in (0..16).rev() {
            let digit = ((e[limb_idx] >> (window * 4)) & 0xF) as usize;
            if started {
                for _ in 0..4 {
                    result = mul_mod(&result, &result, m, c);
                }
            }
            if digit != 0 {
                if started {
                    result = mul_mod(&result, &table[digit], m, c);
                } else {
                    result = table[digit];
                    started = true;
                }
            }
        }
    }
    result
}

/// Round-to-nearest division of a 512-bit numerator by a 256-bit
/// divisor: `round(num / d)` = `floor((num + d/2) / d)`.
///
/// Plain binary long division — this backs the **one-time** derivation
/// of the GLV decomposition constants `round(2^384·b/n)` in
/// [`crate::scalar`]; per-scalar splits then need only a widening
/// multiply and a shift. The quotient must fit 4 limbs (guaranteed for
/// numerators below `2^510` with `d` near `2^256`).
pub(crate) fn div_rounded_wide(num: &[u64; 8], d: &[u64; 4]) -> [u64; 4] {
    let half = shr4(d, 1);
    let mut n = *num;
    let mut carry = 0u64;
    for i in 0..8 {
        let add = if i < 4 { half[i] } else { 0 };
        let (s, c) = adc(n[i], add, carry);
        n[i] = s;
        carry = c;
    }
    debug_assert_eq!(carry, 0, "numerator overflowed 512 bits");
    let mut rem = [0u64; 5];
    let mut q = [0u64; 4];
    for bit in (0..512).rev() {
        // rem = rem << 1 | bit(n, bit)
        let mut incoming = (n[bit / 64] >> (bit % 64)) & 1;
        for limb in rem.iter_mut() {
            let outgoing = *limb >> 63;
            *limb = (*limb << 1) | incoming;
            incoming = outgoing;
        }
        let low = [rem[0], rem[1], rem[2], rem[3]];
        if rem[4] != 0 || cmp4(&low, d) != Ordering::Less {
            let (diff, borrow) = sub4(&low, d);
            rem[..4].copy_from_slice(&diff);
            rem[4] -= borrow;
            debug_assert_eq!(rem[4], 0, "long-division remainder invariant");
            debug_assert!(bit < 256, "quotient overflowed 4 limbs");
            q[bit / 64] |= 1 << (bit % 64);
        }
    }
    q
}

/// Parse 32 big-endian bytes into 4 little-endian limbs (no reduction).
pub(crate) fn limbs_from_be_bytes(bytes: &[u8; 32]) -> [u64; 4] {
    let mut limbs = [0u64; 4];
    for (i, limb) in limbs.iter_mut().enumerate() {
        let start = (3 - i) * 8;
        let mut chunk = [0u8; 8];
        chunk.copy_from_slice(&bytes[start..start + 8]);
        *limb = u64::from_be_bytes(chunk);
    }
    limbs
}

/// Serialize 4 little-endian limbs as 32 big-endian bytes.
pub(crate) fn limbs_to_be_bytes(limbs: &[u64; 4]) -> [u8; 32] {
    let mut out = [0u8; 32];
    for (i, limb) in limbs.iter().enumerate() {
        let start = (3 - i) * 8;
        out[start..start + 8].copy_from_slice(&limb.to_be_bytes());
    }
    out
}

/// Shift a 4-limb value right by `bits` (< 64).
pub(crate) fn shr4(a: &[u64; 4], bits: u32) -> [u64; 4] {
    debug_assert!(bits < 64);
    if bits == 0 {
        return *a;
    }
    let mut out = [0u64; 4];
    for i in 0..4 {
        out[i] = a[i] >> bits;
        if i + 1 < 4 {
            out[i] |= a[i + 1] << (64 - bits);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const M_SMALL: [u64; 4] = [0xFFFF_FFFE_FFFF_FC2F, u64::MAX, u64::MAX, u64::MAX]; // secp256k1 p
    const C_SMALL: [u64; 4] = [0x1_0000_03D1, 0, 0, 0];

    #[test]
    fn adc_carries() {
        assert_eq!(adc(u64::MAX, 1, 0), (0, 1));
        assert_eq!(adc(u64::MAX, u64::MAX, 1), (u64::MAX, 1));
        assert_eq!(adc(1, 2, 0), (3, 0));
    }

    #[test]
    fn sbb_borrows() {
        assert_eq!(sbb(0, 1, 0), (u64::MAX, 1));
        assert_eq!(sbb(5, 3, 1), (1, 0));
        assert_eq!(sbb(0, 0, 1), (u64::MAX, 1));
    }

    #[test]
    fn mac_accumulates() {
        let (lo, hi) = mac(7, u64::MAX, u64::MAX, 3);
        // u64::MAX^2 + 7 + 3 fits in 128 bits exactly.
        let wide = u128::from(u64::MAX) * u128::from(u64::MAX) + 7 + 3;
        assert_eq!(lo, wide as u64);
        assert_eq!(hi, (wide >> 64) as u64);
    }

    #[test]
    fn add4_and_sub4_roundtrip() {
        let a = [1, 2, 3, 4];
        let b = [5, 6, 7, 8];
        let (sum, carry) = add4(&a, &b);
        assert_eq!(carry, 0);
        let (diff, borrow) = sub4(&sum, &b);
        assert_eq!(borrow, 0);
        assert_eq!(diff, a);
    }

    #[test]
    fn add4_carry_out() {
        let a = [u64::MAX; 4];
        let b = [1, 0, 0, 0];
        let (sum, carry) = add4(&a, &b);
        assert_eq!(sum, [0, 0, 0, 0]);
        assert_eq!(carry, 1);
    }

    #[test]
    fn mul4_small_values() {
        let a = [3, 0, 0, 0];
        let b = [4, 0, 0, 0];
        assert_eq!(mul4(&a, &b), [12, 0, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn mul4_cross_limb() {
        // (2^64) * (2^64) = 2^128
        let a = [0, 1, 0, 0];
        let b = [0, 1, 0, 0];
        assert_eq!(mul4(&a, &b), [0, 0, 1, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn mul4_max() {
        // (2^256 - 1)^2 = 2^512 - 2^257 + 1
        let a = [u64::MAX; 4];
        let prod = mul4(&a, &a);
        assert_eq!(prod[0], 1);
        assert_eq!(prod[1], 0);
        assert_eq!(prod[2], 0);
        assert_eq!(prod[3], 0);
        assert_eq!(prod[4], u64::MAX - 1);
        assert_eq!(prod[5], u64::MAX);
        assert_eq!(prod[6], u64::MAX);
        assert_eq!(prod[7], u64::MAX);
    }

    #[test]
    fn cmp4_orders() {
        assert_eq!(
            cmp4(&[0, 0, 0, 1], &[u64::MAX, u64::MAX, u64::MAX, 0]),
            Ordering::Greater
        );
        assert_eq!(cmp4(&[1, 0, 0, 0], &[2, 0, 0, 0]), Ordering::Less);
        assert_eq!(cmp4(&[9, 9, 9, 9], &[9, 9, 9, 9]), Ordering::Equal);
    }

    #[test]
    fn reduce_wide_identity_below_modulus() {
        let wide = [42, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(reduce_wide(wide, &M_SMALL, &C_SMALL), [42, 0, 0, 0]);
    }

    #[test]
    fn reduce_wide_exactly_modulus() {
        let mut wide = [0u64; 8];
        wide[..4].copy_from_slice(&M_SMALL);
        assert_eq!(reduce_wide(wide, &M_SMALL, &C_SMALL), [0, 0, 0, 0]);
    }

    #[test]
    fn reduce_wide_two_to_256() {
        // 2^256 mod p = c
        let mut wide = [0u64; 8];
        wide[4] = 1;
        assert_eq!(reduce_wide(wide, &M_SMALL, &C_SMALL), C_SMALL);
    }

    #[test]
    fn reduce_wide_max_512() {
        // Consistency: (2^512 - 1) mod p computed two ways.
        let wide = [u64::MAX; 8];
        let r = reduce_wide(wide, &M_SMALL, &C_SMALL);
        // (2^256 - 1 + 2^256 * (2^256 - 1)) mod p
        // = (c - 1 + c * (c - 1)) mod p  since 2^256 ≡ c
        let c_minus_1 = sub4(&C_SMALL, &[1, 0, 0, 0]).0;
        let prod = mul4(&C_SMALL, &c_minus_1);
        let mut acc = prod;
        let mut carry = 0u64;
        for i in 0..4 {
            let (s, cy) = adc(acc[i], c_minus_1[i], carry);
            acc[i] = s;
            carry = cy;
        }
        for limb in acc.iter_mut().skip(4) {
            let (s, cy) = adc(*limb, 0, carry);
            *limb = s;
            carry = cy;
        }
        assert_eq!(r, reduce_wide(acc, &M_SMALL, &C_SMALL));
    }

    #[test]
    fn add_mod_wraps() {
        let a = sub4(&M_SMALL, &[1, 0, 0, 0]).0; // m - 1
        let b = [1, 0, 0, 0];
        assert_eq!(add_mod(&a, &b, &M_SMALL), [0, 0, 0, 0]);
    }

    #[test]
    fn sub_mod_wraps() {
        let a = [0, 0, 0, 0];
        let b = [1, 0, 0, 0];
        let expect = sub4(&M_SMALL, &[1, 0, 0, 0]).0;
        assert_eq!(sub_mod(&a, &b, &M_SMALL), expect);
    }

    #[test]
    fn pow_mod_small_cases() {
        let a = [3, 0, 0, 0];
        assert_eq!(pow_mod(&a, &[0, 0, 0, 0], &M_SMALL, &C_SMALL), [1, 0, 0, 0]);
        assert_eq!(pow_mod(&a, &[1, 0, 0, 0], &M_SMALL, &C_SMALL), [3, 0, 0, 0]);
        assert_eq!(
            pow_mod(&a, &[5, 0, 0, 0], &M_SMALL, &C_SMALL),
            [243, 0, 0, 0]
        );
    }

    #[test]
    fn fermat_inverse_via_pow() {
        // a^(p-1) = 1 mod p for a != 0 (Fermat).
        let a = [123_456_789, 987, 0, 0];
        let p_minus_1 = sub4(&M_SMALL, &[1, 0, 0, 0]).0;
        assert_eq!(pow_mod(&a, &p_minus_1, &M_SMALL, &C_SMALL), [1, 0, 0, 0]);
    }

    #[test]
    fn sqr4_matches_mul4() {
        let cases = [
            [0u64; 4],
            [1, 0, 0, 0],
            [u64::MAX; 4],
            [u64::MAX, 0, u64::MAX, 0],
            [
                0x1234_5678_9ABC_DEF0,
                0xFEDC_BA98_7654_3210,
                42,
                0x8000_0000_0000_0000,
            ],
            [
                0xDEAD_BEEF,
                0xCAFE_BABE,
                0x0123_4567_89AB_CDEF,
                u64::MAX - 1,
            ],
        ];
        for a in cases {
            assert_eq!(sqr4(&a), mul4(&a, &a), "a = {a:?}");
        }
    }

    #[test]
    fn byte_roundtrip() {
        let limbs = [0x1122_3344_5566_7788, 0x99AA_BBCC_DDEE_FF00, 7, u64::MAX];
        let bytes = limbs_to_be_bytes(&limbs);
        assert_eq!(limbs_from_be_bytes(&bytes), limbs);
        // Big-endian: the most significant limb comes first.
        assert_eq!(&bytes[0..8], &u64::MAX.to_be_bytes());
    }

    #[test]
    fn shr4_shifts_across_limbs() {
        let a = [0b100, 0b1, 0, 0];
        let r = shr4(&a, 2);
        assert_eq!(r[0], 1 | (0b1 << 62));
        assert_eq!(r[1], 0);
    }
}
