//! SHA-256 (FIPS 180-4) and HMAC-SHA256 (RFC 2104), implemented from
//! scratch.
//!
//! The tamper-proof log, Merkle hash trees, Schnorr challenges and CoSi
//! challenges in Fides all hash through this module. The paper (§2.3) only
//! requires a one-way, collision-resistant hash; SHA-256 is the natural
//! concrete choice.
//!
//! # Example
//!
//! ```
//! use fides_crypto::sha256::Sha256;
//!
//! let digest = Sha256::digest(b"abc");
//! assert_eq!(
//!     digest.to_hex(),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
//! );
//! ```

use crate::hash::Digest;

/// Initial hash values: first 32 bits of the fractional parts of the
/// square roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants: first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Streaming SHA-256 hasher.
///
/// Feed data with [`Sha256::update`] and produce the digest with
/// [`Sha256::finalize`]; or use [`Sha256::digest`] for one-shot hashing.
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total message length in bytes.
    length: u64,
    buffer: [u8; 64],
    buffered: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            length: 0,
            buffer: [0u8; 64],
            buffered: 0,
        }
    }

    /// One-shot convenience: hash `data` and return the digest.
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Hash the concatenation of several byte strings.
    ///
    /// Note that this is *not* injective across different splits of the
    /// same bytes; callers that need framing must length-prefix (the
    /// [`crate::encoding`] module does).
    pub fn digest_parts(parts: &[&[u8]]) -> Digest {
        let mut h = Sha256::new();
        for p in parts {
            h.update(p);
        }
        h.finalize()
    }

    /// Absorb `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        let mut input = data;
        // Fill a partially-filled buffer first.
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        // Whole blocks straight from the input.
        while input.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&input[..64]);
            self.compress(&block);
            input = &input[64..];
        }
        // Stash the tail.
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffered = input.len();
        }
    }

    /// Apply padding and produce the final digest, consuming the hasher.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.length.wrapping_mul(8);
        // Append 0x80 then zeros until 8 bytes remain in the block.
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0x00]);
        }
        // The length update above also advanced `self.length`; the
        // captured `bit_len` is the real message length.
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest::new(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// HMAC-SHA256 per RFC 2104.
///
/// Used for deterministic nonce derivation in [`crate::schnorr`] and
/// [`crate::cosi`] (in the spirit of RFC 6979), which keeps the whole
/// system reproducible without an OS random number generator.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    const BLOCK: usize = 64;
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        key_block[..32].copy_from_slice(Sha256::digest(key).as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let inner = {
        let mut h = Sha256::new();
        h.update(&ipad);
        h.update(message);
        h.finalize()
    };
    let mut h = Sha256::new();
    h.update(&opad);
    h.update(inner.as_bytes());
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_string() {
        assert_eq!(
            Sha256::digest(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            Sha256::digest(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            Sha256::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn four_block_message() {
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(
            Sha256::digest(msg).to_hex(),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_oneshot_at_odd_boundaries() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = Sha256::digest(&data);
        for split in [0usize, 1, 55, 56, 63, 64, 65, 127, 500, 999] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn digest_parts_concatenates() {
        assert_eq!(Sha256::digest_parts(&[b"ab", b"c"]), Sha256::digest(b"abc"));
    }

    #[test]
    fn hmac_rfc4231_case1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            mac.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn hmac_rfc4231_case2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            mac.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn hmac_rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            mac.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn hmac_long_key_is_hashed() {
        // RFC 4231 test case 6: 131-byte key.
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            mac.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn different_inputs_different_digests() {
        assert_ne!(Sha256::digest(b"x"), Sha256::digest(b"y"));
        assert_ne!(Sha256::digest(b""), Sha256::digest(b"\0"));
    }

    #[test]
    fn length_extension_padding_boundaries() {
        // Messages of lengths around the 55/56-byte padding boundary.
        for len in 50..70usize {
            let data = vec![0x41u8; len];
            let d1 = Sha256::digest(&data);
            let mut h = Sha256::new();
            for b in &data {
                h.update(&[*b]);
            }
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }
}
