//! SHA-256 (FIPS 180-4) and HMAC-SHA256 (RFC 2104), implemented from
//! scratch.
//!
//! The tamper-proof log, Merkle hash trees, Schnorr challenges and CoSi
//! challenges in Fides all hash through this module. The paper (§2.3) only
//! requires a one-way, collision-resistant hash; SHA-256 is the natural
//! concrete choice.
//!
//! Besides the streaming [`Sha256`] hasher there is a **multi-lane**
//! batch API, [`Sha256::digest_many`], which compresses 4 or 8
//! independent messages per pass through the round schedule. SHA-256's
//! long add-rotate-xor dependency chain leaves most of a superscalar
//! core idle on a single message; interleaving independent lanes in
//! structure-of-arrays form fills those slots (and auto-vectorizes),
//! so hashing `N` short messages — Merkle node hashes, batch Schnorr
//! challenges — costs far less than `N` sequential digests.
//!
//! # Example
//!
//! ```
//! use fides_crypto::sha256::Sha256;
//!
//! let digest = Sha256::digest(b"abc");
//! assert_eq!(
//!     digest.to_hex(),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
//! );
//! ```

use crate::hash::Digest;

/// Initial hash values: first 32 bits of the fractional parts of the
/// square roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants: first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Streaming SHA-256 hasher.
///
/// Feed data with [`Sha256::update`] and produce the digest with
/// [`Sha256::finalize`]; or use [`Sha256::digest`] for one-shot hashing.
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total message length in bytes.
    length: u64,
    buffer: [u8; 64],
    buffered: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            length: 0,
            buffer: [0u8; 64],
            buffered: 0,
        }
    }

    /// One-shot convenience: hash `data` and return the digest.
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Hash the concatenation of several byte strings.
    ///
    /// Note that this is *not* injective across different splits of the
    /// same bytes; callers that need framing must length-prefix (the
    /// [`crate::encoding`] module does).
    pub fn digest_parts(parts: &[&[u8]]) -> Digest {
        let mut h = Sha256::new();
        for p in parts {
            h.update(p);
        }
        h.finalize()
    }

    /// Hash a batch of independent messages, interleaving 4 or 8 of
    /// them per pass through the compression function (see the module
    /// docs). The result is element-wise identical to calling
    /// [`Sha256::digest`] on each message.
    ///
    /// The lane width is chosen at runtime: 8 when the CPU advertises
    /// AVX2 (x86-64), 4 otherwise, overridable with the
    /// `FIDES_SHA_LANES` environment variable (`1`, `4` or `8`; `1`
    /// forces the scalar path, which the differential tests use).
    pub fn digest_many(messages: &[&[u8]]) -> Vec<Digest> {
        let lanes = lane_width();
        let mut out = Vec::with_capacity(messages.len());
        let mut rest = messages;
        if lanes >= 8 {
            while rest.len() >= 8 {
                let (chunk, tail) = rest.split_at(8);
                out.extend_from_slice(&digest_lanes::<8>(chunk.try_into().expect("8 lanes")));
                rest = tail;
            }
        }
        if lanes >= 4 {
            while rest.len() >= 4 {
                let (chunk, tail) = rest.split_at(4);
                out.extend_from_slice(&digest_lanes::<4>(chunk.try_into().expect("4 lanes")));
                rest = tail;
            }
        }
        out.extend(rest.iter().map(|m| Sha256::digest(m)));
        out
    }

    /// Absorb `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        let mut input = data;
        // Fill a partially-filled buffer first.
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == 64 {
                compress_block(&mut self.state, &self.buffer);
                self.buffered = 0;
            }
        }
        // Whole blocks compress straight from the input, no staging copy.
        while input.len() >= 64 {
            compress_block(
                &mut self.state,
                input[..64].try_into().expect("64-byte block"),
            );
            input = &input[64..];
        }
        // Stash the tail.
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffered = input.len();
        }
    }

    /// Apply padding and produce the final digest, consuming the hasher.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.length.wrapping_mul(8);
        // Padding written in place: 0x80, zeros, and the 64-bit length —
        // one compression when the tail leaves ≥ 8 spare bytes, two
        // otherwise.
        let n = self.buffered;
        self.buffer[n] = 0x80;
        if n < 56 {
            self.buffer[n + 1..56].fill(0);
        } else {
            self.buffer[n + 1..].fill(0);
            compress_block(&mut self.state, &self.buffer);
            self.buffer[..56].fill(0);
        }
        self.buffer[56..].copy_from_slice(&bit_len.to_be_bytes());
        compress_block(&mut self.state, &self.buffer);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest::new(out)
    }
}

/// The single-message compression function. A free function over the
/// state array (rather than a `&mut self` method) so the buffered-block
/// path can borrow `state` and `buffer` disjointly instead of copying
/// the block out first.
fn compress_block(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ ((!e) & g);
        let temp1 = h
            .wrapping_add(big_s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let temp2 = big_s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(temp1);
        d = c;
        c = b;
        b = a;
        a = temp1.wrapping_add(temp2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Runtime lane-width choice for [`Sha256::digest_many`], cached after
/// the first call.
fn lane_width() -> usize {
    use std::sync::OnceLock;
    static WIDTH: OnceLock<usize> = OnceLock::new();
    *WIDTH.get_or_init(|| {
        if let Ok(v) = std::env::var("FIDES_SHA_LANES") {
            if let Ok(n) = v.parse::<usize>() {
                if n == 1 || n == 4 || n == 8 {
                    return n;
                }
            }
        }
        // 8 interleaved lanes want 8×32-bit SIMD registers; without
        // AVX2 (or off x86-64), 4 lanes keep the working set in what
        // 128-bit units (or plain scalar ILP) can hold.
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            return 8;
        }
        4
    })
}

/// Number of 64-byte blocks `len` message bytes occupy once padded.
fn padded_block_count(len: usize) -> usize {
    len / 64 + if len % 64 < 56 { 1 } else { 2 }
}

/// The `index`-th 64-byte block of `msg` under SHA-256 padding: message
/// bytes, then `0x80`, zeros, and the big-endian bit length in the last
/// 8 bytes of the final block.
fn padded_block(msg: &[u8], index: usize) -> [u8; 64] {
    let start = index * 64;
    if let Some(body) = msg.get(start..start + 64) {
        return body.try_into().expect("64-byte slice");
    }
    let mut block = [0u8; 64];
    if start <= msg.len() {
        let tail = &msg[start..];
        block[..tail.len()].copy_from_slice(tail);
        block[tail.len()] = 0x80;
    }
    if index == padded_block_count(msg.len()) - 1 {
        block[56..].copy_from_slice(&((msg.len() as u64) * 8).to_be_bytes());
    }
    block
}

/// Hashes `L` messages in lock-step, one padded block per lane per
/// compression pass. Lanes whose (padded) message is shorter than the
/// longest simply stop accumulating: the pass still computes their
/// rounds on a dummy block but masks the state feed-forward, keeping
/// every lane loop a fixed-trip-count, branch-free candidate for
/// auto-vectorization.
fn digest_lanes<const L: usize>(msgs: &[&[u8]; L]) -> [Digest; L] {
    let mut states = [[0u32; L]; 8];
    for (word, init) in states.iter_mut().zip(H0) {
        *word = [init; L];
    }
    let mut nblocks = [0usize; L];
    for l in 0..L {
        nblocks[l] = padded_block_count(msgs[l].len());
    }
    let max_blocks = *nblocks.iter().max().expect("L > 0");

    let mut blocks = [[0u8; 64]; L];
    let mut active = [true; L];
    #[cfg(target_arch = "x86_64")]
    let avx2 = std::arch::is_x86_feature_detected!("avx2");
    for j in 0..max_blocks {
        for l in 0..L {
            active[l] = j < nblocks[l];
            if active[l] {
                blocks[l] = padded_block(msgs[l], j);
            }
        }
        #[cfg(target_arch = "x86_64")]
        if avx2 {
            // SAFETY: guarded by the runtime AVX2 detection above.
            unsafe { compress_lanes_avx2(&mut states, &blocks, &active) };
            continue;
        }
        compress_lanes(&mut states, &blocks, &active);
    }

    let mut out = [Digest::ZERO; L];
    for (l, digest) in out.iter_mut().enumerate() {
        let mut bytes = [0u8; 32];
        for (word, chunk) in states.iter().zip(bytes.chunks_exact_mut(4)) {
            chunk.copy_from_slice(&word[l].to_be_bytes());
        }
        *digest = Digest::new(bytes);
    }
    out
}

/// [`compress_lanes`] compiled with AVX2 enabled, so the
/// auto-vectorizer can use 256-bit lanes (the portable build targets
/// baseline x86-64 and would otherwise be limited to SSE2). Same code,
/// different codegen; selected at runtime by feature detection.
///
/// # Safety
///
/// The caller must have verified AVX2 support
/// (`is_x86_feature_detected!("avx2")`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn compress_lanes_avx2<const L: usize>(
    states: &mut [[u32; L]; 8],
    blocks: &[[u8; 64]; L],
    active: &[bool; L],
) {
    compress_lanes(states, blocks, active);
}

/// `L`-lane compression in structure-of-arrays form: every working
/// variable is an `[u32; L]` and every operation is a fixed-length lane
/// loop, so the compiler vectorizes each one into `L`-wide SIMD (or at
/// worst schedules the independent lanes across scalar ports). The
/// message schedule is held as a rolling 16-entry window rather than
/// the expanded 64 to keep the working set in registers/L1.
#[inline(always)]
fn compress_lanes<const L: usize>(
    states: &mut [[u32; L]; 8],
    blocks: &[[u8; 64]; L],
    active: &[bool; L],
) {
    let mut w = [[0u32; L]; 16];
    for (t, wt) in w.iter_mut().enumerate() {
        for l in 0..L {
            let chunk = &blocks[l][t * 4..t * 4 + 4];
            wt[l] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *states;
    let mut t1 = [0u32; L];
    let mut t2 = [0u32; L];
    for i in 0..64 {
        if i >= 16 {
            let mut next = [0u32; L];
            for l in 0..L {
                let w15 = w[(i - 15) % 16][l];
                let w2 = w[(i - 2) % 16][l];
                let s0 = w15.rotate_right(7) ^ w15.rotate_right(18) ^ (w15 >> 3);
                let s1 = w2.rotate_right(17) ^ w2.rotate_right(19) ^ (w2 >> 10);
                next[l] = w[i % 16][l]
                    .wrapping_add(s0)
                    .wrapping_add(w[(i - 7) % 16][l])
                    .wrapping_add(s1);
            }
            w[i % 16] = next;
        }
        let wt = &w[i % 16];
        for l in 0..L {
            let big_s1 = e[l].rotate_right(6) ^ e[l].rotate_right(11) ^ e[l].rotate_right(25);
            let ch = (e[l] & f[l]) ^ ((!e[l]) & g[l]);
            t1[l] = h[l]
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(wt[l]);
            let big_s0 = a[l].rotate_right(2) ^ a[l].rotate_right(13) ^ a[l].rotate_right(22);
            let maj = (a[l] & b[l]) ^ (a[l] & c[l]) ^ (b[l] & c[l]);
            t2[l] = big_s0.wrapping_add(maj);
        }
        h = g;
        g = f;
        f = e;
        for l in 0..L {
            e[l] = d[l].wrapping_add(t1[l]);
        }
        d = c;
        c = b;
        b = a;
        for l in 0..L {
            a[l] = t1[l].wrapping_add(t2[l]);
        }
    }

    for (word, vars) in states.iter_mut().zip([a, b, c, d, e, f, g, h]) {
        for l in 0..L {
            if active[l] {
                word[l] = word[l].wrapping_add(vars[l]);
            }
        }
    }
}

/// HMAC-SHA256 per RFC 2104.
///
/// Used for deterministic nonce derivation in [`crate::schnorr`] and
/// [`crate::cosi`] (in the spirit of RFC 6979), which keeps the whole
/// system reproducible without an OS random number generator.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    const BLOCK: usize = 64;
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        key_block[..32].copy_from_slice(Sha256::digest(key).as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let inner = {
        let mut h = Sha256::new();
        h.update(&ipad);
        h.update(message);
        h.finalize()
    };
    let mut h = Sha256::new();
    h.update(&opad);
    h.update(inner.as_bytes());
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_string() {
        assert_eq!(
            Sha256::digest(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            Sha256::digest(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            Sha256::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn four_block_message() {
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(
            Sha256::digest(msg).to_hex(),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_oneshot_at_odd_boundaries() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = Sha256::digest(&data);
        for split in [0usize, 1, 55, 56, 63, 64, 65, 127, 500, 999] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn digest_parts_concatenates() {
        assert_eq!(Sha256::digest_parts(&[b"ab", b"c"]), Sha256::digest(b"abc"));
    }

    #[test]
    fn hmac_rfc4231_case1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            mac.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn hmac_rfc4231_case2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            mac.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn hmac_rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            mac.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn hmac_long_key_is_hashed() {
        // RFC 4231 test case 6: 131-byte key.
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            mac.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn different_inputs_different_digests() {
        assert_ne!(Sha256::digest(b"x"), Sha256::digest(b"y"));
        assert_ne!(Sha256::digest(b""), Sha256::digest(b"\0"));
    }

    #[test]
    fn padded_block_count_boundaries() {
        for (len, want) in [
            (0usize, 1usize),
            (1, 1),
            (55, 1),
            (56, 2),
            (63, 2),
            (64, 2),
            (119, 2),
            (120, 3),
            (128, 3),
        ] {
            assert_eq!(padded_block_count(len), want, "len {len}");
        }
    }

    #[test]
    fn lanes_match_scalar_across_block_boundaries() {
        // Lengths chosen to straddle every padding case: empty, short,
        // the 55/56 one-vs-two-block boundary, exact multiples of 64,
        // and a long multi-block tail — mixed within one lane group so
        // the masking path is exercised.
        let lens = [0usize, 1, 31, 55, 56, 63, 64, 65, 119, 120, 127, 128, 300];
        let data: Vec<Vec<u8>> = lens
            .iter()
            .map(|&n| (0..n).map(|i| (i * 7 + n) as u8).collect())
            .collect();
        for window in data.windows(4) {
            let msgs: [&[u8]; 4] = [&window[0], &window[1], &window[2], &window[3]];
            let got = digest_lanes::<4>(&msgs);
            for (m, d) in msgs.iter().zip(got) {
                assert_eq!(d, Sha256::digest(m), "len {}", m.len());
            }
        }
        for window in data.windows(8) {
            let msgs: [&[u8]; 8] = std::array::from_fn(|i| window[i].as_slice());
            let got = digest_lanes::<8>(&msgs);
            for (m, d) in msgs.iter().zip(got) {
                assert_eq!(d, Sha256::digest(m), "len {}", m.len());
            }
        }
    }

    #[test]
    fn digest_many_matches_scalar() {
        // 13 messages: exercises the 8-lane group, the 4-lane group and
        // the scalar tail in one call regardless of dispatch choice.
        let data: Vec<Vec<u8>> = (0..13u32)
            .map(|i| (0..(i * 37) % 200).map(|j| (i + j) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let got = Sha256::digest_many(&refs);
        assert_eq!(got.len(), refs.len());
        for (m, d) in refs.iter().zip(got) {
            assert_eq!(d, Sha256::digest(m));
        }
    }

    #[test]
    fn digest_many_empty_and_single() {
        assert!(Sha256::digest_many(&[]).is_empty());
        assert_eq!(Sha256::digest_many(&[b"abc"]), vec![Sha256::digest(b"abc")]);
    }

    #[test]
    fn length_extension_padding_boundaries() {
        // Messages of lengths around the 55/56-byte padding boundary.
        for len in 50..70usize {
            let data = vec![0x41u8; len];
            let d1 = Sha256::digest(&data);
            let mut h = Sha256::new();
            for b in &data {
                h.update(&[*b]);
            }
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }
}
