//! Merkle hash trees with verification objects (paper §2.3).
//!
//! Fides authenticates each server's datastore by storing the Merkle root
//! of every involved shard in the transaction block (§4.2). During an
//! audit, a server produces a **verification object** (VO) — the sibling
//! hashes along the path from a data item to the root — and the auditor
//! recomputes the root to compare against the logged one (Lemma 2).
//!
//! The tree supports **incremental updates**: changing one leaf recomputes
//! only the `log₂ n` nodes on its path, which is exactly the "MHT update"
//! cost the paper measures in Figures 14–15.
//!
//! Leaves and internal nodes are domain-separated (`0x00` / `0x01`
//! prefixes) so an internal node can never be confused with a leaf.
//!
//! # Example
//!
//! ```
//! use fides_crypto::merkle::{hash_leaf, MerkleTree};
//!
//! let leaves: Vec<_> = (0u8..8).map(|i| hash_leaf(&[i])).collect();
//! let mut tree = MerkleTree::from_leaves(leaves);
//! let root = tree.root();
//!
//! let vo = tree.proof(3);
//! assert!(vo.verify(hash_leaf(&[3]), &root));
//!
//! // Update leaf 3; the old proof no longer matches the new root.
//! tree.update_leaf(3, hash_leaf(b"new"));
//! assert!(!vo.verify(hash_leaf(&[3]), &tree.root()));
//! assert!(tree.proof(3).verify(hash_leaf(b"new"), &tree.root()));
//! ```

use crate::encoding::{Decodable, DecodeError, Decoder, Encodable, Encoder};
use crate::hash::Digest;
use crate::sha256::Sha256;

/// Domain prefix for leaf hashing.
const LEAF_PREFIX: u8 = 0x00;
/// Domain prefix for internal-node hashing.
const NODE_PREFIX: u8 = 0x01;

/// Hashes raw leaf data with leaf domain separation.
pub fn hash_leaf(data: &[u8]) -> Digest {
    Sha256::digest_parts(&[&[LEAF_PREFIX], data])
}

/// Hashes two child digests into their parent:
/// `h(left ‖ right)` with node domain separation.
pub fn hash_nodes(left: &Digest, right: &Digest) -> Digest {
    Sha256::digest_parts(&[&[NODE_PREFIX], left.as_bytes(), right.as_bytes()])
}

/// Batch form of [`hash_nodes`]: hashes every `(left, right)` pair
/// through the multi-lane [`Sha256::digest_many`], compressing up to 8
/// node messages per pass. Identical output to mapping [`hash_nodes`].
pub fn hash_nodes_many(pairs: &[(Digest, Digest)]) -> Vec<Digest> {
    if pairs.len() < 2 {
        return pairs.iter().map(|(l, r)| hash_nodes(l, r)).collect();
    }
    let messages: Vec<[u8; 65]> = pairs
        .iter()
        .map(|(l, r)| {
            let mut m = [0u8; 65];
            m[0] = NODE_PREFIX;
            m[1..33].copy_from_slice(l.as_bytes());
            m[33..].copy_from_slice(r.as_bytes());
            m
        })
        .collect();
    let refs: Vec<&[u8]> = messages.iter().map(|m| m.as_slice()).collect();
    Sha256::digest_many(&refs)
}

/// The digest used to pad the leaf level up to a power of two.
///
/// Computed once and cached: `from_leaves` appends this for every
/// padding slot, and recomputing a SHA-256 digest per padding leaf is
/// measurable on large trees.
pub fn empty_leaf() -> Digest {
    use std::sync::OnceLock;
    static EMPTY: OnceLock<Digest> = OnceLock::new();
    *EMPTY.get_or_init(|| hash_leaf(b"fides.merkle.empty.v1"))
}

/// A binary Merkle hash tree over a vector of leaf digests.
///
/// Internally stores every level (`levels[0]` = padded leaves, last level
/// = root), trading memory for `O(log n)` updates and proofs.
#[derive(Clone, Debug)]
pub struct MerkleTree {
    /// `levels[0]` is the padded leaf level; `levels.last()` has length 1.
    levels: Vec<Vec<Digest>>,
    /// Number of real (un-padded) leaves.
    leaf_count: usize,
}

impl MerkleTree {
    /// Builds a tree over `leaves`. An empty input produces a one-leaf
    /// tree holding the [`empty_leaf`] digest so that every tree has a
    /// root.
    pub fn from_leaves(leaves: Vec<Digest>) -> Self {
        let leaf_count = leaves.len();
        let width = leaf_count.max(1).next_power_of_two();
        let mut level0 = leaves;
        level0.resize(width, empty_leaf());

        let mut levels = vec![level0];
        while levels.last().expect("at least one level").len() > 1 {
            let prev = levels.last().expect("at least one level");
            let pairs: Vec<(Digest, Digest)> = prev.chunks_exact(2).map(|p| (p[0], p[1])).collect();
            levels.push(hash_nodes_many(&pairs));
        }
        MerkleTree { levels, leaf_count }
    }

    /// The number of real leaves.
    pub fn len(&self) -> usize {
        self.leaf_count
    }

    /// Returns `true` if the tree was built over zero leaves.
    pub fn is_empty(&self) -> bool {
        self.leaf_count == 0
    }

    /// Tree height in edges (root of an n-leaf tree is at height
    /// `log₂ n`).
    pub fn height(&self) -> usize {
        self.levels.len() - 1
    }

    /// The root digest.
    pub fn root(&self) -> Digest {
        self.levels.last().expect("at least one level")[0]
    }

    /// The digest currently stored at leaf `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn leaf(&self, index: usize) -> Digest {
        assert!(index < self.leaf_count, "leaf index out of range");
        self.levels[0][index]
    }

    /// Replaces leaf `index` and recomputes the path to the root.
    ///
    /// Returns the number of node hashes recomputed (the path length),
    /// which the benchmark harness aggregates into the paper's "MHT
    /// update time" series (Figure 14).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn update_leaf(&mut self, index: usize, digest: Digest) -> usize {
        assert!(index < self.leaf_count, "leaf index out of range");
        self.levels[0][index] = digest;
        let mut idx = index;
        let mut recomputed = 0;
        for lvl in 0..self.levels.len() - 1 {
            let parent_idx = idx / 2;
            let left = self.levels[lvl][parent_idx * 2];
            let right = self.levels[lvl][parent_idx * 2 + 1];
            self.levels[lvl + 1][parent_idx] = hash_nodes(&left, &right);
            recomputed += 1;
            idx = parent_idx;
        }
        recomputed
    }

    /// Replaces a batch of leaves and recomputes each affected internal
    /// node **once**, bottom-up — a true batch update.
    ///
    /// Per-leaf path walks rehash a shared ancestor once per leaf
    /// (`k·log₂ n` node hashes for `k` updates); this recomputes the
    /// union of the dirty paths instead, which for clustered or large
    /// batches approaches the rebuild lower bound while still touching
    /// nothing outside the dirty region. Duplicate indices are allowed;
    /// the last write wins. Returns the number of internal-node hashes
    /// recomputed.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= self.len()`.
    pub fn update_leaves(&mut self, updates: &[(usize, Digest)]) -> usize {
        if updates.is_empty() {
            return 0;
        }
        for &(index, digest) in updates {
            assert!(index < self.leaf_count, "leaf index out of range");
            self.levels[0][index] = digest;
        }
        // Dirty parent indices, deduplicated level by level.
        let mut dirty: Vec<usize> = updates.iter().map(|&(i, _)| i / 2).collect();
        let mut recomputed = 0;
        for lvl in 0..self.levels.len() - 1 {
            dirty.sort_unstable();
            dirty.dedup();
            // One multi-lane batch per level: all dirty parents hash
            // together instead of one compression chain at a time.
            let pairs: Vec<(Digest, Digest)> = dirty
                .iter()
                .map(|&p| (self.levels[lvl][p * 2], self.levels[lvl][p * 2 + 1]))
                .collect();
            for (&parent, digest) in dirty.iter().zip(hash_nodes_many(&pairs)) {
                self.levels[lvl + 1][parent] = digest;
            }
            recomputed += dirty.len();
            for parent in dirty.iter_mut() {
                *parent /= 2;
            }
        }
        recomputed
    }

    /// [`MerkleTree::update_leaves`], with the subtree rehashing spread
    /// over the process-wide thread pool.
    ///
    /// The dirty leaves are partitioned by the subtree they fall under
    /// at a split level chosen from the pool width; each dirty subtree
    /// is rehashed bottom-up by one pool task over its **disjoint**
    /// slice of every level, and the path from the split level to the
    /// root is merged serially. Small batches (or a one-thread pool)
    /// fall back to the serial batch update — the result is bit-for-bit
    /// identical either way.
    ///
    /// Returns the number of internal-node hashes recomputed.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= self.len()`.
    pub fn update_leaves_parallel(&mut self, updates: &[(usize, Digest)]) -> usize {
        /// Below this many dirty leaves the fork/join overhead exceeds
        /// the hashing it saves.
        const PARALLEL_MIN_LEAVES: usize = 64;
        let pool = rayon::global();
        let height = self.levels.len() - 1;
        if updates.len() < PARALLEL_MIN_LEAVES || pool.current_num_threads() == 1 || height < 4 {
            return self.update_leaves(updates);
        }
        // Pick the split level so there are ~4 subtrees per worker for
        // steal-balancing; if that leaves no parallel levels, fall back.
        let want_subtrees = (4 * pool.current_num_threads()).next_power_of_two();
        let log_want = want_subtrees.trailing_zeros() as usize;
        let split = height.saturating_sub(log_want).max(2);
        let n_subtrees = self.levels[0].len() >> split;
        if n_subtrees <= 1 {
            return self.update_leaves(updates);
        }

        // Phase 1 (serial, cheap): write the new leaf digests.
        for &(index, digest) in updates {
            assert!(index < self.leaf_count, "leaf index out of range");
            self.levels[0][index] = digest;
        }

        // Partition dirty leaves by subtree.
        let mut dirty_leaves: Vec<Vec<usize>> = vec![Vec::new(); n_subtrees];
        for &(index, _) in updates {
            dirty_leaves[index >> split].push(index);
        }

        // Phase 2 (parallel): rehash levels 1..=split inside each dirty
        // subtree. Every task owns a disjoint mutable slice of each
        // level, carved out up front, so no synchronization is needed.
        struct SubtreeTask<'a> {
            /// Node index at the split level (= subtree id).
            id: usize,
            /// Dirty leaf indices (global) under this subtree.
            leaves: Vec<usize>,
            /// `chunks[k]` = this subtree's slice of level `k + 1`.
            chunks: Vec<&'a mut [Digest]>,
            /// Internal nodes this task recomputed.
            recomputed: usize,
        }
        let (low, _high) = self.levels.split_at_mut(split + 1);
        let (leaf_level, mid) = low.split_first_mut().expect("leaf level exists");
        let leaf_level: &[Digest] = leaf_level;
        let mut level_chunks: Vec<_> = mid
            .iter_mut()
            .enumerate()
            .map(|(k, level)| level.chunks_mut(1usize << (split - (k + 1))))
            .collect();
        let mut tasks: Vec<SubtreeTask<'_>> = Vec::new();
        for (id, leaves) in dirty_leaves.into_iter().enumerate() {
            let chunks: Vec<&mut [Digest]> = level_chunks
                .iter_mut()
                .map(|it| it.next().expect("one chunk per subtree"))
                .collect();
            if !leaves.is_empty() {
                tasks.push(SubtreeTask {
                    id,
                    leaves,
                    chunks,
                    recomputed: 0,
                });
            }
        }
        pool.scope(|s| {
            for task in &mut tasks {
                s.spawn(move || {
                    let base_leaf = task.id << split;
                    let mut dirty: Vec<usize> =
                        task.leaves.iter().map(|i| (i - base_leaf) / 2).collect();
                    for lvl in 1..=split {
                        dirty.sort_unstable();
                        dirty.dedup();
                        let (children, parents) = task.chunks.split_at_mut(lvl - 1);
                        let parents = &mut parents[0];
                        let pairs: Vec<(Digest, Digest)> = dirty
                            .iter()
                            .map(|&p| {
                                if lvl == 1 {
                                    let g = base_leaf + 2 * p;
                                    (leaf_level[g], leaf_level[g + 1])
                                } else {
                                    let c = &children[lvl - 2];
                                    (c[2 * p], c[2 * p + 1])
                                }
                            })
                            .collect();
                        for (&p, digest) in dirty.iter().zip(hash_nodes_many(&pairs)) {
                            parents[p] = digest;
                        }
                        task.recomputed += dirty.len();
                        for p in dirty.iter_mut() {
                            *p /= 2;
                        }
                    }
                });
            }
        });
        let mut recomputed: usize = tasks.iter().map(|t| t.recomputed).sum();
        let mut dirty: Vec<usize> = tasks.iter().map(|t| t.id).collect();
        drop(tasks);

        // Phase 3 (serial): merge the dirty split-level nodes to the
        // root — at most `n_subtrees` nodes wide, `height - split` deep.
        for lvl in split..height {
            for p in dirty.iter_mut() {
                *p /= 2;
            }
            dirty.dedup();
            let pairs: Vec<(Digest, Digest)> = dirty
                .iter()
                .map(|&p| (self.levels[lvl][p * 2], self.levels[lvl][p * 2 + 1]))
                .collect();
            for (&parent, digest) in dirty.iter().zip(hash_nodes_many(&pairs)) {
                self.levels[lvl + 1][parent] = digest;
            }
            recomputed += dirty.len();
        }
        recomputed
    }

    /// The root the tree **would** have if `updates` were applied —
    /// computed against an immutable tree by carrying the dirty nodes
    /// in a scratch overlay. One bottom-up pass, no mutation: compared
    /// to the mutate-then-revert way of speculating (two full batch
    /// updates), this halves the hashing and never touches the live
    /// tree. Duplicate indices: last write wins.
    ///
    /// Returns `(root, nodes_hashed)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= self.len()`.
    pub fn root_with_updates(&self, updates: &[(usize, Digest)]) -> (Digest, usize) {
        if updates.is_empty() {
            return (self.root(), 0);
        }
        // The overlay: sorted (node index, digest) pairs of one level.
        let mut overlay: Vec<(usize, Digest)> = Vec::with_capacity(updates.len());
        for &(index, digest) in updates {
            assert!(index < self.leaf_count, "leaf index out of range");
            match overlay.binary_search_by_key(&index, |&(i, _)| i) {
                Ok(at) => overlay[at].1 = digest,
                Err(at) => overlay.insert(at, (index, digest)),
            }
        }
        let mut hashed = 0;
        for level in &self.levels[..self.levels.len() - 1] {
            let mut parents: Vec<(usize, Digest)> = Vec::with_capacity(overlay.len());
            let mut i = 0;
            while i < overlay.len() {
                let parent = overlay[i].0 / 2;
                let lookup = |child: usize, from: usize| {
                    overlay[from..]
                        .iter()
                        .take(2)
                        .find(|&&(idx, _)| idx == child)
                        .map(|&(_, d)| d)
                        .unwrap_or(level[child])
                };
                let left = lookup(parent * 2, i);
                let right = lookup(parent * 2 + 1, i);
                parents.push((parent, hash_nodes(&left, &right)));
                hashed += 1;
                // Skip the sibling if it is the next overlay entry.
                i += 1;
                if i < overlay.len() && overlay[i].0 / 2 == parent {
                    i += 1;
                }
            }
            overlay = parents;
        }
        (overlay[0].1, hashed)
    }

    /// Appends a new leaf, growing (and if necessary re-padding) the
    /// tree. Returns the new leaf's index.
    pub fn push_leaf(&mut self, digest: Digest) -> usize {
        let index = self.leaf_count;
        if index < self.levels[0].len() {
            // Fits in existing padding.
            self.leaf_count += 1;
            self.update_leaf(index, digest);
            index
        } else {
            // Doubling the width: rebuild (rare; amortized O(1) pushes).
            let mut leaves: Vec<Digest> = self.levels[0][..self.leaf_count].to_vec();
            leaves.push(digest);
            *self = MerkleTree::from_leaves(leaves);
            index
        }
    }

    /// Generates the verification object for leaf `index`: the sibling
    /// digests along the path to the root (paper §2.3, "all the sibling
    /// nodes along the path from the data value to the root").
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn proof(&self, index: usize) -> VerificationObject {
        assert!(index < self.leaf_count, "leaf index out of range");
        let mut siblings = Vec::with_capacity(self.height());
        let mut idx = index;
        for lvl in 0..self.levels.len() - 1 {
            let sibling_idx = idx ^ 1;
            siblings.push(self.levels[lvl][sibling_idx]);
            idx /= 2;
        }
        VerificationObject {
            index: index as u64,
            siblings,
        }
    }

    /// All current leaf digests (without padding).
    pub fn leaves(&self) -> &[Digest] {
        &self.levels[0][..self.leaf_count]
    }

    /// Like [`MerkleTree::proof`], but also allows proving a **padding
    /// slot** (an index in `len()..width`): the proof then links the
    /// public [`empty_leaf`] digest to the root. Absence proofs use
    /// this to show that the slot right after the last real leaf is
    /// padding — i.e. nothing sorts after that leaf.
    ///
    /// # Panics
    ///
    /// Panics if `index` is at or beyond the padded width.
    pub fn proof_padding(&self, index: usize) -> VerificationObject {
        assert!(index < self.levels[0].len(), "index beyond padded width");
        let mut siblings = Vec::with_capacity(self.height());
        let mut idx = index;
        for lvl in 0..self.levels.len() - 1 {
            siblings.push(self.levels[lvl][idx ^ 1]);
            idx /= 2;
        }
        VerificationObject {
            index: index as u64,
            siblings,
        }
    }

    /// Generates one **batched** proof covering all of `indices` against
    /// this tree's root — the multiproof behind the verified read
    /// plane's `SnapshotRead`.
    ///
    /// Per-leaf verification objects repeat every shared ancestor's
    /// sibling once per leaf (`k·log₂ n` digests for `k` leaves); the
    /// multiproof carries only the **frontier complement** — siblings
    /// not derivable from the proven leaves themselves — so clustered
    /// key sets approach `log₂ n` total digests and verification hashes
    /// each shared ancestor exactly once. Duplicate indices are
    /// deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= self.len()`.
    pub fn multiproof(&self, indices: &[usize]) -> MultiProof {
        for &index in indices {
            assert!(index < self.leaf_count, "leaf index out of range");
        }
        let mut frontier: Vec<usize> = indices.to_vec();
        frontier.sort_unstable();
        frontier.dedup();
        let mut siblings = Vec::new();
        for level in &self.levels[..self.levels.len() - 1] {
            let mut parents = Vec::with_capacity(frontier.len());
            let mut i = 0;
            while i < frontier.len() {
                let idx = frontier[i];
                let sibling = idx ^ 1;
                if idx & 1 == 0 && frontier.get(i + 1) == Some(&sibling) {
                    // The sibling is itself proven: derivable, not sent.
                    i += 2;
                } else {
                    siblings.push(level[sibling]);
                    i += 1;
                }
                parents.push(idx / 2);
            }
            parents.dedup();
            frontier = parents;
        }
        MultiProof {
            height: self.height() as u32,
            siblings,
        }
    }
}

/// A batched Merkle proof for a *set* of leaves against one root, with
/// shared-path deduplication (see [`MerkleTree::multiproof`]).
///
/// Verification recomputes the root bottom-up from the proven
/// `(index, leaf digest)` pairs, pairing adjacent proven leaves
/// internally and consuming one carried sibling everywhere the
/// complement is needed — the same deterministic order generation used,
/// so a proof is valid for exactly one leaf set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiProof {
    /// Tree height in levels (so verification knows when the frontier
    /// must have collapsed to the root).
    height: u32,
    /// The complement siblings, in consumption order.
    siblings: Vec<Digest>,
}

impl MultiProof {
    /// Tree height this proof was generated against.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of carried sibling digests (the proof's wire size driver).
    pub fn sibling_count(&self) -> usize {
        self.siblings.len()
    }

    /// Recomputes the root implied by this proof for the given
    /// `(leaf index, leaf digest)` set. Returns `None` when the proof is
    /// malformed for this set: wrong sibling count, duplicate indices,
    /// or an empty set. Pairs may be given in any order.
    pub fn compute_root(&self, leaves: &[(u64, Digest)]) -> Option<Digest> {
        // `height < 64` keeps the `1 << height` width computation below
        // from overflowing on attacker-supplied proofs.
        if leaves.is_empty() || self.height >= 64 {
            return None;
        }
        let mut frontier: Vec<(u64, Digest)> = leaves.to_vec();
        frontier.sort_unstable_by_key(|&(i, _)| i);
        if frontier.windows(2).any(|w| w[0].0 == w[1].0) {
            return None; // duplicate indices
        }
        if frontier.last()?.0 >= (1u64 << self.height) {
            return None; // index outside the tree
        }
        let mut stream = self.siblings.iter();
        for _ in 0..self.height {
            // Resolve every parent's (left, right) children first, then
            // hash the whole level in one multi-lane batch.
            let mut jobs: Vec<(u64, (Digest, Digest))> = Vec::with_capacity(frontier.len());
            let mut i = 0;
            while i < frontier.len() {
                let (idx, digest) = frontier[i];
                let children = if idx & 1 == 0
                    && frontier
                        .get(i + 1)
                        .is_some_and(|&(next, _)| next == idx + 1)
                {
                    let (_, right) = frontier[i + 1];
                    i += 2;
                    (digest, right)
                } else {
                    let sibling = *stream.next()?;
                    i += 1;
                    if idx & 1 == 0 {
                        (digest, sibling)
                    } else {
                        (sibling, digest)
                    }
                };
                jobs.push((idx / 2, children));
            }
            let pairs: Vec<(Digest, Digest)> = jobs.iter().map(|&(_, p)| p).collect();
            frontier = jobs
                .iter()
                .zip(hash_nodes_many(&pairs))
                .map(|(&(idx, _), digest)| (idx, digest))
                .collect();
        }
        if stream.next().is_some() || frontier.len() != 1 {
            return None; // leftover siblings / unmerged frontier
        }
        Some(frontier[0].1)
    }

    /// Returns `true` if the proof links every `(index, leaf)` pair to
    /// `root`.
    pub fn verify(&self, leaves: &[(u64, Digest)], root: &Digest) -> bool {
        self.compute_root(leaves) == Some(*root)
    }
}

impl Encodable for MultiProof {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_u32(self.height);
        enc.put_seq(&self.siblings, |e, d| e.put_digest(d));
    }
}

impl Decodable for MultiProof {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let height = dec.take_u32()?;
        if height >= 64 {
            return Err(DecodeError::InvalidValue(
                "multiproof 64 or more levels deep",
            ));
        }
        let siblings = dec.take_seq(|d| d.take_digest())?;
        Ok(MultiProof { height, siblings })
    }
}

/// A Merkle proof: the sibling path for one leaf (paper §2.3's VO).
///
/// `VO(a)` for a tree of `n` leaves has `log₂ n` siblings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerificationObject {
    index: u64,
    siblings: Vec<Digest>,
}

impl VerificationObject {
    /// The index of the proven leaf.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// The sibling digests, leaf level first.
    pub fn siblings(&self) -> &[Digest] {
        &self.siblings
    }

    /// Recomputes the root implied by this proof for `leaf` — the
    /// auditor-side computation of §4.2.2.
    pub fn compute_root(&self, leaf: Digest) -> Digest {
        let mut acc = leaf;
        let mut idx = self.index;
        for sibling in &self.siblings {
            acc = if idx & 1 == 0 {
                hash_nodes(&acc, sibling)
            } else {
                hash_nodes(sibling, &acc)
            };
            idx >>= 1;
        }
        acc
    }

    /// Returns `true` if the proof links `leaf` to `root`.
    pub fn verify(&self, leaf: Digest, root: &Digest) -> bool {
        self.compute_root(leaf) == *root
    }
}

impl Encodable for VerificationObject {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_u64(self.index);
        enc.put_seq(&self.siblings, |e, d| e.put_digest(d));
    }
}

impl Decodable for VerificationObject {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let index = dec.take_u64()?;
        let siblings = dec.take_seq(|d| d.take_digest())?;
        if siblings.len() > 64 {
            return Err(DecodeError::InvalidValue("proof deeper than 64 levels"));
        }
        Ok(VerificationObject { index, siblings })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Digest> {
        (0..n)
            .map(|i| hash_leaf(&(i as u64).to_be_bytes()))
            .collect()
    }

    #[test]
    fn single_leaf_tree() {
        let tree = MerkleTree::from_leaves(leaves(1));
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.height(), 0);
        assert_eq!(tree.root(), tree.leaf(0));
    }

    #[test]
    fn empty_tree_has_root() {
        let tree = MerkleTree::from_leaves(vec![]);
        assert!(tree.is_empty());
        assert_eq!(tree.root(), empty_leaf());
    }

    #[test]
    fn figure2_structure_four_leaves() {
        // Paper Figure 2: h_root = h(h(h(a)|h(b)) | h(h(c)|h(d))).
        let a = hash_leaf(b"a");
        let b = hash_leaf(b"b");
        let c = hash_leaf(b"c");
        let d = hash_leaf(b"d");
        let tree = MerkleTree::from_leaves(vec![a, b, c, d]);
        let hab = hash_nodes(&a, &b);
        let hcd = hash_nodes(&c, &d);
        assert_eq!(tree.root(), hash_nodes(&hab, &hcd));
        assert_eq!(tree.height(), 2);
    }

    #[test]
    fn proof_verifies_for_all_leaves() {
        for n in [1usize, 2, 3, 5, 8, 13, 16, 100] {
            let ls = leaves(n);
            let tree = MerkleTree::from_leaves(ls.clone());
            let root = tree.root();
            for (i, leaf) in ls.iter().enumerate() {
                let vo = tree.proof(i);
                assert!(vo.verify(*leaf, &root), "n={n} i={i}");
                assert_eq!(vo.siblings().len(), tree.height());
            }
        }
    }

    #[test]
    fn proof_fails_for_wrong_leaf() {
        let tree = MerkleTree::from_leaves(leaves(8));
        let vo = tree.proof(2);
        assert!(!vo.verify(hash_leaf(b"tampered"), &tree.root()));
    }

    #[test]
    fn proof_fails_for_wrong_root() {
        let tree = MerkleTree::from_leaves(leaves(8));
        let vo = tree.proof(2);
        assert!(!vo.verify(tree.leaf(2), &Digest::ZERO));
    }

    #[test]
    fn proof_fails_for_swapped_index() {
        // A proof for leaf 2 presented as leaf 3 must not verify (the
        // index determines left/right hashing order).
        let tree = MerkleTree::from_leaves(leaves(8));
        let mut vo = tree.proof(2);
        vo.index = 3;
        assert!(!vo.verify(tree.leaf(2), &tree.root()));
    }

    #[test]
    fn update_changes_root_and_path_length() {
        let mut tree = MerkleTree::from_leaves(leaves(1024));
        let old_root = tree.root();
        let recomputed = tree.update_leaf(512, hash_leaf(b"new"));
        assert_eq!(recomputed, 10); // log2(1024)
        assert_ne!(tree.root(), old_root);
    }

    #[test]
    fn update_matches_rebuild() {
        let mut ls = leaves(10);
        let mut tree = MerkleTree::from_leaves(ls.clone());
        ls[7] = hash_leaf(b"replacement");
        tree.update_leaf(7, ls[7]);
        let rebuilt = MerkleTree::from_leaves(ls);
        assert_eq!(tree.root(), rebuilt.root());
    }

    #[test]
    fn batch_update_matches_rebuild() {
        let mut ls = leaves(13);
        let mut tree = MerkleTree::from_leaves(ls.clone());
        let updates = [
            (0usize, hash_leaf(b"u0")),
            (5, hash_leaf(b"u5")),
            (6, hash_leaf(b"u6")),
            (12, hash_leaf(b"u12")),
        ];
        for &(i, d) in &updates {
            ls[i] = d;
        }
        tree.update_leaves(&updates);
        assert_eq!(tree.root(), MerkleTree::from_leaves(ls).root());
    }

    #[test]
    fn batch_update_shares_internal_nodes() {
        // Sibling leaves share their whole path: the batch recomputes
        // log2(n) nodes total, not 2*log2(n).
        let mut tree = MerkleTree::from_leaves(leaves(16));
        let recomputed = tree.update_leaves(&[(4, hash_leaf(b"a")), (5, hash_leaf(b"b"))]);
        assert_eq!(recomputed, 4); // log2(16) shared path
        let mut per_leaf = MerkleTree::from_leaves(leaves(16));
        let n1 = per_leaf.update_leaf(4, hash_leaf(b"a"));
        let n2 = per_leaf.update_leaf(5, hash_leaf(b"b"));
        assert_eq!(n1 + n2, 8);
        assert_eq!(tree.root(), per_leaf.root());
    }

    #[test]
    fn batch_update_duplicate_index_last_write_wins() {
        let mut ls = leaves(8);
        let mut tree = MerkleTree::from_leaves(ls.clone());
        tree.update_leaves(&[(3, hash_leaf(b"first")), (3, hash_leaf(b"second"))]);
        ls[3] = hash_leaf(b"second");
        assert_eq!(tree.root(), MerkleTree::from_leaves(ls).root());
    }

    #[test]
    fn overlay_root_matches_applied_root() {
        for n in [1usize, 2, 5, 13, 64, 1000] {
            let tree = MerkleTree::from_leaves(leaves(n));
            let updates: Vec<(usize, Digest)> = (0..n.min(7))
                .map(|i| (i * 97 % n, hash_leaf(&[i as u8, 0xAA])))
                .collect();
            let (root, hashed) = tree.root_with_updates(&updates);
            let mut applied = MerkleTree::from_leaves(leaves(n));
            applied.update_leaves(&updates);
            assert_eq!(root, applied.root(), "n={n}");
            if !updates.is_empty() && n > 1 {
                assert!(hashed > 0);
            }
            // The live tree was never touched.
            assert_eq!(tree.root(), MerkleTree::from_leaves(leaves(n)).root());
        }
    }

    #[test]
    fn overlay_root_duplicate_index_last_write_wins() {
        let tree = MerkleTree::from_leaves(leaves(16));
        let (root, _) = tree.root_with_updates(&[
            (3, hash_leaf(b"first")),
            (5, hash_leaf(b"x")),
            (3, hash_leaf(b"second")),
        ]);
        let mut applied = MerkleTree::from_leaves(leaves(16));
        applied.update_leaves(&[(5, hash_leaf(b"x")), (3, hash_leaf(b"second"))]);
        assert_eq!(root, applied.root());
    }

    #[test]
    fn overlay_root_adjacent_siblings() {
        // Sibling pairs exercise the skip logic.
        let tree = MerkleTree::from_leaves(leaves(8));
        let updates = [
            (2usize, hash_leaf(b"a")),
            (3, hash_leaf(b"b")),
            (6, hash_leaf(b"c")),
            (7, hash_leaf(b"d")),
        ];
        let (root, hashed) = tree.root_with_updates(&updates);
        let mut applied = MerkleTree::from_leaves(leaves(8));
        let applied_count = applied.update_leaves(&updates);
        assert_eq!(root, applied.root());
        assert_eq!(hashed, applied_count, "same dirty-node union");
    }

    #[test]
    fn parallel_update_matches_rebuild() {
        // Large enough to clear the parallel threshold, odd-sized to
        // exercise padding, scattered and clustered indices.
        let n = 5000;
        let mut ls = leaves(n);
        let mut tree = MerkleTree::from_leaves(ls.clone());
        let updates: Vec<(usize, Digest)> = (0..200)
            .map(|i| {
                let idx = (i * 37 + i * i) % n;
                (idx, hash_leaf(format!("p{i}").as_bytes()))
            })
            .collect();
        for &(i, d) in &updates {
            ls[i] = d;
        }
        let recomputed = tree.update_leaves_parallel(&updates);
        assert!(recomputed > 0);
        assert_eq!(tree.root(), MerkleTree::from_leaves(ls).root());
    }

    #[test]
    fn parallel_update_matches_serial_batch() {
        let n = 4096;
        let updates: Vec<(usize, Digest)> = (0..128)
            .map(|i| (i * 31 % n, hash_leaf(&(i as u64).to_le_bytes())))
            .collect();
        let mut serial = MerkleTree::from_leaves(leaves(n));
        let mut parallel = MerkleTree::from_leaves(leaves(n));
        serial.update_leaves(&updates);
        parallel.update_leaves_parallel(&updates);
        assert_eq!(serial.root(), parallel.root());
        // Every internal level must agree, not just the root.
        for (ls, lp) in serial.levels.iter().zip(&parallel.levels) {
            assert_eq!(ls, lp);
        }
    }

    #[test]
    fn parallel_update_duplicate_index_last_write_wins() {
        let n = 2048;
        let mut ls = leaves(n);
        let mut updates: Vec<(usize, Digest)> = (0..100)
            .map(|i| (i * 13 % n, hash_leaf(&[i as u8])))
            .collect();
        updates.push((13, hash_leaf(b"first")));
        updates.push((13, hash_leaf(b"second")));
        for &(i, d) in &updates {
            ls[i] = d;
        }
        let mut tree = MerkleTree::from_leaves(leaves(n));
        tree.update_leaves_parallel(&updates);
        assert_eq!(tree.root(), MerkleTree::from_leaves(ls).root());
    }

    #[test]
    fn parallel_update_small_batch_falls_back() {
        let mut tree = MerkleTree::from_leaves(leaves(64));
        let recomputed = tree.update_leaves_parallel(&[(5, hash_leaf(b"x"))]);
        assert_eq!(recomputed, 6); // log2(64): the serial path ran
    }

    #[test]
    fn batch_update_empty_is_noop() {
        let mut tree = MerkleTree::from_leaves(leaves(8));
        let root = tree.root();
        assert_eq!(tree.update_leaves(&[]), 0);
        assert_eq!(tree.root(), root);
    }

    #[test]
    #[should_panic(expected = "leaf index out of range")]
    fn batch_update_out_of_range_panics() {
        let mut tree = MerkleTree::from_leaves(leaves(4));
        tree.update_leaves(&[(4, Digest::ZERO)]);
    }

    #[test]
    fn update_then_prove() {
        let mut tree = MerkleTree::from_leaves(leaves(16));
        tree.update_leaf(9, hash_leaf(b"v2"));
        let vo = tree.proof(9);
        assert!(vo.verify(hash_leaf(b"v2"), &tree.root()));
    }

    #[test]
    fn push_within_padding() {
        let mut tree = MerkleTree::from_leaves(leaves(5)); // width 8
        let idx = tree.push_leaf(hash_leaf(b"sixth"));
        assert_eq!(idx, 5);
        assert_eq!(tree.len(), 6);
        assert!(tree.proof(5).verify(hash_leaf(b"sixth"), &tree.root()));
    }

    #[test]
    fn push_forces_growth() {
        let mut tree = MerkleTree::from_leaves(leaves(4)); // width 4, full
        let idx = tree.push_leaf(hash_leaf(b"fifth"));
        assert_eq!(idx, 4);
        assert_eq!(tree.len(), 5);
        assert_eq!(tree.height(), 3); // width 8 now
        assert!(tree.proof(4).verify(hash_leaf(b"fifth"), &tree.root()));
        // Old leaves still provable.
        assert!(tree
            .proof(0)
            .verify(hash_leaf(&0u64.to_be_bytes()), &tree.root()));
    }

    #[test]
    fn domain_separation_leaf_vs_node() {
        // A leaf containing exactly (prefix || left || right) bytes must
        // not hash to the same digest as the internal node.
        let l = hash_leaf(b"l");
        let r = hash_leaf(b"r");
        let node = hash_nodes(&l, &r);
        let mut fake_leaf_data = Vec::new();
        fake_leaf_data.extend_from_slice(l.as_bytes());
        fake_leaf_data.extend_from_slice(r.as_bytes());
        assert_ne!(hash_leaf(&fake_leaf_data), node);
    }

    #[test]
    fn different_leaf_order_different_root() {
        let a = hash_leaf(b"a");
        let b = hash_leaf(b"b");
        let t1 = MerkleTree::from_leaves(vec![a, b]);
        let t2 = MerkleTree::from_leaves(vec![b, a]);
        assert_ne!(t1.root(), t2.root());
    }

    #[test]
    fn vo_size_is_log2n() {
        // Paper §2.3: VO(a) is of size log2(n).
        let tree = MerkleTree::from_leaves(leaves(1 << 14)); // 16384 = padded 10k shard
        assert_eq!(tree.proof(0).siblings().len(), 14);
    }

    #[test]
    fn vo_encoding_roundtrip() {
        let tree = MerkleTree::from_leaves(leaves(32));
        let vo = tree.proof(17);
        let decoded = VerificationObject::decode(&vo.encode()).unwrap();
        assert_eq!(decoded, vo);
        assert!(decoded.verify(tree.leaf(17), &tree.root()));
    }

    #[test]
    #[should_panic(expected = "leaf index out of range")]
    fn out_of_range_proof_panics() {
        let tree = MerkleTree::from_leaves(leaves(4));
        let _ = tree.proof(4);
    }

    #[test]
    #[should_panic(expected = "leaf index out of range")]
    fn out_of_range_update_panics() {
        let mut tree = MerkleTree::from_leaves(leaves(4));
        tree.update_leaf(4, Digest::ZERO);
    }

    #[test]
    fn multiproof_verifies_for_many_shapes() {
        for n in [1usize, 2, 3, 5, 8, 13, 64, 100] {
            let ls = leaves(n);
            let tree = MerkleTree::from_leaves(ls.clone());
            let root = tree.root();
            for mut set in [
                vec![0usize],
                vec![n - 1],
                vec![0, n - 1],
                (0..n).step_by(3).collect::<Vec<_>>(),
                (0..n).collect::<Vec<_>>(),
            ] {
                set.dedup();
                let proof = tree.multiproof(&set);
                let pairs: Vec<(u64, Digest)> = set.iter().map(|&i| (i as u64, ls[i])).collect();
                assert!(proof.verify(&pairs, &root), "n={n} set={set:?}");
            }
        }
    }

    #[test]
    fn multiproof_shares_paths() {
        // Adjacent leaves 4,5 share everything: one multiproof carries
        // log2(16)-1 siblings vs 2*log2(16) for two VOs.
        let tree = MerkleTree::from_leaves(leaves(16));
        let proof = tree.multiproof(&[4, 5]);
        assert_eq!(proof.sibling_count(), 3);
        assert_eq!(
            tree.proof(4).siblings().len() + tree.proof(5).siblings().len(),
            8
        );
    }

    #[test]
    fn multiproof_rejects_wrong_leaf() {
        let ls = leaves(16);
        let tree = MerkleTree::from_leaves(ls.clone());
        let proof = tree.multiproof(&[2, 9]);
        let mut pairs = vec![(2u64, ls[2]), (9u64, ls[9])];
        assert!(proof.verify(&pairs, &tree.root()));
        pairs[1].1 = hash_leaf(b"forged");
        assert!(!proof.verify(&pairs, &tree.root()));
    }

    #[test]
    fn multiproof_rejects_wrong_index_set() {
        let ls = leaves(16);
        let tree = MerkleTree::from_leaves(ls.clone());
        let proof = tree.multiproof(&[2, 9]);
        // A subset, a superset and a swapped index all fail.
        assert!(!proof.verify(&[(2, ls[2])], &tree.root()));
        assert!(!proof.verify(&[(2, ls[2]), (9, ls[9]), (10, ls[10])], &tree.root()));
        assert!(!proof.verify(&[(3, ls[2]), (9, ls[9])], &tree.root()));
    }

    #[test]
    fn multiproof_rejects_duplicates_and_empty() {
        let ls = leaves(8);
        let tree = MerkleTree::from_leaves(ls.clone());
        let proof = tree.multiproof(&[1]);
        assert!(proof.compute_root(&[]).is_none());
        assert!(proof.compute_root(&[(1, ls[1]), (1, ls[1])]).is_none());
        assert!(proof.compute_root(&[(99, ls[1])]).is_none());
    }

    #[test]
    fn multiproof_unsorted_input_and_duplicates_in_generation() {
        let ls = leaves(32);
        let tree = MerkleTree::from_leaves(ls.clone());
        let proof = tree.multiproof(&[20, 3, 20, 7]);
        let pairs = vec![(7u64, ls[7]), (3, ls[3]), (20, ls[20])];
        assert!(proof.verify(&pairs, &tree.root()));
    }

    #[test]
    fn multiproof_single_leaf_tree() {
        let ls = leaves(1);
        let tree = MerkleTree::from_leaves(ls.clone());
        let proof = tree.multiproof(&[0]);
        assert_eq!(proof.sibling_count(), 0);
        assert!(proof.verify(&[(0, ls[0])], &tree.root()));
    }

    #[test]
    fn multiproof_encoding_roundtrip() {
        let tree = MerkleTree::from_leaves(leaves(40));
        let proof = tree.multiproof(&[0, 17, 39]);
        let decoded = MultiProof::decode(&proof.encode()).unwrap();
        assert_eq!(decoded, proof);
    }

    #[test]
    #[should_panic(expected = "leaf index out of range")]
    fn multiproof_out_of_range_panics() {
        let tree = MerkleTree::from_leaves(leaves(4));
        let _ = tree.multiproof(&[4]);
    }

    #[test]
    fn leaves_accessor_excludes_padding() {
        let ls = leaves(5);
        let tree = MerkleTree::from_leaves(ls.clone());
        assert_eq!(tree.leaves(), &ls[..]);
    }
}
