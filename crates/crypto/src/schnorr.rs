//! Schnorr digital signatures over secp256k1 (paper §2.1).
//!
//! Every message exchanged in Fides — client requests, protocol messages,
//! votes — is signed by its sender and verified by the receiver (§3.1 of
//! the paper). The scheme is the classic Schnorr construction that CoSi
//! (§2.2, [`crate::cosi`]) aggregates:
//!
//! ```text
//! sign(x, m):   k = nonce(x, m);  R = k·G;  e = H(enc(R) ‖ enc(P) ‖ m)
//!               s = k + e·x;      signature = (R, s)
//! verify:       s·G == R + e·P
//! ```
//!
//! Nonces are derived deterministically with HMAC-SHA256 (RFC 6979
//! spirit), so signing never needs an RNG and is reproducible in tests.

use core::fmt;

use crate::encoding::{Decodable, DecodeError, Decoder, Encodable, Encoder};
use crate::hash::Digest;
use crate::point::Point;
use crate::scalar::Scalar;
use crate::sha256::{hmac_sha256, Sha256};

/// A secret signing key (a non-zero scalar).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SecretKey(Scalar);

/// A public verification key (a non-identity curve point).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct PublicKey(Point);

/// A Schnorr signature `(R, s)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Signature {
    /// The public nonce commitment `R = k·G`.
    pub r: Point,
    /// The response `s = k + e·x`.
    pub s: Scalar,
}

/// A secret/public key pair.
///
/// # Example
///
/// ```
/// use fides_crypto::schnorr::KeyPair;
///
/// let kp = KeyPair::from_seed(b"coordinator");
/// let sig = kp.sign(b"challenge message");
/// assert!(kp.public_key().verify(b"challenge message", &sig));
/// assert!(!kp.public_key().verify(b"another message", &sig));
/// ```
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct KeyPair {
    sk: SecretKey,
    pk: PublicKey,
}

impl SecretKey {
    /// Derives a secret key deterministically from a seed.
    ///
    /// The seed is hashed and reduced modulo the group order; the
    /// astronomically unlikely zero result is bumped to one so that the
    /// key is always valid.
    pub fn from_seed(seed: &[u8]) -> Self {
        let digest = Sha256::digest_parts(&[b"fides.keygen.v1", seed]);
        let mut s = Scalar::from_digest(&digest);
        if s.is_zero() {
            s = Scalar::ONE;
        }
        SecretKey(s)
    }

    /// Constructs from an existing scalar; `None` if zero.
    pub fn from_scalar(s: Scalar) -> Option<Self> {
        if s.is_zero() {
            None
        } else {
            Some(SecretKey(s))
        }
    }

    /// The corresponding public key `x·G`.
    pub fn public_key(&self) -> PublicKey {
        PublicKey::from_point(Point::mul_generator(&self.0)).expect("x != 0, so x·G != O")
    }

    /// Exposes the underlying scalar (needed by CoSi responses).
    pub fn scalar(&self) -> Scalar {
        self.0
    }
}

impl PublicKey {
    /// Wraps a point; `None` for the identity (invalid key).
    ///
    /// The point is normalized to `Z = 1` once here, so the frequent
    /// downstream operations (challenge hashing, encoding, mixed
    /// addition) never pay a field inversion for it again.
    pub fn from_point(p: Point) -> Option<Self> {
        if p.is_identity() {
            None
        } else {
            Some(PublicKey(p.normalize()))
        }
    }

    /// The underlying curve point.
    pub fn point(&self) -> Point {
        self.0
    }

    /// Compressed 33-byte encoding.
    pub fn to_bytes(self) -> [u8; 33] {
        self.0.to_compressed_bytes()
    }

    /// Decodes and validates a compressed public key.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed encodings or the identity point.
    pub fn from_bytes(bytes: &[u8; 33]) -> Result<Self, DecodeError> {
        let p = Point::from_compressed_bytes(bytes)?;
        PublicKey::from_point(p).ok_or(DecodeError::InvalidValue("identity public key"))
    }

    /// Verifies a signature over `message`.
    ///
    /// The check `s·G == R + e·P` is evaluated as the double-scalar
    /// multiplication `s·G + (−e)·P == R` via
    /// [`Point::mul_shamir_generator`], sharing a single doubling
    /// ladder between both scalars instead of performing two
    /// independent full-width multiplications.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        if sig.r.is_identity() {
            return false;
        }
        let e = challenge_scalar(&sig.r, self, message);
        Point::mul_shamir_generator(&sig.s, &(-e), &self.0) == sig.r
    }

    /// [`PublicKey::verify`] evaluated over the pre-GLV wNAF ladder
    /// ([`Point::mul_shamir_generator_wnaf`]) — the "before" side of
    /// the GLV microbenchmark and a differential-test oracle. Not a
    /// production path.
    #[doc(hidden)]
    pub fn verify_wnaf(&self, message: &[u8], sig: &Signature) -> bool {
        if sig.r.is_identity() {
            return false;
        }
        let e = challenge_scalar(&sig.r, self, message);
        Point::mul_shamir_generator_wnaf(&sig.s, &(-e), &self.0) == sig.r
    }

    /// A short identifier (first hex bytes of the key) for diagnostics.
    pub fn short_id(&self) -> String {
        let b = self.to_bytes();
        format!("{:02x}{:02x}{:02x}{:02x}", b[1], b[2], b[3], b[4])
    }
}

impl KeyPair {
    /// Deterministic key pair from a seed (see [`SecretKey::from_seed`]).
    pub fn from_seed(seed: &[u8]) -> Self {
        let sk = SecretKey::from_seed(seed);
        KeyPair {
            pk: sk.public_key(),
            sk,
        }
    }

    /// The secret half.
    pub fn secret_key(&self) -> &SecretKey {
        &self.sk
    }

    /// The public half.
    pub fn public_key(&self) -> PublicKey {
        self.pk
    }

    /// Signs `message` with a deterministic nonce.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let k = derive_nonce(&self.sk, message, b"fides.schnorr.nonce.v1");
        // Normalize the nonce commitment once: the challenge hash here,
        // the wire encoding, and the verifier's final comparison all
        // want the affine form.
        let r = Point::mul_generator(&k).normalize();
        let e = challenge_scalar(&r, &self.pk, message);
        let s = k + e * self.sk.scalar();
        Signature { r, s }
    }
}

/// One `(public key, message, signature)` triple of a batch
/// verification (see [`verify_batch`]).
#[derive(Clone, Copy, Debug)]
pub struct BatchItem<'a> {
    /// The signer's public key.
    pub public_key: PublicKey,
    /// The signed message.
    pub message: &'a [u8],
    /// The signature to check.
    pub signature: Signature,
}

/// Verifies `N` signatures with **one** multi-scalar multiplication
/// instead of `N` double-scalar multiplications.
///
/// Uses the standard random-linear-combination check: with per-item
/// randomizers `zᵢ` (128-bit, derived deterministically from a hash of
/// the whole batch — a cheating prover cannot predict them while
/// choosing signatures), the batch is valid iff
///
/// ```text
/// Σ zᵢ·(Rᵢ + eᵢ·Pᵢ)  ==  (Σ zᵢ·sᵢ)·G
/// ```
///
/// If every signature is individually valid the equation always holds;
/// if any is invalid it fails except with probability ~2⁻¹²⁸ over the
/// randomizers. A `true` result is therefore a batch-soundness
/// statement, not a per-item proof — callers that need to *attribute*
/// a failure fall back to [`find_invalid`].
///
/// The empty batch is vacuously valid.
pub fn verify_batch(items: &[BatchItem<'_>]) -> bool {
    match items {
        [] => return true,
        [single] => return single.public_key.verify(single.message, &single.signature),
        _ => {}
    }
    if items.iter().any(|item| item.signature.r.is_identity()) {
        return false;
    }
    let challenges = challenge_scalars(items);
    let zs = batch_randomizers(items, &challenges);
    let mut s_combined = Scalar::ZERO;
    let mut terms = Vec::with_capacity(2 * items.len());
    for ((item, e), z) in items.iter().zip(&challenges).zip(&zs) {
        s_combined = s_combined + *z * item.signature.s;
        terms.push((*z, item.signature.r));
        terms.push((*z * *e, item.public_key.point()));
    }
    Point::multi_mul(&terms) == Point::mul_generator(&s_combined)
}

/// Verifies each item individually, returning the indices of invalid
/// signatures — the attribution fallback after a failed
/// [`verify_batch`].
pub fn find_invalid(items: &[BatchItem<'_>]) -> Vec<usize> {
    items
        .iter()
        .enumerate()
        .filter(|(_, item)| !item.public_key.verify(item.message, &item.signature))
        .map(|(i, _)| i)
        .collect()
}

/// Derives the per-item batch randomizers: `z₀ = 1` (sound for a
/// linear-combination check) and `zᵢ` = 128 bits of
/// `H(transcript ‖ i)`.
///
/// The transcript commits to every signature `(R, s)` and its
/// Fiat–Shamir challenge `e`; since `e = H(enc(R) ‖ enc(P) ‖ m)`, this
/// transitively commits to the key and message under collision
/// resistance without re-hashing them.
fn batch_randomizers(items: &[BatchItem<'_>], challenges: &[Scalar]) -> Vec<Scalar> {
    let mut transcript = Sha256::new();
    transcript.update(b"fides.schnorr.batch.v1");
    for (item, e) in items.iter().zip(challenges) {
        transcript.update(&item.signature.r.to_compressed_bytes());
        transcript.update(&item.signature.s.to_be_bytes());
        transcript.update(&e.to_be_bytes());
    }
    let seed = transcript.finalize();
    // The per-item derivation messages are fixed-width and independent:
    // hash them all through the multi-lane batch API.
    const Z_DOMAIN: &[u8; 24] = b"fides.schnorr.batch.z.v1";
    let messages: Vec<[u8; 64]> = (1..items.len())
        .map(|i| {
            let mut m = [0u8; 64];
            m[..24].copy_from_slice(Z_DOMAIN);
            m[24..56].copy_from_slice(seed.as_bytes());
            m[56..].copy_from_slice(&(i as u64).to_be_bytes());
            m
        })
        .collect();
    let refs: Vec<&[u8]> = messages.iter().map(|m| m.as_slice()).collect();
    let mut zs = Vec::with_capacity(items.len());
    zs.push(Scalar::ONE);
    for digest in Sha256::digest_many(&refs) {
        // Keep only the low 128 bits: short randomizers preserve
        // soundness (~2^-128) and halve the ladder work per term.
        let mut bytes = [0u8; 32];
        bytes[16..].copy_from_slice(&digest.as_bytes()[16..]);
        let z = Scalar::from_be_bytes(&bytes).expect("128-bit value is canonical");
        zs.push(if z.is_zero() { Scalar::ONE } else { z });
    }
    zs
}

/// Domain-separation prefix of the Fiat–Shamir challenge hash.
const CHALLENGE_DOMAIN: &[u8] = b"fides.schnorr.challenge.v1";

/// Computes the Fiat–Shamir challenge `e = H(enc(R) ‖ enc(P) ‖ m)`.
fn challenge_scalar(r: &Point, pk: &PublicKey, message: &[u8]) -> Scalar {
    let digest = Sha256::digest_parts(&[
        CHALLENGE_DOMAIN,
        &r.to_compressed_bytes(),
        &pk.to_bytes(),
        message,
    ]);
    Scalar::from_digest(&digest)
}

/// Batch form of [`challenge_scalar`]: builds every item's challenge
/// preimage and hashes them with the multi-lane
/// [`Sha256::digest_many`] — the per-message hashing that dominates
/// envelope batch verification once the point arithmetic is shared.
fn challenge_scalars(items: &[BatchItem<'_>]) -> Vec<Scalar> {
    let messages: Vec<Vec<u8>> = items
        .iter()
        .map(|item| {
            let mut m = Vec::with_capacity(CHALLENGE_DOMAIN.len() + 66 + item.message.len());
            m.extend_from_slice(CHALLENGE_DOMAIN);
            m.extend_from_slice(&item.signature.r.to_compressed_bytes());
            m.extend_from_slice(&item.public_key.to_bytes());
            m.extend_from_slice(item.message);
            m
        })
        .collect();
    let refs: Vec<&[u8]> = messages.iter().map(|m| m.as_slice()).collect();
    Sha256::digest_many(&refs)
        .iter()
        .map(Scalar::from_digest)
        .collect()
}

/// Deterministic nonce derivation: HMAC keyed by the secret key over the
/// message, domain-separated by `label`. Retries with a counter in the
/// (astronomically unlikely) zero case.
pub(crate) fn derive_nonce(sk: &SecretKey, message: &[u8], label: &[u8]) -> Scalar {
    let key = sk.scalar().to_be_bytes();
    let mut counter = 0u8;
    loop {
        let mut data = Vec::with_capacity(label.len() + message.len() + 1);
        data.extend_from_slice(label);
        data.extend_from_slice(message);
        data.push(counter);
        let mac = hmac_sha256(&key, &data);
        let k = Scalar::from_digest(&mac);
        if !k.is_zero() {
            return k;
        }
        counter = counter.wrapping_add(1);
    }
}

impl Encodable for Signature {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_fixed(&self.r.to_compressed_bytes());
        enc.put_fixed(&self.s.to_be_bytes());
    }
}

impl Decodable for Signature {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let mut rb = [0u8; 33];
        rb.copy_from_slice(dec.take_fixed(33)?);
        let r = Point::from_compressed_bytes(&rb)?;
        let mut sb = [0u8; 32];
        sb.copy_from_slice(dec.take_fixed(32)?);
        let s = Scalar::from_be_bytes(&sb).ok_or(DecodeError::InvalidValue("signature scalar"))?;
        Ok(Signature { r, s })
    }
}

impl Encodable for PublicKey {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_fixed(&self.to_bytes());
    }
}

impl Decodable for PublicKey {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let mut b = [0u8; 33];
        b.copy_from_slice(dec.take_fixed(33)?);
        PublicKey::from_bytes(&b)
    }
}

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SecretKey(redacted)")
    }
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey({}…)", self.short_id())
    }
}

impl fmt::Debug for KeyPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KeyPair(pk={}…)", self.pk.short_id())
    }
}

impl fmt::Display for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.to_bytes() {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// Convenience: hash of a public key, used as a stable node identifier.
impl PublicKey {
    /// SHA-256 of the compressed encoding.
    pub fn fingerprint(&self) -> Digest {
        Sha256::digest(&self.to_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let kp = KeyPair::from_seed(b"alice");
        let sig = kp.sign(b"hello fides");
        assert!(kp.public_key().verify(b"hello fides", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let kp = KeyPair::from_seed(b"alice");
        let sig = kp.sign(b"msg-1");
        assert!(!kp.public_key().verify(b"msg-2", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let alice = KeyPair::from_seed(b"alice");
        let bob = KeyPair::from_seed(b"bob");
        let sig = alice.sign(b"msg");
        assert!(!bob.public_key().verify(b"msg", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = KeyPair::from_seed(b"alice");
        let mut sig = kp.sign(b"msg");
        sig.s = sig.s + Scalar::ONE;
        assert!(!kp.public_key().verify(b"msg", &sig));
    }

    #[test]
    fn signing_is_deterministic() {
        let kp = KeyPair::from_seed(b"carol");
        assert_eq!(kp.sign(b"m"), kp.sign(b"m"));
    }

    #[test]
    fn different_messages_different_nonces() {
        let kp = KeyPair::from_seed(b"carol");
        let s1 = kp.sign(b"m1");
        let s2 = kp.sign(b"m2");
        assert_ne!(s1.r, s2.r, "nonce reuse across messages would leak the key");
    }

    #[test]
    fn distinct_seeds_distinct_keys() {
        assert_ne!(
            KeyPair::from_seed(b"s1").public_key(),
            KeyPair::from_seed(b"s2").public_key()
        );
    }

    #[test]
    fn pubkey_encoding_roundtrip() {
        let pk = KeyPair::from_seed(b"dave").public_key();
        let decoded = PublicKey::from_bytes(&pk.to_bytes()).unwrap();
        assert_eq!(decoded, pk);
    }

    #[test]
    fn signature_encoding_roundtrip() {
        let kp = KeyPair::from_seed(b"erin");
        let sig = kp.sign(b"payload");
        let bytes = sig.encode();
        let decoded = Signature::decode(&bytes).unwrap();
        assert_eq!(decoded, sig);
        assert!(kp.public_key().verify(b"payload", &decoded));
    }

    #[test]
    fn identity_pubkey_rejected() {
        assert!(PublicKey::from_bytes(&[0u8; 33]).is_err());
        assert!(PublicKey::from_point(Point::IDENTITY).is_none());
    }

    #[test]
    fn empty_message_signs() {
        let kp = KeyPair::from_seed(b"frank");
        let sig = kp.sign(b"");
        assert!(kp.public_key().verify(b"", &sig));
    }

    #[test]
    fn large_message_signs() {
        let kp = KeyPair::from_seed(b"grace");
        let msg = vec![0x42u8; 100_000];
        let sig = kp.sign(&msg);
        assert!(kp.public_key().verify(&msg, &sig));
    }

    #[test]
    fn secret_key_debug_redacted() {
        let kp = KeyPair::from_seed(b"secret");
        assert_eq!(format!("{:?}", kp.secret_key()), "SecretKey(redacted)");
    }

    #[test]
    fn fingerprint_stable_and_distinct() {
        let a = KeyPair::from_seed(b"x").public_key();
        let b = KeyPair::from_seed(b"y").public_key();
        assert_eq!(a.fingerprint(), a.fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    /// Builds a batch of `n` valid (key, message, signature) items.
    fn valid_batch(n: usize, messages: &mut Vec<Vec<u8>>) -> Vec<(PublicKey, Signature)> {
        messages.clear();
        let mut sigs = Vec::with_capacity(n);
        for i in 0..n {
            let kp = KeyPair::from_seed(&[i as u8, 0xB4]);
            let msg = format!("batch message {i}").into_bytes();
            let sig = kp.sign(&msg);
            sigs.push((kp.public_key(), sig));
            messages.push(msg);
        }
        sigs
    }

    fn items<'a>(sigs: &[(PublicKey, Signature)], messages: &'a [Vec<u8>]) -> Vec<BatchItem<'a>> {
        sigs.iter()
            .zip(messages)
            .map(|(&(public_key, signature), message)| BatchItem {
                public_key,
                message,
                signature,
            })
            .collect()
    }

    #[test]
    fn batch_accepts_all_valid() {
        let mut messages = Vec::new();
        for n in [0usize, 1, 2, 3, 8, 33] {
            let sigs = valid_batch(n, &mut messages);
            assert!(verify_batch(&items(&sigs, &messages)), "n={n}");
        }
    }

    #[test]
    fn batch_rejects_single_corruption() {
        let mut messages = Vec::new();
        for corrupt in [0usize, 3, 7] {
            let mut sigs = valid_batch(8, &mut messages);
            sigs[corrupt].1.s = sigs[corrupt].1.s + Scalar::ONE;
            let batch = items(&sigs, &messages);
            assert!(!verify_batch(&batch), "corrupt={corrupt}");
            assert_eq!(find_invalid(&batch), vec![corrupt]);
        }
    }

    #[test]
    fn batch_rejects_wrong_message() {
        let mut messages = Vec::new();
        let sigs = valid_batch(5, &mut messages);
        messages[2] = b"tampered".to_vec();
        let batch = items(&sigs, &messages);
        assert!(!verify_batch(&batch));
        assert_eq!(find_invalid(&batch), vec![2]);
    }

    #[test]
    fn batch_rejects_identity_nonce() {
        let mut messages = Vec::new();
        let mut sigs = valid_batch(4, &mut messages);
        sigs[1].1.r = Point::IDENTITY;
        assert!(!verify_batch(&items(&sigs, &messages)));
    }

    #[test]
    fn batch_localizes_multiple_corruptions() {
        let mut messages = Vec::new();
        let mut sigs = valid_batch(9, &mut messages);
        sigs[2].1.s = sigs[2].1.s + Scalar::ONE;
        sigs[6].1.s = sigs[6].1.s + Scalar::ONE;
        let batch = items(&sigs, &messages);
        assert!(!verify_batch(&batch));
        assert_eq!(find_invalid(&batch), vec![2, 6]);
    }

    #[test]
    fn batch_agrees_with_individual_verifies() {
        // The invariant the ledger relies on: batch-true iff every
        // individual verify is true.
        let mut messages = Vec::new();
        let mut sigs = valid_batch(6, &mut messages);
        let all_individual = |sigs: &[(PublicKey, Signature)], msgs: &[Vec<u8>]| {
            sigs.iter()
                .zip(msgs)
                .all(|((pk, sig), m)| pk.verify(m, sig))
        };
        assert_eq!(
            verify_batch(&items(&sigs, &messages)),
            all_individual(&sigs, &messages)
        );
        sigs[4].1.s = sigs[4].1.s + Scalar::ONE;
        assert_eq!(
            verify_batch(&items(&sigs, &messages)),
            all_individual(&sigs, &messages)
        );
    }
}
