//! Scaling TFCommit (paper §4.6).
//!
//! The base protocol has every server participate in every block. The
//! paper sketches the scalable variant: servers are divided into small
//! dynamic **groups** (one per transaction's access set); each group
//! runs TFCommit internally and its coordinator publishes the resulting
//! block to an **ordering service (OrdServ)** which is "responsible for
//! atomically broadcasting a single stream of blocks" and "for chaining
//! the blocks, i.e. the coordinators of the groups do not fill in the
//! hash of previous block, rather it is filled by the OrdServ".
//!
//! This crate implements the sketch:
//!
//! * [`proposal`] — group-signed block proposals (a CoSi round among
//!   the group members only),
//! * [`ordering`] — the [`OrderingService`] trait, a [`Sequencer`]
//!   implementation that chains proposals and tracks cross-group
//!   dependencies (`Gi ∩ Gj ≠ ∅` ⇒ ordered dependency, as in the
//!   ParBlockchain-style tracking the paper cites), and the globally
//!   replicated [`GroupLog`],
//! * [`pbft`] — a from-scratch PBFT (pre-prepare / prepare / commit)
//!   among group coordinators, the paper's suggested byzantine OrdServ
//!   ("OrdServ can use a byzantine consensus protocol such as PBFT
//!   among the coordinators"). View changes are out of scope (the
//!   paper's sketch does not cover leader failure); safety under `f`
//!   byzantine backups and a silent-equivocating leader is tested.

pub mod ordering;
pub mod pbft;
pub mod proposal;

pub use ordering::{GroupLog, OrderedBlock, OrderingService, SequenceError, Sequencer};
pub use pbft::{PbftConfig, PbftFault, PbftMessage, PbftNode};
pub use proposal::GroupProposal;
