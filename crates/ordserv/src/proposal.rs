//! Group-signed block proposals.
//!
//! In the scaled protocol (paper §4.6) a transaction is terminated by
//! the servers it accesses — a *group* — running TFCommit among
//! themselves. The product is a [`GroupProposal`]: the transactions,
//! per-shard roots and decision, collectively signed by the group.
//! Heights and previous-block hashes are deliberately absent: the
//! ordering service assigns them.

use fides_crypto::cosi::{self, CollectiveSignature, Witness};
use fides_crypto::encoding::{Decodable, DecodeError, Decoder, Encodable, Encoder};
use fides_crypto::schnorr::{KeyPair, PublicKey};
use fides_crypto::sha256::Sha256;
use fides_crypto::Digest;
use fides_ledger::block::{Decision, ShardRoot, TxnRecord};
use fides_store::types::Key;

/// A block proposal produced by one group's internal TFCommit round.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupProposal {
    /// The group members (server indices), sorted.
    pub group: Vec<u32>,
    /// The transactions this group terminated.
    pub txns: Vec<TxnRecord>,
    /// Per-shard Merkle roots from the group members.
    pub roots: Vec<ShardRoot>,
    /// The group's decision.
    pub decision: Decision,
    /// Collective signature of the group members over
    /// [`GroupProposal::proposal_bytes`].
    pub cosign: CollectiveSignature,
}

impl GroupProposal {
    /// The canonical bytes the group co-signs (everything except the
    /// co-sign itself — and no chain position, which OrdServ assigns).
    pub fn proposal_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(256);
        enc.put_fixed(b"fides.group-proposal.v1");
        enc.put_seq(&self.group, |e, s| e.put_u32(*s));
        enc.put_seq(&self.txns, |e, t| t.encode_into(e));
        enc.put_seq(&self.roots, |e, r| r.encode_into(e));
        self.decision.encode_into(&mut enc);
        enc.into_bytes()
    }

    /// Content digest (used for PBFT ordering and dependency tracking).
    pub fn digest(&self) -> Digest {
        Sha256::digest(&self.proposal_bytes())
    }

    /// Verifies the group co-sign given the full server key directory
    /// (indexed by server id).
    pub fn verify(&self, all_server_pks: &[PublicKey]) -> bool {
        let Some(group_pks) = self
            .group
            .iter()
            .map(|s| all_server_pks.get(*s as usize).copied())
            .collect::<Option<Vec<_>>>()
        else {
            return false;
        };
        if group_pks.is_empty() {
            return false;
        }
        self.cosign.verify(&self.proposal_bytes(), &group_pks)
    }

    /// Every key accessed by the proposal's transactions.
    pub fn touched_keys(&self) -> Vec<Key> {
        let mut keys = Vec::new();
        for txn in &self.txns {
            keys.extend(txn.read_set.iter().map(|r| r.key.clone()));
            keys.extend(txn.write_set.iter().map(|w| w.key.clone()));
        }
        keys
    }

    /// Builds and collectively signs a proposal — the condensed local
    /// TFCommit round a group runs (used by tests, examples and the
    /// scaling benchmarks).
    ///
    /// `members` pairs each group server index with its key pair; they
    /// must be sorted by index.
    pub fn build_signed(
        members: &[(u32, KeyPair)],
        txns: Vec<TxnRecord>,
        roots: Vec<ShardRoot>,
        decision: Decision,
    ) -> GroupProposal {
        let mut proposal = GroupProposal {
            group: members.iter().map(|(s, _)| *s).collect(),
            txns,
            roots,
            decision,
            cosign: CollectiveSignature::placeholder(),
        };
        let record = proposal.proposal_bytes();
        let round_id = Sha256::digest(&record);
        let witnesses: Vec<Witness> = members
            .iter()
            .map(|(_, kp)| Witness::commit(kp, round_id.as_bytes(), &record))
            .collect();
        let agg = cosi::aggregate_commitments(witnesses.iter().map(|w| w.commitment()));
        let c = cosi::challenge(&agg, &record);
        proposal.cosign =
            CollectiveSignature::assemble(agg, witnesses.iter().map(|w| w.respond(&c)));
        proposal
    }
}

impl Encodable for GroupProposal {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_seq(&self.group, |e, s| e.put_u32(*s));
        enc.put_seq(&self.txns, |e, t| t.encode_into(e));
        enc.put_seq(&self.roots, |e, r| r.encode_into(e));
        self.decision.encode_into(enc);
        self.cosign.encode_into(enc);
    }
}

impl Decodable for GroupProposal {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(GroupProposal {
            group: dec.take_seq(|d| d.take_u32())?,
            txns: dec.take_seq(TxnRecord::decode_from)?,
            roots: dec.take_seq(ShardRoot::decode_from)?,
            decision: Decision::decode_from(dec)?,
            cosign: CollectiveSignature::decode_from(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fides_store::rwset::WriteEntry;
    use fides_store::types::{Timestamp, Value};

    fn members(ids: &[u32]) -> Vec<(u32, KeyPair)> {
        ids.iter()
            .map(|i| (*i, KeyPair::from_seed(format!("srv-{i}").as_bytes())))
            .collect()
    }

    fn all_pks(n: u32) -> Vec<PublicKey> {
        (0..n)
            .map(|i| KeyPair::from_seed(format!("srv-{i}").as_bytes()).public_key())
            .collect()
    }

    fn sample_txn(ts: u64, key: &str) -> TxnRecord {
        TxnRecord {
            id: Timestamp::new(ts, 0),
            read_set: vec![],
            write_set: vec![WriteEntry {
                key: Key::new(key),
                new_value: Value::from_i64(1),
                old_value: None,
                rts: Timestamp::ZERO,
                wts: Timestamp::ZERO,
            }],
        }
    }

    #[test]
    fn signed_proposal_verifies() {
        let m = members(&[1, 3]);
        let p = GroupProposal::build_signed(&m, vec![sample_txn(5, "x")], vec![], Decision::Commit);
        assert!(p.verify(&all_pks(5)));
    }

    #[test]
    fn verification_fails_for_wrong_group() {
        let m = members(&[1, 3]);
        let mut p =
            GroupProposal::build_signed(&m, vec![sample_txn(5, "x")], vec![], Decision::Commit);
        p.group = vec![1, 2]; // claim a different membership
        assert!(!p.verify(&all_pks(5)));
    }

    #[test]
    fn verification_fails_for_tampered_content() {
        let m = members(&[0, 2]);
        let mut p =
            GroupProposal::build_signed(&m, vec![sample_txn(5, "x")], vec![], Decision::Commit);
        p.decision = Decision::Abort;
        assert!(!p.verify(&all_pks(3)));
    }

    #[test]
    fn verification_fails_for_unknown_server() {
        let m = members(&[9]);
        let p = GroupProposal::build_signed(&m, vec![], vec![], Decision::Commit);
        assert!(!p.verify(&all_pks(3))); // directory has only 3 servers
    }

    #[test]
    fn touched_keys_collects_reads_and_writes() {
        let m = members(&[0]);
        let p = GroupProposal::build_signed(
            &m,
            vec![sample_txn(1, "a"), sample_txn(2, "b")],
            vec![],
            Decision::Commit,
        );
        let keys = p.touched_keys();
        assert_eq!(keys.len(), 2);
    }

    #[test]
    fn encoding_roundtrip() {
        let m = members(&[0, 1]);
        let p = GroupProposal::build_signed(&m, vec![sample_txn(9, "z")], vec![], Decision::Abort);
        let decoded = GroupProposal::decode(&p.encode()).unwrap();
        assert_eq!(decoded, p);
        assert!(decoded.verify(&all_pks(2)));
    }

    #[test]
    fn distinct_content_distinct_digest() {
        let m = members(&[0]);
        let p1 =
            GroupProposal::build_signed(&m, vec![sample_txn(1, "a")], vec![], Decision::Commit);
        let p2 =
            GroupProposal::build_signed(&m, vec![sample_txn(2, "a")], vec![], Decision::Commit);
        assert_ne!(p1.digest(), p2.digest());
    }
}
