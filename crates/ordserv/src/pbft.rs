//! PBFT (Castro & Liskov) among group coordinators — the paper's
//! suggested byzantine ordering service ("OrdServ can use a byzantine
//! consensus protocol such as PBFT among the coordinators", §4.6).
//!
//! The normal-case three-phase protocol is implemented in full:
//!
//! 1. **pre-prepare** — the view's primary assigns a sequence number to
//!    a payload and broadcasts it;
//! 2. **prepare** — backups re-broadcast the digest; a replica is
//!    *prepared* once it holds the pre-prepare plus `2f` matching
//!    prepares from distinct replicas;
//! 3. **commit** — prepared replicas broadcast commits; a payload is
//!    *committed-local* with `2f + 1` matching commits.
//!
//! Safety holds with `n = 3f + 1` replicas of which at most `f` are
//! byzantine. **View changes are not implemented** — the paper's sketch
//! only needs the ordering backbone, so a faulty *primary* stalls
//! progress (liveness) but can never cause divergent commits (safety);
//! the tests demonstrate both.
//!
//! Replicas are pure state machines (`handle` returns outbound
//! messages), so tests drive them deterministically.

use std::collections::{BTreeMap, HashMap, HashSet};

use fides_crypto::sha256::Sha256;
use fides_crypto::Digest;

/// Static PBFT group parameters.
#[derive(Clone, Copy, Debug)]
pub struct PbftConfig {
    /// Total replicas (`n = 3f + 1`).
    pub n: usize,
    /// Tolerated byzantine replicas.
    pub f: usize,
}

impl PbftConfig {
    /// Builds a configuration for a given `f` (so `n = 3f + 1`).
    pub fn for_faults(f: usize) -> Self {
        PbftConfig { n: 3 * f + 1, f }
    }

    /// The prepare quorum (`2f` matching prepares from others).
    pub fn prepare_quorum(&self) -> usize {
        2 * self.f
    }

    /// The commit quorum (`2f + 1` matching commits).
    pub fn commit_quorum(&self) -> usize {
        2 * self.f + 1
    }
}

/// A PBFT protocol message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PbftMessage {
    /// Primary → all: payload assignment for a sequence number.
    PrePrepare {
        /// View number (fixed at 0 here; no view changes).
        view: u64,
        /// Assigned sequence number.
        seq: u64,
        /// Digest of the payload.
        digest: Digest,
        /// The ordered payload (an encoded [`crate::GroupProposal`]).
        payload: Vec<u8>,
    },
    /// Backup → all: digest echo.
    Prepare {
        /// View number.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// Digest being prepared.
        digest: Digest,
    },
    /// Replica → all: commit vote.
    Commit {
        /// View number.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// Digest being committed.
        digest: Digest,
    },
}

/// Byzantine behaviours injectable into a replica (tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PbftFault {
    /// Send prepares/commits with a corrupted digest.
    CorruptDigest,
    /// Stay silent (crash).
    Silent,
}

/// An outbound message with its destinations (`None` = broadcast to
/// all other replicas).
pub type Outbound = (Option<usize>, PbftMessage);

#[derive(Default)]
struct Slot {
    pre_prepared: Option<(Digest, Vec<u8>)>,
    prepares: HashMap<Digest, HashSet<usize>>,
    commits: HashMap<Digest, HashSet<usize>>,
    sent_prepare: bool,
    sent_commit: bool,
    committed: bool,
}

/// One PBFT replica.
pub struct PbftNode {
    id: usize,
    config: PbftConfig,
    view: u64,
    slots: BTreeMap<u64, Slot>,
    committed: BTreeMap<u64, Vec<u8>>,
    next_seq: u64,
    fault: Option<PbftFault>,
}

impl PbftNode {
    /// Creates an honest replica.
    pub fn new(id: usize, config: PbftConfig) -> Self {
        PbftNode {
            id,
            config,
            view: 0,
            slots: BTreeMap::new(),
            committed: BTreeMap::new(),
            next_seq: 0,
            fault: None,
        }
    }

    /// Creates a faulty replica.
    pub fn with_fault(id: usize, config: PbftConfig, fault: PbftFault) -> Self {
        let mut node = Self::new(id, config);
        node.fault = Some(fault);
        node
    }

    /// This replica's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The current view's primary.
    pub fn primary(&self) -> usize {
        (self.view as usize) % self.config.n
    }

    /// Returns `true` if this replica is the current primary.
    pub fn is_primary(&self) -> bool {
        self.primary() == self.id
    }

    /// Committed payloads in sequence order.
    pub fn committed(&self) -> &BTreeMap<u64, Vec<u8>> {
        &self.committed
    }

    /// Primary API: order a payload. Returns the pre-prepare broadcast.
    ///
    /// # Panics
    ///
    /// Panics when called on a backup.
    pub fn propose(&mut self, payload: Vec<u8>) -> Vec<Outbound> {
        assert!(self.is_primary(), "only the primary proposes");
        if self.fault == Some(PbftFault::Silent) {
            return Vec::new();
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let digest = Sha256::digest(&payload);
        let msg = PbftMessage::PrePrepare {
            view: self.view,
            seq,
            digest,
            payload: payload.clone(),
        };
        // The primary processes its own pre-prepare immediately.
        let mut out = vec![(None, msg.clone())];
        out.extend(self.handle(self.id, msg));
        out
    }

    /// Primary API modelling an equivocating leader: a different
    /// payload for a chosen set of replicas (test support; safety must
    /// hold regardless).
    pub fn propose_equivocating(
        &mut self,
        payload_a: Vec<u8>,
        payload_b: Vec<u8>,
        b_recipients: &[usize],
    ) -> Vec<Outbound> {
        assert!(self.is_primary(), "only the primary proposes");
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut out = Vec::new();
        for r in 0..self.config.n {
            if r == self.id {
                continue;
            }
            let payload = if b_recipients.contains(&r) {
                payload_b.clone()
            } else {
                payload_a.clone()
            };
            let digest = Sha256::digest(&payload);
            out.push((
                Some(r),
                PbftMessage::PrePrepare {
                    view: self.view,
                    seq,
                    digest,
                    payload,
                },
            ));
        }
        out
    }

    fn corrupt(&self, digest: Digest) -> Digest {
        let mut bytes = digest.into_bytes();
        bytes[0] ^= 0xFF;
        Digest::new(bytes)
    }

    /// Handles one message from `from`, returning outbound messages.
    pub fn handle(&mut self, from: usize, msg: PbftMessage) -> Vec<Outbound> {
        if self.fault == Some(PbftFault::Silent) {
            return Vec::new();
        }
        let mut out = Vec::new();
        match msg {
            PbftMessage::PrePrepare {
                view,
                seq,
                digest,
                payload,
            } => {
                if view != self.view || from != self.primary() {
                    return out; // only the primary pre-prepares
                }
                if Sha256::digest(&payload) != digest {
                    return out; // malformed
                }
                let slot = self.slots.entry(seq).or_default();
                if slot.pre_prepared.is_some() {
                    return out; // duplicate/conflicting pre-prepare ignored
                }
                slot.pre_prepared = Some((digest, payload));
                if !slot.sent_prepare {
                    slot.sent_prepare = true;
                    let send_digest = if self.fault == Some(PbftFault::CorruptDigest) {
                        self.corrupt(digest)
                    } else {
                        digest
                    };
                    let prepare = PbftMessage::Prepare {
                        view,
                        seq,
                        digest: send_digest,
                    };
                    out.push((None, prepare.clone()));
                    // Count our own prepare.
                    out.extend(self.handle(self.id, prepare));
                }
            }
            PbftMessage::Prepare { view, seq, digest } => {
                if view != self.view {
                    return out;
                }
                let slot = self.slots.entry(seq).or_default();
                slot.prepares.entry(digest).or_default().insert(from);
                out.extend(self.try_advance(seq));
            }
            PbftMessage::Commit { view, seq, digest } => {
                if view != self.view {
                    return out;
                }
                let slot = self.slots.entry(seq).or_default();
                slot.commits.entry(digest).or_default().insert(from);
                out.extend(self.try_advance(seq));
            }
        }
        out
    }

    /// Checks the prepared / committed-local predicates for `seq`.
    fn try_advance(&mut self, seq: u64) -> Vec<Outbound> {
        let mut out = Vec::new();
        let Some(slot) = self.slots.get_mut(&seq) else {
            return out;
        };
        let Some((digest, payload)) = slot.pre_prepared.clone() else {
            return out;
        };
        // Prepared: pre-prepare + 2f matching prepares (self included in
        // the prepare set by construction).
        let prepare_count = slot
            .prepares
            .get(&digest)
            .map_or(0, |s| s.iter().filter(|&&r| r != self.id).count());
        if !slot.sent_commit && prepare_count >= self.config.prepare_quorum() {
            slot.sent_commit = true;
            let send_digest = if self.fault == Some(PbftFault::CorruptDigest) {
                self.corrupt(digest)
            } else {
                digest
            };
            let commit = PbftMessage::Commit {
                view: self.view,
                seq,
                digest: send_digest,
            };
            out.push((None, commit.clone()));
            out.extend(self.handle(self.id, commit));
            return out;
        }
        // Committed-local: 2f + 1 matching commits (self counts).
        let slot = self.slots.get_mut(&seq).expect("slot exists");
        let commit_count = slot.commits.get(&digest).map_or(0, |s| s.len());
        if !slot.committed && commit_count >= self.config.commit_quorum() {
            slot.committed = true;
            self.committed.insert(seq, payload);
        }
        out
    }
}

impl core::fmt::Debug for PbftNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "PbftNode(id={}, view={}, committed={})",
            self.id,
            self.view,
            self.committed.len()
        )
    }
}

/// Synchronous delivery driver: applies outbound messages to their
/// destinations until quiescence. Returns the number of messages
/// delivered.
pub fn run_to_quiescence(nodes: &mut [PbftNode], initial: Vec<(usize, Outbound)>) -> usize {
    // Queue entries: (sender, destination, message).
    let mut queue: Vec<(usize, usize, PbftMessage)> = Vec::new();
    let n = nodes.len();
    let push = |queue: &mut Vec<(usize, usize, PbftMessage)>,
                sender: usize,
                (dest, msg): Outbound| match dest {
        Some(d) => queue.push((sender, d, msg)),
        None => {
            for d in 0..n {
                if d != sender {
                    queue.push((sender, d, msg.clone()));
                }
            }
        }
    };
    for (sender, outbound) in initial {
        push(&mut queue, sender, outbound);
    }
    let mut delivered = 0;
    while let Some((sender, dest, msg)) = queue.pop() {
        delivered += 1;
        let outs = nodes[dest].handle(sender, msg);
        for outbound in outs {
            push(&mut queue, dest, outbound);
        }
    }
    delivered
}

#[cfg(test)]
mod tests {
    use super::*;

    fn honest_group(f: usize) -> Vec<PbftNode> {
        let config = PbftConfig::for_faults(f);
        (0..config.n).map(|i| PbftNode::new(i, config)).collect()
    }

    fn committed_at(nodes: &[PbftNode], seq: u64) -> Vec<Option<&Vec<u8>>> {
        nodes.iter().map(|n| n.committed().get(&seq)).collect()
    }

    #[test]
    fn all_honest_commit() {
        let mut nodes = honest_group(1); // n = 4
        let out = nodes[0].propose(b"block-a".to_vec());
        run_to_quiescence(
            &mut nodes,
            out.clone().into_iter().map(|o| (0, o)).collect(),
        );
        for c in committed_at(&nodes, 0) {
            assert_eq!(c.map(|v| v.as_slice()), Some(&b"block-a"[..]));
        }
    }

    #[test]
    fn sequence_of_proposals_all_commit_in_order() {
        let mut nodes = honest_group(1);
        for (i, payload) in [b"p0".to_vec(), b"p1".to_vec(), b"p2".to_vec()]
            .into_iter()
            .enumerate()
        {
            let out = nodes[0].propose(payload);
            run_to_quiescence(
                &mut nodes,
                out.clone().into_iter().map(|o| (0, o)).collect(),
            );
            for node in &nodes {
                assert_eq!(node.committed().len(), i + 1);
            }
        }
        // Identical order everywhere.
        let reference: Vec<_> = nodes[0].committed().values().cloned().collect();
        for node in &nodes[1..] {
            let order: Vec<_> = node.committed().values().cloned().collect();
            assert_eq!(order, reference);
        }
    }

    #[test]
    fn one_corrupt_backup_does_not_prevent_commit() {
        let config = PbftConfig::for_faults(1);
        let mut nodes: Vec<PbftNode> = (0..4)
            .map(|i| {
                if i == 2 {
                    PbftNode::with_fault(i, config, PbftFault::CorruptDigest)
                } else {
                    PbftNode::new(i, config)
                }
            })
            .collect();
        let out = nodes[0].propose(b"x".to_vec());
        run_to_quiescence(
            &mut nodes,
            out.clone().into_iter().map(|o| (0, o)).collect(),
        );
        for (i, c) in committed_at(&nodes, 0).iter().enumerate() {
            if i != 2 {
                assert!(c.is_some(), "honest node {i} must commit");
            }
        }
    }

    #[test]
    fn one_silent_backup_does_not_prevent_commit() {
        let config = PbftConfig::for_faults(1);
        let mut nodes: Vec<PbftNode> = (0..4)
            .map(|i| {
                if i == 3 {
                    PbftNode::with_fault(i, config, PbftFault::Silent)
                } else {
                    PbftNode::new(i, config)
                }
            })
            .collect();
        let out = nodes[0].propose(b"y".to_vec());
        run_to_quiescence(
            &mut nodes,
            out.clone().into_iter().map(|o| (0, o)).collect(),
        );
        for node in nodes.iter().take(3) {
            assert!(node.committed().get(&0).is_some());
        }
    }

    #[test]
    fn two_faults_with_f1_stall_but_never_diverge() {
        let config = PbftConfig::for_faults(1);
        let mut nodes: Vec<PbftNode> = (0..4)
            .map(|i| match i {
                1 => PbftNode::with_fault(i, config, PbftFault::Silent),
                2 => PbftNode::with_fault(i, config, PbftFault::CorruptDigest),
                _ => PbftNode::new(i, config),
            })
            .collect();
        let out = nodes[0].propose(b"z".to_vec());
        run_to_quiescence(
            &mut nodes,
            out.clone().into_iter().map(|o| (0, o)).collect(),
        );
        // With 2 > f faults, progress may stall — but no two honest
        // replicas may ever commit different payloads.
        let commits: Vec<_> = [0usize, 3]
            .iter()
            .filter_map(|&i| nodes[i].committed().get(&0))
            .collect();
        assert!(commits.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn equivocating_primary_cannot_cause_divergence() {
        let config = PbftConfig::for_faults(1);
        let mut nodes: Vec<PbftNode> = (0..4).map(|i| PbftNode::new(i, config)).collect();
        // Primary sends payload B to replica 3, payload A to 1 and 2.
        let outs = nodes[0].propose_equivocating(b"A".to_vec(), b"B".to_vec(), &[3]);
        let initial: Vec<(usize, Outbound)> = outs.into_iter().map(|o| (0, o)).collect();
        run_to_quiescence(&mut nodes, initial);
        // No honest replica pair commits different payloads at seq 0.
        let mut seen: Vec<&[u8]> = Vec::new();
        for node in &nodes[1..] {
            if let Some(p) = node.committed().get(&0) {
                seen.push(p);
            }
        }
        assert!(
            seen.windows(2).all(|w| w[0] == w[1]),
            "divergent commits: {seen:?}"
        );
    }

    #[test]
    fn backup_ignores_fake_primary() {
        let config = PbftConfig::for_faults(1);
        let mut node = PbftNode::new(1, config);
        // Replica 2 pretends to be the primary.
        let out = node.handle(
            2,
            PbftMessage::PrePrepare {
                view: 0,
                seq: 0,
                digest: Sha256::digest(b"evil"),
                payload: b"evil".to_vec(),
            },
        );
        assert!(out.is_empty());
    }

    #[test]
    fn mismatched_payload_digest_ignored() {
        let config = PbftConfig::for_faults(1);
        let mut node = PbftNode::new(1, config);
        let out = node.handle(
            0,
            PbftMessage::PrePrepare {
                view: 0,
                seq: 0,
                digest: Sha256::digest(b"other"),
                payload: b"payload".to_vec(),
            },
        );
        assert!(out.is_empty());
    }

    #[test]
    fn larger_group_f2_commits() {
        let mut nodes = honest_group(2); // n = 7
        let out = nodes[0].propose(b"big".to_vec());
        let delivered = run_to_quiescence(
            &mut nodes,
            out.clone().into_iter().map(|o| (0, o)).collect(),
        );
        assert!(delivered > 0);
        for node in &nodes {
            assert!(node.committed().get(&0).is_some());
        }
    }

    #[test]
    #[should_panic(expected = "only the primary")]
    fn backup_cannot_propose() {
        let config = PbftConfig::for_faults(1);
        let mut node = PbftNode::new(2, config);
        let _ = node.propose(b"nope".to_vec());
    }
}
