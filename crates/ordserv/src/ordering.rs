//! The ordering service and the globally replicated group log
//! (paper §4.6, Figure 9).
//!
//! The OrdServ consumes [`GroupProposal`]s from group coordinators and
//! emits a single stream of chained [`OrderedBlock`]s. It tracks
//! cross-group dependencies: if two proposals' groups intersect
//! (`Gi ∩ Gj ≠ ∅`) their blocks have a dependency edge that the emitted
//! order must respect; disjoint groups may be ordered arbitrarily.

use core::fmt;
use std::collections::HashMap;

use fides_crypto::encoding::{Decodable, DecodeError, Decoder, Encodable, Encoder};
use fides_crypto::schnorr::PublicKey;
use fides_crypto::sha256::Sha256;
use fides_crypto::Digest;

use crate::proposal::GroupProposal;

/// A proposal placed in the global stream: OrdServ assigned the
/// sequence number and previous-block hash ("the coordinators of the
/// groups do not fill in the hash of previous block, rather it is
/// filled by the OrdServ").
#[derive(Clone, Debug, PartialEq)]
pub struct OrderedBlock {
    /// Position in the global stream.
    pub seq: u64,
    /// Hash of the previous ordered block ([`Digest::ZERO`] first).
    pub prev_hash: Digest,
    /// Sequence numbers of earlier blocks whose groups intersect this
    /// one — the dependency edges the order respects.
    pub depends_on: Vec<u64>,
    /// The group's signed proposal.
    pub proposal: GroupProposal,
}

impl OrderedBlock {
    /// The chain-link hash over sequence, previous hash, dependencies
    /// and proposal content.
    pub fn hash(&self) -> Digest {
        let mut enc = Encoder::with_capacity(128);
        enc.put_fixed(b"fides.ordered-block.v1");
        enc.put_u64(self.seq);
        enc.put_digest(&self.prev_hash);
        enc.put_seq(&self.depends_on, |e, d| e.put_u64(*d));
        enc.put_fixed(&self.proposal.digest().into_bytes());
        Sha256::digest(enc.as_bytes())
    }
}

impl Encodable for OrderedBlock {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_u64(self.seq);
        enc.put_digest(&self.prev_hash);
        enc.put_seq(&self.depends_on, |e, d| e.put_u64(*d));
        self.proposal.encode_into(enc);
    }
}

impl Decodable for OrderedBlock {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(OrderedBlock {
            seq: dec.take_u64()?,
            prev_hash: dec.take_digest()?,
            depends_on: dec.take_seq(|d| d.take_u64())?,
            proposal: GroupProposal::decode_from(dec)?,
        })
    }
}

/// Why a proposal was refused by the ordering service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SequenceError {
    /// The group collective signature did not verify.
    InvalidProposalSignature,
    /// The proposal names a server outside the directory.
    UnknownServer,
}

impl fmt::Display for SequenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SequenceError::InvalidProposalSignature => {
                write!(f, "group proposal signature invalid")
            }
            SequenceError::UnknownServer => write!(f, "proposal names an unknown server"),
        }
    }
}

impl std::error::Error for SequenceError {}

/// An ordering service: turns validated group proposals into a single
/// consistent stream.
pub trait OrderingService {
    /// Validates, sequences and chains one proposal.
    ///
    /// # Errors
    ///
    /// Refuses proposals whose group signature does not verify.
    fn submit(&mut self, proposal: GroupProposal) -> Result<OrderedBlock, SequenceError>;

    /// The stream emitted so far.
    fn stream(&self) -> &[OrderedBlock];
}

/// The baseline OrdServ: a single sequencer (the paper's Kafka-like
/// option) with dependency tracking.
#[derive(Debug)]
pub struct Sequencer {
    all_server_pks: Vec<PublicKey>,
    stream: Vec<OrderedBlock>,
    /// Last sequence number that touched each server's shard.
    last_touch: HashMap<u32, u64>,
}

impl Sequencer {
    /// Creates a sequencer over the full server key directory.
    pub fn new(all_server_pks: Vec<PublicKey>) -> Self {
        Sequencer {
            all_server_pks,
            stream: Vec::new(),
            last_touch: HashMap::new(),
        }
    }
}

impl OrderingService for Sequencer {
    fn submit(&mut self, proposal: GroupProposal) -> Result<OrderedBlock, SequenceError> {
        if proposal
            .group
            .iter()
            .any(|s| *s as usize >= self.all_server_pks.len())
        {
            return Err(SequenceError::UnknownServer);
        }
        if !proposal.verify(&self.all_server_pks) {
            return Err(SequenceError::InvalidProposalSignature);
        }
        let seq = self.stream.len() as u64;
        // Dependencies: the most recent earlier block per intersecting
        // server (Gi ∩ Gj ≠ ∅ ⇒ ordered dependency).
        let mut deps: Vec<u64> = proposal
            .group
            .iter()
            .filter_map(|s| self.last_touch.get(s).copied())
            .collect();
        deps.sort_unstable();
        deps.dedup();
        let prev_hash = self.stream.last().map_or(Digest::ZERO, |b| b.hash());
        let block = OrderedBlock {
            seq,
            prev_hash,
            depends_on: deps,
            proposal,
        };
        for s in &block.proposal.group {
            self.last_touch.insert(*s, seq);
        }
        self.stream.push(block.clone());
        Ok(block)
    }

    fn stream(&self) -> &[OrderedBlock] {
        &self.stream
    }
}

/// One server's replica of the ordered stream, with validation — the
/// §4.6 equivalent of the global tamper-proof log.
#[derive(Debug, Default, Clone)]
pub struct GroupLog {
    blocks: Vec<OrderedBlock>,
}

/// Validation failures for a [`GroupLog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupLogFault {
    /// Sequence numbers are not 0..n.
    BadSequence(u64),
    /// A previous-hash pointer is broken.
    BadHashLink(u64),
    /// A proposal's group co-sign is invalid.
    BadProposalSignature(u64),
    /// A dependency edge points forward or at itself.
    BadDependency(u64),
    /// The emitted order violates a dependency: an earlier block's
    /// group intersects but is sequenced later.
    DependencyViolated(u64),
}

impl GroupLog {
    /// Creates an empty replica.
    pub fn new() -> Self {
        GroupLog::default()
    }

    /// Appends a broadcast block (no validation; call
    /// [`GroupLog::validate`] before trusting the replica).
    pub fn append(&mut self, block: OrderedBlock) {
        self.blocks.push(block);
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The blocks.
    pub fn blocks(&self) -> &[OrderedBlock] {
        &self.blocks
    }

    /// Full validation: sequence continuity, hash chaining, per-block
    /// group signatures, and dependency consistency (every pair of
    /// intersecting groups has an explicit, backwards dependency edge).
    ///
    /// # Errors
    ///
    /// The first fault found, with its sequence number.
    pub fn validate(&self, all_server_pks: &[PublicKey]) -> Result<(), GroupLogFault> {
        let mut prev = Digest::ZERO;
        let mut last_touch: HashMap<u32, u64> = HashMap::new();
        for (i, block) in self.blocks.iter().enumerate() {
            let seq = i as u64;
            if block.seq != seq {
                return Err(GroupLogFault::BadSequence(seq));
            }
            if block.prev_hash != prev {
                return Err(GroupLogFault::BadHashLink(seq));
            }
            if !block.proposal.verify(all_server_pks) {
                return Err(GroupLogFault::BadProposalSignature(seq));
            }
            if block.depends_on.iter().any(|d| *d >= seq) {
                return Err(GroupLogFault::BadDependency(seq));
            }
            // Every intersecting predecessor must appear as a dependency.
            for s in &block.proposal.group {
                if let Some(&dep) = last_touch.get(s) {
                    if !block.depends_on.contains(&dep) {
                        return Err(GroupLogFault::DependencyViolated(seq));
                    }
                }
            }
            for s in &block.proposal.group {
                last_touch.insert(*s, seq);
            }
            prev = block.hash();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fides_crypto::schnorr::KeyPair;
    use fides_ledger::block::Decision;

    fn kp(i: u32) -> KeyPair {
        KeyPair::from_seed(format!("srv-{i}").as_bytes())
    }

    fn pks(n: u32) -> Vec<PublicKey> {
        (0..n).map(|i| kp(i).public_key()).collect()
    }

    fn proposal(group: &[u32]) -> GroupProposal {
        let members: Vec<(u32, KeyPair)> = group.iter().map(|i| (*i, kp(*i))).collect();
        GroupProposal::build_signed(&members, vec![], vec![], Decision::Commit)
    }

    #[test]
    fn sequencer_chains_blocks() {
        let mut seq = Sequencer::new(pks(4));
        let b0 = seq.submit(proposal(&[0, 1])).unwrap();
        let b1 = seq.submit(proposal(&[2, 3])).unwrap();
        assert_eq!(b0.seq, 0);
        assert_eq!(b1.seq, 1);
        assert_eq!(b0.prev_hash, Digest::ZERO);
        assert_eq!(b1.prev_hash, b0.hash());
    }

    #[test]
    fn disjoint_groups_have_no_dependencies() {
        let mut seq = Sequencer::new(pks(4));
        seq.submit(proposal(&[0, 1])).unwrap();
        let b1 = seq.submit(proposal(&[2, 3])).unwrap();
        assert!(b1.depends_on.is_empty());
    }

    #[test]
    fn overlapping_groups_get_dependency_edges() {
        let mut seq = Sequencer::new(pks(4));
        seq.submit(proposal(&[0, 1])).unwrap(); // seq 0
        seq.submit(proposal(&[2])).unwrap(); // seq 1
        let b2 = seq.submit(proposal(&[1, 2])).unwrap(); // overlaps both
        assert_eq!(b2.depends_on, vec![0, 1]);
    }

    #[test]
    fn dependency_points_to_most_recent_toucher() {
        let mut seq = Sequencer::new(pks(3));
        seq.submit(proposal(&[0])).unwrap(); // seq 0
        seq.submit(proposal(&[0])).unwrap(); // seq 1
        let b2 = seq.submit(proposal(&[0])).unwrap();
        assert_eq!(b2.depends_on, vec![1]);
    }

    #[test]
    fn invalid_signature_refused() {
        let mut seq = Sequencer::new(pks(4));
        let mut p = proposal(&[0, 1]);
        p.decision = Decision::Abort; // breaks the co-sign
        assert_eq!(seq.submit(p), Err(SequenceError::InvalidProposalSignature));
    }

    #[test]
    fn unknown_server_refused() {
        let mut seq = Sequencer::new(pks(2));
        assert_eq!(
            seq.submit(proposal(&[5])),
            Err(SequenceError::UnknownServer)
        );
    }

    #[test]
    fn replicated_log_validates() {
        let mut seq = Sequencer::new(pks(4));
        let mut replica = GroupLog::new();
        for group in [&[0u32, 1][..], &[2, 3], &[1, 2], &[0]] {
            replica.append(seq.submit(proposal(group)).unwrap());
        }
        assert!(replica.validate(&pks(4)).is_ok());
    }

    #[test]
    fn reordered_replica_detected() {
        let mut seq = Sequencer::new(pks(4));
        let a = seq.submit(proposal(&[0])).unwrap();
        let b = seq.submit(proposal(&[1])).unwrap();
        let mut replica = GroupLog::new();
        replica.append(b);
        replica.append(a);
        assert!(matches!(
            replica.validate(&pks(4)),
            Err(GroupLogFault::BadSequence(0))
        ));
    }

    #[test]
    fn dropped_dependency_detected() {
        let mut seq = Sequencer::new(pks(3));
        let a = seq.submit(proposal(&[0])).unwrap();
        let mut b = seq.submit(proposal(&[0])).unwrap();
        // A malicious OrdServ strips the dependency edge; the hash
        // chain must be recomputed to stay superficially consistent.
        b.depends_on.clear();
        b.prev_hash = a.hash();
        let mut replica = GroupLog::new();
        replica.append(a);
        replica.append(b);
        assert!(matches!(
            replica.validate(&pks(3)),
            Err(GroupLogFault::DependencyViolated(1))
        ));
    }

    #[test]
    fn tampered_proposal_in_replica_detected() {
        let mut seq = Sequencer::new(pks(3));
        let mut a = seq.submit(proposal(&[0, 1])).unwrap();
        a.proposal.decision = Decision::Abort;
        let mut replica = GroupLog::new();
        replica.append(a);
        assert!(matches!(
            replica.validate(&pks(3)),
            Err(GroupLogFault::BadProposalSignature(0))
        ));
    }

    #[test]
    fn ordered_block_encoding_roundtrip() {
        let mut seq = Sequencer::new(pks(2));
        let b = seq.submit(proposal(&[0, 1])).unwrap();
        let decoded = OrderedBlock::decode(&b.encode()).unwrap();
        assert_eq!(decoded, b);
    }
}
