//! # fides-durability — persistence for data on untrusted disks
//!
//! Fides' guarantees hinge on an append-only tamper-proof log and
//! Merkle-authenticated datastores (paper §3.1, §4.2, §4.4); this crate
//! makes both survive a server restart **without weakening the threat
//! model**: bytes read back from disk are treated exactly like a log
//! surrendered to the auditor — re-chained, re-verified, and refused
//! when they do not check out.
//!
//! Pure `std`, no external crates. Three pieces:
//!
//! * [`wal`] — a **segmented append-only write-ahead log**:
//!   length-prefixed, CRC-32-checksummed records (serialized with the
//!   canonical [`fides_crypto::encoding`] traits), segment rotation,
//!   group-commit `fsync` batching, and torn-tail truncation on open.
//!   A flipped byte anywhere is corruption and fails the open; only an
//!   incomplete record at the very tail — the signature of a crash
//!   mid-write — is repaired.
//! * [`snapshot`] — **shard snapshots**: atomic, checksummed checkpoint
//!   files capturing a full [`fides_store::AuthenticatedShard`] image
//!   (items, version chains, timestamps, Merkle root) bound to a log
//!   height and tip hash, so recovery replays a log *suffix* instead of
//!   the whole history.
//! * [`recovery`] — the **verified recovery path**: rebuild the
//!   [`fides_ledger::TamperProofLog`] from WAL records, re-check every
//!   height and hash pointer, re-verify all collective signatures with
//!   the batched fast path ([`fides_crypto::cosi::verify_batch`]), and
//!   bind the snapshot to the verified chain before a server may serve
//!   traffic.
//!
//! The [`DurableLog`] and [`SnapshotStore`] traits abstract the
//! backend: [`WalBlockLog`] + [`FileSnapshotStore`] persist to disk,
//! while [`MemoryBlockLog`] + [`MemorySnapshotStore`] preserve the
//! original in-memory behavior (and let tests crash/recover without a
//! filesystem).
//!
//! ```
//! use fides_durability::{
//!     recover_ledger, SegmentedWal, SyncPolicy, WalBlockLog, WalConfig,
//! };
//! use fides_durability::testutil::TempDir;
//! use fides_crypto::Digest;
//! use fides_ledger::{BlockBuilder, Decision};
//!
//! let dir = TempDir::new("lib-doc");
//! let config = WalConfig::default();
//!
//! // A server appends terminated blocks, group-committing each batch.
//! let (mut wal, existing) = WalBlockLog::open(dir.path(), config)?;
//! assert!(existing.is_empty());
//! let genesis = BlockBuilder::new(0, Digest::ZERO)
//!     .decision(Decision::Commit)
//!     .build_unsigned();
//! use fides_durability::DurableLog;
//! wal.append_block(&genesis)?;
//! wal.sync()?;
//! drop(wal); // crash!
//!
//! // On restart the blocks come back and re-verify (no cosigns here,
//! // so the signature pass is disabled as in the 2PC baseline).
//! let (_wal, blocks) = WalBlockLog::open(dir.path(), config)?;
//! let recovered = recover_ledger(blocks, None, &[], false)?;
//! assert_eq!(recovered.log.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod blocklog;
pub mod crc32;
pub mod pipeline;
pub mod recovery;
pub mod snapshot;
pub mod wal;

mod tempdir;

/// Scratch-directory helpers for tests, benches and examples.
pub mod testutil {
    pub use crate::tempdir::TempDir;
}

pub use blocklog::{DurableLog, MemoryBlockLog, WalBlockLog};
pub use crc32::crc32;
pub use pipeline::{CommitPipeline, DurableAck, PipelineConfig, PipelineMetrics};
pub use recovery::{recover_ledger, RecoveredLedger, RecoveryError};
pub use snapshot::{
    FileSnapshotStore, MemorySnapshotStore, ShardSnapshot, SnapshotError, SnapshotStore,
};
pub use wal::{
    DirArchive, SegmentArchive, SegmentedWal, SyncPolicy, WalConfig, WalError, WalOpenReport,
};
