//! Shard snapshots: durable checkpoints of an authenticated shard.
//!
//! A snapshot freezes one server's [`AuthenticatedShard`] at a log
//! height: the full [`ShardCheckpoint`] (items, version chains and
//! timestamps in leaf order), the shard's Merkle root, the height and
//! tip hash of the log prefix it reflects, and the server's
//! `last_committed` watermark. Recovery restores the newest snapshot
//! and replays only the log suffix **above** the snapshot height into
//! the shard, instead of re-executing the whole history
//! ([`crate::recovery`]).
//!
//! On disk a snapshot is one file, written atomically (temp file →
//! `fsync` → rename → directory `fsync`) so a crash mid-checkpoint
//! leaves the previous snapshot intact:
//!
//! ```text
//! snap-<height>.fsnap := magic(8) version(u32) crc32(u32) payload
//! payload            := canonical encoding of ShardSnapshot
//! ```
//!
//! The CRC-32 catches media corruption; binding the snapshot to the
//! *verified* log (height + tip hash + root re-computation) is what
//! makes a forged snapshot detectable — see
//! [`crate::recovery::recover_ledger`].

use core::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use fides_crypto::encoding::{Decodable, DecodeError, Decoder, Encodable, Encoder};
use fides_crypto::Digest;
use fides_store::authenticated::AuthenticatedShard;
use fides_store::checkpoint::ShardCheckpoint;
use fides_store::types::Timestamp;

use crate::crc32::crc32;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"FIDESNAP";
/// On-disk snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A checkpoint of one server's shard at a specific log height.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Number of log blocks whose effects the checkpoint includes.
    pub height: u64,
    /// Hash of the last included block ([`Digest::ZERO`] at height 0) —
    /// binds the snapshot to one position of one verified chain.
    pub tip_hash: Digest,
    /// The server's highest committed transaction timestamp.
    pub last_committed: Timestamp,
    /// The shard's Merkle root at the checkpoint.
    pub root: Digest,
    /// The full shard image.
    pub checkpoint: ShardCheckpoint,
}

impl ShardSnapshot {
    /// Takes a snapshot of `shard` as of log height `height`.
    pub fn capture(
        shard: &AuthenticatedShard,
        height: u64,
        tip_hash: Digest,
        last_committed: Timestamp,
    ) -> ShardSnapshot {
        ShardSnapshot {
            height,
            tip_hash,
            last_committed,
            root: shard.root(),
            checkpoint: shard.checkpoint(),
        }
    }

    /// Restores the checkpointed shard and verifies it reproduces the
    /// recorded Merkle root.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::RootMismatch`] when the restored shard's root
    /// differs from [`ShardSnapshot::root`] — the snapshot payload and
    /// its metadata disagree.
    pub fn restore_verified(&self) -> Result<AuthenticatedShard, SnapshotError> {
        let shard = self.checkpoint.restore();
        if shard.root() != self.root {
            return Err(SnapshotError::RootMismatch {
                height: self.height,
            });
        }
        Ok(shard)
    }
}

impl Encodable for ShardSnapshot {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_u64(self.height);
        enc.put_digest(&self.tip_hash);
        self.last_committed.encode_into(enc);
        enc.put_digest(&self.root);
        self.checkpoint.encode_into(enc);
    }
}

impl Decodable for ShardSnapshot {
    fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(ShardSnapshot {
            height: dec.take_u64()?,
            tip_hash: dec.take_digest()?,
            last_committed: Timestamp::decode_from(dec)?,
            root: dec.take_digest()?,
            checkpoint: ShardCheckpoint::decode_from(dec)?,
        })
    }
}

/// Why a snapshot could not be saved or loaded.
#[derive(Debug)]
pub enum SnapshotError {
    /// An I/O failure (with the path it happened on).
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The snapshot file is not a valid snapshot (bad magic/version).
    BadHeader {
        /// The offending file.
        file: PathBuf,
        /// What was wrong.
        reason: &'static str,
    },
    /// The payload fails its CRC-32 — media corruption.
    ChecksumMismatch {
        /// The offending file.
        file: PathBuf,
    },
    /// The payload does not decode as a snapshot.
    Decode {
        /// The offending file.
        file: PathBuf,
        /// The decoder's error.
        source: DecodeError,
    },
    /// The restored shard's Merkle root differs from the recorded one.
    RootMismatch {
        /// The snapshot's claimed height.
        height: u64,
    },
}

impl SnapshotError {
    fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        SnapshotError::Io {
            path: path.into(),
            source,
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { path, source } => {
                write!(f, "snapshot i/o on {}: {source}", path.display())
            }
            SnapshotError::BadHeader { file, reason } => {
                write!(f, "bad snapshot header in {}: {reason}", file.display())
            }
            SnapshotError::ChecksumMismatch { file } => {
                write!(f, "snapshot crc-32 mismatch in {}", file.display())
            }
            SnapshotError::Decode { file, source } => {
                write!(f, "snapshot {} does not decode: {source}", file.display())
            }
            SnapshotError::RootMismatch { height } => write!(
                f,
                "snapshot at height {height}: restored shard root differs from recorded root"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io { source, .. } => Some(source),
            SnapshotError::Decode { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Durable storage for [`ShardSnapshot`]s.
///
/// Implementations keep (at least) the newest snapshot; older ones may
/// be garbage-collected.
///
/// Beyond its own checkpoints, a store can hold **mirrors**: peers'
/// checkpoints replicated here so that a peer which later loses its
/// disk below the cluster's pruned-WAL floor can fetch its own shard
/// image back during anti-entropy repair (checkpoint state transfer).
/// Only the newest mirror per origin server is kept.
pub trait SnapshotStore: Send + fmt::Debug {
    /// Persists a snapshot atomically.
    fn save(&mut self, snapshot: &ShardSnapshot) -> Result<(), SnapshotError>;

    /// Loads the newest stored snapshot, or `None` when none exists.
    fn load_latest(&self) -> Result<Option<ShardSnapshot>, SnapshotError>;

    /// Persists a mirror of `origin`'s checkpoint, replacing any older
    /// mirror for that origin. Backends without mirror support drop it.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] on I/O failure.
    fn save_mirror(&mut self, origin: u32, snapshot: &ShardSnapshot) -> Result<(), SnapshotError> {
        let _ = (origin, snapshot);
        Ok(())
    }

    /// Every stored mirror, as `(origin, snapshot)` pairs.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] on I/O failure or a corrupt mirror file.
    fn load_mirrors(&self) -> Result<Vec<(u32, ShardSnapshot)>, SnapshotError> {
        Ok(Vec::new())
    }
}

/// File-backed [`SnapshotStore`]: one `snap-<height>.fsnap` per
/// checkpoint in a directory, atomically replaced.
#[derive(Debug)]
pub struct FileSnapshotStore {
    dir: PathBuf,
}

fn snapshot_path(dir: &Path, height: u64) -> PathBuf {
    dir.join(format!("snap-{height:020}.fsnap"))
}

fn mirror_path(dir: &Path, origin: u32) -> PathBuf {
    dir.join(format!("mirror-{origin:010}.fsnap"))
}

/// Writes one framed snapshot file atomically (tmp → fsync → rename →
/// directory fsync) — shared by own checkpoints and mirrors.
fn write_snapshot_file(
    dir: &Path,
    final_path: &Path,
    snapshot: &ShardSnapshot,
) -> Result<(), SnapshotError> {
    let payload = snapshot.encode();
    let tmp_path = final_path.with_extension("fsnap.tmp");
    {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)
            .map_err(|e| SnapshotError::io(&tmp_path, e))?;
        file.write_all(SNAPSHOT_MAGIC)
            .and_then(|()| file.write_all(&SNAPSHOT_VERSION.to_be_bytes()))
            .and_then(|()| file.write_all(&crc32(&payload).to_be_bytes()))
            .and_then(|()| file.write_all(&payload))
            .and_then(|()| file.sync_all())
            .map_err(|e| SnapshotError::io(&tmp_path, e))?;
    }
    fs::rename(&tmp_path, final_path).map_err(|e| SnapshotError::io(final_path, e))?;
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| SnapshotError::io(dir, e))
}

/// Reads and integrity-checks one framed snapshot file.
fn read_snapshot_file(path: &Path) -> Result<ShardSnapshot, SnapshotError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| SnapshotError::io(path, e))?;
    if bytes.len() < 16 || &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadHeader {
            file: path.to_path_buf(),
            reason: "magic bytes missing",
        });
    }
    let version = u32::from_be_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::BadHeader {
            file: path.to_path_buf(),
            reason: "unsupported format version",
        });
    }
    let expected_crc = u32::from_be_bytes(bytes[12..16].try_into().expect("4 bytes"));
    let payload = &bytes[16..];
    if crc32(payload) != expected_crc {
        return Err(SnapshotError::ChecksumMismatch {
            file: path.to_path_buf(),
        });
    }
    ShardSnapshot::decode(payload).map_err(|source| SnapshotError::Decode {
        file: path.to_path_buf(),
        source,
    })
}

impl FileSnapshotStore {
    /// Opens (creating if needed) the snapshot directory.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<FileSnapshotStore, SnapshotError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| SnapshotError::io(&dir, e))?;
        Ok(FileSnapshotStore { dir })
    }

    /// Lists snapshot files in ascending height order.
    fn list(&self) -> Result<Vec<(u64, PathBuf)>, SnapshotError> {
        let mut snaps = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(|e| SnapshotError::io(&self.dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| SnapshotError::io(&self.dir, e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(h) = name
                .strip_prefix("snap-")
                .and_then(|n| n.strip_suffix(".fsnap"))
                .and_then(|n| n.parse::<u64>().ok())
            {
                snaps.push((h, entry.path()));
            }
        }
        snaps.sort_unstable_by_key(|(h, _)| *h);
        Ok(snaps)
    }
}

impl SnapshotStore for FileSnapshotStore {
    fn save(&mut self, snapshot: &ShardSnapshot) -> Result<(), SnapshotError> {
        let final_path = snapshot_path(&self.dir, snapshot.height);
        write_snapshot_file(&self.dir, &final_path, snapshot)?;

        // Garbage-collect older snapshots (best effort — the newest one
        // is already durable).
        for (h, path) in self.list()? {
            if h < snapshot.height {
                let _ = fs::remove_file(path);
            }
        }
        Ok(())
    }

    fn load_latest(&self) -> Result<Option<ShardSnapshot>, SnapshotError> {
        let Some((_, path)) = self.list()?.pop() else {
            return Ok(None);
        };
        read_snapshot_file(&path).map(Some)
    }

    fn save_mirror(&mut self, origin: u32, snapshot: &ShardSnapshot) -> Result<(), SnapshotError> {
        // One file per origin, atomically replaced: the newest mirror
        // supersedes older ones.
        let final_path = mirror_path(&self.dir, origin);
        write_snapshot_file(&self.dir, &final_path, snapshot)
    }

    fn load_mirrors(&self) -> Result<Vec<(u32, ShardSnapshot)>, SnapshotError> {
        let mut mirrors = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(|e| SnapshotError::io(&self.dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| SnapshotError::io(&self.dir, e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(origin) = name
                .strip_prefix("mirror-")
                .and_then(|n| n.strip_suffix(".fsnap"))
                .and_then(|n| n.parse::<u32>().ok())
            {
                mirrors.push((origin, read_snapshot_file(&entry.path())?));
            }
        }
        mirrors.sort_unstable_by_key(|(origin, _)| *origin);
        Ok(mirrors)
    }
}

/// In-memory [`SnapshotStore`] — the pre-durability behavior, also used
/// to run the persistence-aware server paths without touching disk.
#[derive(Debug, Default)]
pub struct MemorySnapshotStore {
    state: std::sync::Arc<std::sync::Mutex<MemorySnapshotState>>,
}

#[derive(Debug, Default)]
struct MemorySnapshotState {
    latest: Option<ShardSnapshot>,
    mirrors: std::collections::BTreeMap<u32, ShardSnapshot>,
}

impl MemorySnapshotStore {
    /// A fresh, empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// A handle sharing this store's contents — state survives dropping
    /// the original (simulating a disk across a simulated crash).
    pub fn handle(&self) -> MemorySnapshotStore {
        MemorySnapshotStore {
            state: std::sync::Arc::clone(&self.state),
        }
    }
}

impl SnapshotStore for MemorySnapshotStore {
    fn save(&mut self, snapshot: &ShardSnapshot) -> Result<(), SnapshotError> {
        self.state.lock().expect("snapshot store lock").latest = Some(snapshot.clone());
        Ok(())
    }

    fn load_latest(&self) -> Result<Option<ShardSnapshot>, SnapshotError> {
        Ok(self
            .state
            .lock()
            .expect("snapshot store lock")
            .latest
            .clone())
    }

    fn save_mirror(&mut self, origin: u32, snapshot: &ShardSnapshot) -> Result<(), SnapshotError> {
        self.state
            .lock()
            .expect("snapshot store lock")
            .mirrors
            .insert(origin, snapshot.clone());
        Ok(())
    }

    fn load_mirrors(&self) -> Result<Vec<(u32, ShardSnapshot)>, SnapshotError> {
        Ok(self
            .state
            .lock()
            .expect("snapshot store lock")
            .mirrors
            .iter()
            .map(|(origin, snap)| (*origin, snap.clone()))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;
    use fides_store::types::{Key, Value};

    fn shard(n: usize) -> AuthenticatedShard {
        AuthenticatedShard::new(
            (0..n)
                .map(|i| (Key::new(format!("k{i:03}")), Value::from_i64(i as i64)))
                .collect(),
        )
    }

    fn sample(height: u64) -> ShardSnapshot {
        let mut s = shard(12);
        s.apply_commit(
            Timestamp::new(9, 0),
            &[Key::new("k001")],
            &[(Key::new("k002"), Value::from_i64(77))],
        );
        ShardSnapshot::capture(&s, height, Digest::new([7; 32]), Timestamp::new(9, 0))
    }

    #[test]
    fn file_store_roundtrip() {
        let dir = TempDir::new("snap-roundtrip");
        let snap = sample(5);
        let mut store = FileSnapshotStore::open(dir.path()).unwrap();
        assert!(store.load_latest().unwrap().is_none());
        store.save(&snap).unwrap();
        let loaded = store.load_latest().unwrap().expect("snapshot present");
        assert_eq!(loaded, snap);
        let restored = loaded.restore_verified().unwrap();
        assert_eq!(restored.root(), snap.root);
    }

    #[test]
    fn newer_snapshot_replaces_older() {
        let dir = TempDir::new("snap-gc");
        let mut store = FileSnapshotStore::open(dir.path()).unwrap();
        store.save(&sample(3)).unwrap();
        store.save(&sample(9)).unwrap();
        assert_eq!(store.load_latest().unwrap().unwrap().height, 9);
        // The old file was garbage-collected.
        assert_eq!(store.list().unwrap().len(), 1);
    }

    #[test]
    fn flipped_byte_fails_checksum() {
        let dir = TempDir::new("snap-flip");
        let mut store = FileSnapshotStore::open(dir.path()).unwrap();
        store.save(&sample(4)).unwrap();
        let path = store.list().unwrap()[0].1.clone();
        let mut bytes = fs::read(&path).unwrap();
        let at = bytes.len() - 5;
        bytes[at] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.load_latest(),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn forged_metadata_fails_restore() {
        let mut snap = sample(4);
        snap.root = Digest::new([0xEE; 32]);
        assert!(matches!(
            snap.restore_verified(),
            Err(SnapshotError::RootMismatch { height: 4 })
        ));
    }

    #[test]
    fn tmp_file_leftover_is_ignored() {
        let dir = TempDir::new("snap-tmp");
        let mut store = FileSnapshotStore::open(dir.path()).unwrap();
        // A crash mid-save leaves a .tmp file behind; it must not be
        // picked up as a snapshot.
        fs::write(dir.join("snap-00000000000000000009.fsnap.tmp"), b"junk").unwrap();
        assert!(store.load_latest().unwrap().is_none());
        store.save(&sample(2)).unwrap();
        assert_eq!(store.load_latest().unwrap().unwrap().height, 2);
    }

    #[test]
    fn mirrors_roundtrip_and_replace_per_origin() {
        let dir = TempDir::new("snap-mirrors");
        let mut store = FileSnapshotStore::open(dir.path()).unwrap();
        assert!(store.load_mirrors().unwrap().is_empty());
        store.save_mirror(2, &sample(4)).unwrap();
        store.save_mirror(0, &sample(8)).unwrap();
        store.save_mirror(2, &sample(12)).unwrap(); // replaces origin 2
        store.save(&sample(16)).unwrap(); // own snapshot is separate
        let mirrors = store.load_mirrors().unwrap();
        assert_eq!(mirrors.len(), 2);
        assert_eq!(mirrors[0].0, 0);
        assert_eq!(mirrors[0].1.height, 8);
        assert_eq!(mirrors[1].0, 2);
        assert_eq!(mirrors[1].1.height, 12);
        assert_eq!(store.load_latest().unwrap().unwrap().height, 16);

        let mut memory = MemorySnapshotStore::new();
        memory.save_mirror(1, &sample(4)).unwrap();
        memory.save_mirror(1, &sample(6)).unwrap();
        let mirrors = memory.load_mirrors().unwrap();
        assert_eq!(mirrors.len(), 1);
        assert_eq!(mirrors[0].1.height, 6);
    }

    #[test]
    fn memory_store_survives_drop_via_handle() {
        let store = MemorySnapshotStore::new();
        let mut writer = store.handle();
        writer.save(&sample(6)).unwrap();
        drop(writer); // the "server" crashes
        assert_eq!(store.load_latest().unwrap().unwrap().height, 6);
    }

    #[test]
    fn snapshot_encoding_roundtrip() {
        let snap = sample(11);
        assert_eq!(ShardSnapshot::decode(&snap.encode()).unwrap(), snap);
    }
}
