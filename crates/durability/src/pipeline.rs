//! Asynchronous group commit: a dedicated WAL writer thread with an
//! ordered-ack guarantee.
//!
//! Under [`SyncPolicy::Pipelined`] a server no longer pays the fsync on
//! its commit path. Terminated blocks are handed to a
//! [`CommitPipeline`], whose writer thread drains everything queued
//! since the last disk round-trip, appends the whole batch, issues
//! **one** covering fsync, and only then advances the durable watermark
//! — batching appends *across rounds*, not just within one block. The
//! server applies block *h+1* to its shard and votes on *h+2* while the
//! writer is still fsyncing *h*.
//!
//! What makes this safe:
//!
//! * **Ordered acks** — a commit acknowledgement registered for height
//!   `h` ([`CommitPipeline::on_durable`]) runs only once the watermark
//!   covers `h`, and acks always fire in height order. A client that
//!   has seen an outcome therefore knows the block (and every block
//!   below it) survives a crash.
//! * **Snapshot ordering** — shard snapshots are routed through the
//!   same writer thread and saved only after the fsync covering their
//!   height, so a crash can never leave a snapshot ahead of the durable
//!   log (which recovery would refuse).
//! * **Crash shape** — a crash loses only un-fsynced tail blocks; the
//!   WAL prefix below the watermark is intact and recovery reproduces
//!   exactly the acknowledged history (tested in
//!   `crates/core/tests/pipeline_stress.rs`).
//!
//! After a snapshot is saved the writer prunes WAL segments below it
//! when pruning is enabled — the disk stays bounded while the pipeline
//! runs.
//!
//! [`SyncPolicy::Pipelined`]: crate::wal::SyncPolicy::Pipelined

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fides_ledger::block::Block;
use fides_telemetry::trace::now_ns;
use fides_telemetry::{Gauge, Histogram, Span, SpanSink, TraceContext};

use crate::blocklog::DurableLog;
use crate::snapshot::{ShardSnapshot, SnapshotStore};

/// A commit acknowledgement deferred until the covering fsync.
pub type DurableAck = Box<dyn FnOnce() + Send>;

/// Pipeline tuning.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Prune WAL segments below each saved snapshot (bounded disk; the
    /// log's archive hook, when configured, still preserves history for
    /// the auditor).
    pub prune_wal: bool,
    /// How long the writer keeps gathering appends after the greedy
    /// drain before issuing the covering fsync. Zero (the default)
    /// fsyncs as soon as the queue runs dry — the pre-gather behaviour.
    /// A window lets blocks from consecutive rounds share one disk
    /// round-trip, raising the group-commit batching factor
    /// (`durability.batch_blocks`).
    ///
    /// The window is *demand-driven*: it only runs while nothing is
    /// waiting on the fsync. A registered durable-ack ([`CommitPipeline
    /// ::on_durable`]) or a barrier command (flush, reset, kill,
    /// snapshot queries) cuts it short immediately, so a round leader's
    /// outcome fan-out never waits out the gather — in practice only
    /// follower replicas (which append every decided block but have no
    /// waiters) coalesce, and the window can be generous (tens of
    /// milliseconds) without touching commit latency.
    pub gather_window: Duration,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            prune_wal: true,
            gather_window: Duration::ZERO,
        }
    }
}

/// Observability handles the writer thread records into (see
/// `docs/telemetry.md`): attach with [`CommitPipeline::set_metrics`]
/// before traffic starts. Without them the pipeline records nothing.
#[derive(Clone, Debug, Default)]
pub struct PipelineMetrics {
    /// Covering-fsync latency, nanoseconds (`durability.fsync_ns`) —
    /// the disk round-trip the commit path no longer waits for.
    pub fsync_ns: Arc<Histogram>,
    /// Blocks covered per fsync (`durability.batch_blocks`) — the
    /// group-commit batching factor.
    pub batch_blocks: Arc<Histogram>,
    /// Commands queued to the writer but not yet drained
    /// (`durability.queue_depth`), with a high-watermark.
    pub queue_depth: Arc<Gauge>,
    /// Span sink for sampled traces (fides-trace): a traced append
    /// gets a `wal.fsync` span covering queue wait + the covering
    /// fsync. `None` outside traced clusters.
    pub spans: Option<Arc<SpanSink>>,
}

/// The causal context a traced block carries into the writer thread.
struct AppendTrace {
    ctx: TraceContext,
    /// When the server submitted the block ([`now_ns`]) — the span
    /// starts here so queue wait is visible, not hidden.
    submitted_ns: u64,
}

enum Cmd {
    /// Append this block; it becomes durable at the next covering
    /// fsync. Blocks must be submitted in height order.
    Append(Box<Block>, Option<AppendTrace>),
    /// Save this snapshot after the fsync covering its height, then
    /// prune the WAL below it (if enabled).
    Snapshot(Box<ShardSnapshot>),
    /// Persist a mirror of a peer's checkpoint (anti-entropy repair:
    /// the peer can fetch its own shard image back after losing its
    /// disk). Saved immediately — mirrors carry no local ack semantics.
    Mirror(u32, Box<ShardSnapshot>),
    /// Adopt a transferred checkpoint: save it, reset the log to start
    /// at its height, move the watermark there, and signal the barrier.
    /// The server guarantees no acks are pending across a reset.
    Reset(Box<ShardSnapshot>, crossbeam_channel::Sender<()>),
    /// Reply with the newest persisted snapshot (audit surrender).
    LoadLatest(crossbeam_channel::Sender<Option<ShardSnapshot>>),
    /// Fsync whatever is pending and signal the barrier.
    Flush(crossbeam_channel::Sender<()>),
    /// Test hook: stop immediately, abandoning buffered (un-fsynced)
    /// state — the in-process stand-in for `kill -9`.
    Kill,
}

/// Watermark + ack registry shared between the handle and the writer.
struct DurableState {
    /// Heights `< watermark` are fsync-covered.
    watermark: AtomicU64,
    /// Acks not yet runnable, keyed by the height they wait for.
    pending_acks: Mutex<BTreeMap<u64, Vec<DurableAck>>>,
    /// Signalled whenever the watermark advances.
    advanced: Condvar,
    advanced_mx: Mutex<()>,
}

impl DurableState {
    /// Runs (in height order) every pending ack the watermark now
    /// covers.
    fn release_acks(&self) {
        let runnable: Vec<DurableAck> = {
            let watermark = self.watermark.load(Ordering::Acquire);
            let mut pending = self.pending_acks.lock().unwrap_or_else(|e| e.into_inner());
            let keep = pending.split_off(&watermark);
            let runnable = std::mem::replace(&mut *pending, keep);
            runnable.into_values().flatten().collect()
        };
        for ack in runnable {
            ack();
        }
        let _guard = self.advanced_mx.lock().unwrap_or_else(|e| e.into_inner());
        self.advanced.notify_all();
    }
}

/// The asynchronous group-commit engine (see module docs).
pub struct CommitPipeline {
    tx: Option<crossbeam_channel::Sender<Cmd>>,
    state: Arc<DurableState>,
    writer: Option<JoinHandle<()>>,
    metrics: Arc<OnceLock<PipelineMetrics>>,
}

impl std::fmt::Debug for CommitPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CommitPipeline(durable_height={})",
            self.durable_height()
        )
    }
}

impl CommitPipeline {
    /// Spawns the writer thread over a durable log and snapshot store
    /// already holding `durable_height` blocks (the recovery point).
    pub fn new(
        log: Box<dyn DurableLog>,
        snapshots: Box<dyn SnapshotStore>,
        durable_height: u64,
        config: PipelineConfig,
    ) -> CommitPipeline {
        let (tx, rx) = crossbeam_channel::unbounded();
        let state = Arc::new(DurableState {
            watermark: AtomicU64::new(durable_height),
            pending_acks: Mutex::new(BTreeMap::new()),
            advanced: Condvar::new(),
            advanced_mx: Mutex::new(()),
        });
        let writer_state = Arc::clone(&state);
        let metrics: Arc<OnceLock<PipelineMetrics>> = Arc::new(OnceLock::new());
        let writer_metrics = Arc::clone(&metrics);
        let writer = std::thread::Builder::new()
            .name("fides-wal-writer".into())
            .spawn(move || writer_loop(rx, log, snapshots, writer_state, config, writer_metrics))
            .expect("spawn WAL writer thread");
        CommitPipeline {
            tx: Some(tx),
            state,
            writer: Some(writer),
            metrics,
        }
    }

    /// Attaches observability handles (idempotent; the first attach
    /// wins). Call before traffic starts so the queue-depth gauge
    /// balances.
    pub fn set_metrics(&self, metrics: PipelineMetrics) {
        let _ = self.metrics.set(metrics);
    }

    fn send(&self, cmd: Cmd) {
        self.tx
            .as_ref()
            .expect("pipeline alive")
            .send(cmd)
            .expect("WAL writer thread alive");
    }

    /// Queues a block for appending. Returns immediately; durability
    /// arrives with a later covering fsync. Blocks must be submitted in
    /// height order (the server's apply path guarantees this).
    pub fn submit_block(&self, block: &Block) {
        self.submit_block_traced(block, None);
    }

    /// [`CommitPipeline::submit_block`] carrying a sampled trace
    /// context: the covering fsync will emit a `wal.fsync` span
    /// parented under `ctx.parent_span` (requires
    /// [`PipelineMetrics::spans`] to be attached).
    pub fn submit_block_traced(&self, block: &Block, ctx: Option<TraceContext>) {
        if let Some(m) = self.metrics.get() {
            m.queue_depth.add(1);
        }
        let trace = ctx.map(|ctx| AppendTrace {
            ctx,
            submitted_ns: now_ns(),
        });
        self.send(Cmd::Append(Box::new(block.clone()), trace));
    }

    /// Queues a snapshot; it is saved only after the fsync covering its
    /// height, so recovery can always bind it to the durable chain.
    pub fn submit_snapshot(&self, snapshot: ShardSnapshot) {
        self.send(Cmd::Snapshot(Box::new(snapshot)));
    }

    /// Queues a peer's checkpoint mirror for persistence (see
    /// [`crate::SnapshotStore::save_mirror`]).
    pub fn submit_mirror(&self, origin: u32, snapshot: ShardSnapshot) {
        self.send(Cmd::Mirror(origin, Box::new(snapshot)));
    }

    /// Adopts a transferred checkpoint (anti-entropy repair): persists
    /// it, resets the WAL to restart at `snapshot.height`, and moves the
    /// durable watermark there. Blocking — on return the checkpoint is
    /// durable and subsequent [`CommitPipeline::submit_block`] calls
    /// must continue from `snapshot.height`. The caller must not have
    /// acks pending below the new height.
    pub fn reset_to(&self, snapshot: ShardSnapshot) {
        let (done_tx, done_rx) = crossbeam_channel::unbounded();
        self.send(Cmd::Reset(Box::new(snapshot), done_tx));
        let _ = done_rx.recv();
    }

    /// The newest persisted snapshot, fetched through the writer thread
    /// (which owns the store) — what a server surrenders to the auditor
    /// so a suffix-log audit can seed its replay.
    pub fn load_latest_snapshot(&self) -> Option<ShardSnapshot> {
        let (tx, rx) = crossbeam_channel::unbounded();
        self.send(Cmd::LoadLatest(tx));
        rx.recv().ok().flatten()
    }

    /// Registers `ack` to run once every block at height `< height + 1`
    /// is fsync-covered — i.e. once block `height` is durable. Runs
    /// inline when that is already true. Acks fire in height order
    /// (the ordered-ack guarantee clients rely on).
    pub fn on_durable(&self, height: u64, ack: DurableAck) {
        let mut pending = self
            .state
            .pending_acks
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if self.state.watermark.load(Ordering::Acquire) > height {
            drop(pending);
            ack();
        } else {
            pending.entry(height).or_default().push(ack);
        }
    }

    /// Heights below this are durable.
    pub fn durable_height(&self) -> u64 {
        self.state.watermark.load(Ordering::Acquire)
    }

    /// Waits until block `height` is durable (or the timeout passes).
    pub fn wait_durable(&self, height: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.durable_height() > height {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let guard = self
                .state
                .advanced_mx
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if self.durable_height() > height {
                return true;
            }
            let _ = self
                .state
                .advanced
                .wait_timeout(guard, (deadline - now).min(Duration::from_millis(10)))
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocking barrier: every block submitted before this call is
    /// durable when it returns.
    pub fn flush(&self) {
        let (done_tx, done_rx) = crossbeam_channel::unbounded();
        self.send(Cmd::Flush(done_tx));
        let _ = done_rx.recv();
    }

    /// Test hook simulating `kill -9` mid-stream: the writer stops
    /// without flushing, abandoning whatever was queued or buffered but
    /// not yet fsynced. The durable prefix (= everything acknowledged)
    /// survives on disk; recovery must reproduce exactly that.
    pub fn kill(mut self) {
        self.send(Cmd::Kill);
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
        self.tx = None;
    }
}

impl Drop for CommitPipeline {
    /// Graceful shutdown: close the queue, let the writer drain and
    /// fsync everything, then join it.
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}

fn writer_loop(
    rx: crossbeam_channel::Receiver<Cmd>,
    mut log: Box<dyn DurableLog>,
    mut snapshots: Box<dyn SnapshotStore>,
    state: Arc<DurableState>,
    config: PipelineConfig,
    metrics: Arc<OnceLock<PipelineMetrics>>,
) {
    // Snapshots waiting for the fsync covering their height.
    let mut queued_snapshots: Vec<ShardSnapshot> = Vec::new();
    'outer: loop {
        // Block for the first command, then greedily drain everything
        // already queued — that whole batch shares one fsync. This is
        // what batches appends across commit rounds: while the previous
        // fsync was in flight, several rounds' blocks piled up here.
        let first = match rx.recv() {
            Ok(cmd) => cmd,
            Err(_) => break 'outer, // handle dropped: final flush below
        };
        let mut appended_to: Option<u64> = None;
        let mut appended_blocks = 0u64;
        let mut barriers: Vec<crossbeam_channel::Sender<()>> = Vec::new();
        let mut batch = vec![first];
        while let Ok(cmd) = rx.try_recv() {
            batch.push(cmd);
        }
        // Gather window: with plain appends in hand and no barrier
        // demanding an immediate fsync, wait a little longer for more
        // appends — blocks from the next overlapped round arrive within
        // the window and ride the same covering fsync. A barrier command
        // (flush/reset/kill/load) ends the gather immediately.
        //
        // The gather is *demand-driven*: a registered durable-ack means
        // someone (a leader's outcome fan-out, a blocked client) is
        // waiting on the covering fsync, so the writer stops gathering
        // and syncs at once. On a follower — which appends every
        // decided block but never has a waiter — the window runs its
        // full course and several rounds' blocks coalesce into one
        // fsync; on the round leader the ack registered right after the
        // append cancels the window within a poll slice, keeping commit
        // latency flat. Waiters are polled (not signalled), so a
        // freshly registered ack is noticed within ~1ms.
        let is_barrier = |cmd: &Cmd| {
            matches!(
                cmd,
                Cmd::Flush(_) | Cmd::Reset(..) | Cmd::Kill | Cmd::LoadLatest(_)
            )
        };
        // Traced appends in this batch: their `wal.fsync` spans close
        // after the covering fsync below.
        let mut traced: Vec<(AppendTrace, u64)> = Vec::new();
        let has_waiters = || {
            !state
                .pending_acks
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty()
        };
        if !config.gather_window.is_zero()
            && batch.iter().any(|cmd| matches!(cmd, Cmd::Append(..)))
            && !batch.iter().any(is_barrier)
            && !has_waiters()
        {
            let gather_deadline = Instant::now() + config.gather_window;
            const POLL_SLICE: Duration = Duration::from_millis(1);
            'gather: loop {
                let now = Instant::now();
                if now >= gather_deadline || has_waiters() {
                    break;
                }
                if let Ok(cmd) = rx.recv_timeout((gather_deadline - now).min(POLL_SLICE)) {
                    let barrier = is_barrier(&cmd);
                    batch.push(cmd);
                    if barrier {
                        break 'gather;
                    }
                    while let Ok(extra) = rx.try_recv() {
                        let barrier = is_barrier(&extra);
                        batch.push(extra);
                        if barrier {
                            break 'gather;
                        }
                    }
                }
            }
        }
        for cmd in batch {
            match cmd {
                Cmd::Append(block, trace) => {
                    let height = block.height;
                    log.append_block(&block)
                        .expect("pipelined WAL append failed");
                    appended_to = Some(height);
                    appended_blocks += 1;
                    if let Some(trace) = trace {
                        traced.push((trace, height));
                    }
                }
                Cmd::Snapshot(snapshot) => queued_snapshots.push(*snapshot),
                Cmd::Mirror(origin, snapshot) => {
                    snapshots
                        .save_mirror(origin, &snapshot)
                        .expect("pipelined mirror save failed");
                }
                Cmd::Reset(snapshot, done) => {
                    // Checkpoint adoption: persist the checkpoint first
                    // (it vouches for everything below its height), then
                    // restart the log there. Queued pre-reset snapshots
                    // are superseded.
                    let height = snapshot.height;
                    snapshots
                        .save(&snapshot)
                        .expect("checkpoint-adoption snapshot save failed");
                    log.reset_to(height).expect("WAL reset failed");
                    queued_snapshots.retain(|s| s.height > height);
                    appended_to = None;
                    state.watermark.store(height, Ordering::Release);
                    barriers.push(done);
                }
                Cmd::LoadLatest(reply) => {
                    let _ = reply.send(snapshots.load_latest().ok().flatten());
                }
                Cmd::Flush(done) => barriers.push(done),
                Cmd::Kill => {
                    // Abandon un-fsynced state: leak the log so not even
                    // its buffered bytes reach the OS (Drop would flush
                    // them) — the on-disk prefix stays exactly as the
                    // last covering fsync left it.
                    std::mem::forget(log);
                    return;
                }
            }
        }
        // One fsync covers every block drained above.
        if let Some(m) = metrics.get() {
            let t0 = Instant::now();
            log.sync().expect("pipelined WAL fsync failed");
            m.fsync_ns.record_duration(t0.elapsed());
            if appended_blocks > 0 {
                m.batch_blocks.record(appended_blocks);
                m.queue_depth.add(-(appended_blocks as i64));
            }
            if let Some(sink) = &m.spans {
                for (trace, height) in traced.drain(..) {
                    sink.record(Span {
                        trace_id: trace.ctx.trace_id,
                        span_id: sink.next_id(),
                        parent: trace.ctx.parent_span,
                        name: "wal.fsync",
                        node: sink.tag(),
                        start_ns: trace.submitted_ns,
                        end_ns: now_ns(),
                        aux: height,
                    });
                }
            }
        } else {
            log.sync().expect("pipelined WAL fsync failed");
        }
        if let Some(height) = appended_to {
            state.watermark.store(height + 1, Ordering::Release);
        }
        state.release_acks();

        // Snapshots whose height the watermark now covers are safe to
        // save; then the WAL below them is dead weight.
        let watermark = state.watermark.load(Ordering::Acquire);
        let mut saved_up_to: Option<u64> = None;
        queued_snapshots.retain(|snapshot| {
            if snapshot.height <= watermark {
                snapshots
                    .save(snapshot)
                    .expect("pipelined snapshot save failed");
                saved_up_to = Some(saved_up_to.map_or(snapshot.height, |h| h.max(snapshot.height)));
                false
            } else {
                true
            }
        });
        if config.prune_wal {
            if let Some(height) = saved_up_to {
                log.prune_below(height).expect("pipelined WAL prune failed");
            }
        }
        for done in barriers {
            let _ = done.send(());
        }
    }
    // Graceful shutdown: everything submitted is already appended (the
    // drain above runs to completion before the loop re-polls), so one
    // final sync makes the full history durable.
    log.sync().expect("final WAL fsync failed");
    let watermark = log.block_count();
    state.watermark.store(watermark, Ordering::Release);
    state.release_acks();
    for snapshot in queued_snapshots.drain(..) {
        if snapshot.height <= watermark {
            snapshots
                .save(&snapshot)
                .expect("final snapshot save failed");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocklog::{MemoryBlockLog, WalBlockLog};
    use crate::snapshot::{FileSnapshotStore, MemorySnapshotStore};
    use crate::testutil::TempDir;
    use crate::wal::{SyncPolicy, WalConfig};
    use fides_ledger::block::{BlockBuilder, Decision};
    use fides_ledger::log::TamperProofLog;
    use std::sync::atomic::AtomicUsize;

    fn chain(n: u64) -> Vec<Block> {
        let mut log = TamperProofLog::new();
        for h in 0..n {
            let block = BlockBuilder::new(h, log.tip_hash())
                .decision(Decision::Commit)
                .build_unsigned();
            log.append(block).unwrap();
        }
        log.to_blocks()
    }

    fn pipelined_config() -> WalConfig {
        WalConfig {
            segment_bytes: 1 << 16,
            sync: SyncPolicy::Pipelined,
        }
    }

    #[test]
    fn blocks_become_durable_and_acks_fire_in_order() {
        let dir = TempDir::new("pipeline-order");
        let (log, existing) = WalBlockLog::open(dir.path(), pipelined_config()).unwrap();
        assert!(existing.is_empty());
        let pipeline = CommitPipeline::new(
            Box::new(log),
            Box::new(MemorySnapshotStore::new()),
            0,
            PipelineConfig::default(),
        );

        let order = Arc::new(Mutex::new(Vec::new()));
        let blocks = chain(20);
        // Register acks in scrambled order before submitting: they must
        // still fire in height order.
        for &h in &[5u64, 0, 12, 19, 3] {
            let order = Arc::clone(&order);
            pipeline.on_durable(h, Box::new(move || order.lock().unwrap().push(h)));
        }
        for block in &blocks {
            pipeline.submit_block(block);
        }
        assert!(pipeline.wait_durable(19, Duration::from_secs(5)));
        assert_eq!(pipeline.durable_height(), 20);
        drop(pipeline);
        assert_eq!(*order.lock().unwrap(), vec![0, 3, 5, 12, 19]);

        // Everything survives a reopen.
        let (_, replayed) = WalBlockLog::open(dir.path(), pipelined_config()).unwrap();
        assert_eq!(replayed, blocks);
    }

    #[test]
    fn ack_for_already_durable_height_runs_inline() {
        let pipeline = CommitPipeline::new(
            Box::new(MemoryBlockLog::new()),
            Box::new(MemorySnapshotStore::new()),
            0,
            PipelineConfig::default(),
        );
        let blocks = chain(3);
        for block in &blocks {
            pipeline.submit_block(block);
        }
        assert!(pipeline.wait_durable(2, Duration::from_secs(5)));
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        pipeline.on_durable(
            1,
            Box::new(move || {
                ran2.fetch_add(1, Ordering::SeqCst);
            }),
        );
        assert_eq!(
            ran.load(Ordering::SeqCst),
            1,
            "inline ack for durable height"
        );
    }

    #[test]
    fn graceful_drop_flushes_everything() {
        let dir = TempDir::new("pipeline-drop");
        let blocks = chain(7);
        {
            let (log, _) = WalBlockLog::open(dir.path(), pipelined_config()).unwrap();
            let pipeline = CommitPipeline::new(
                Box::new(log),
                Box::new(MemorySnapshotStore::new()),
                0,
                PipelineConfig::default(),
            );
            for block in &blocks {
                pipeline.submit_block(block);
            }
            // Drop without waiting: shutdown must drain and fsync.
        }
        let (_, replayed) = WalBlockLog::open(dir.path(), pipelined_config()).unwrap();
        assert_eq!(replayed, blocks);
    }

    #[test]
    fn flush_is_a_barrier() {
        let disk = MemoryBlockLog::new();
        let pipeline = CommitPipeline::new(
            Box::new(disk.handle()),
            Box::new(MemorySnapshotStore::new()),
            0,
            PipelineConfig::default(),
        );
        for block in &chain(5) {
            pipeline.submit_block(block);
        }
        pipeline.flush();
        assert_eq!(pipeline.durable_height(), 5);
        assert_eq!(disk.blocks().len(), 5);
    }

    #[test]
    fn kill_preserves_only_the_acked_prefix() {
        let dir = TempDir::new("pipeline-kill");
        let blocks = chain(30);
        let acked = Arc::new(AtomicU64::new(0));
        {
            let (log, _) = WalBlockLog::open(dir.path(), pipelined_config()).unwrap();
            let pipeline = CommitPipeline::new(
                Box::new(log),
                Box::new(MemorySnapshotStore::new()),
                0,
                PipelineConfig::default(),
            );
            for block in &blocks[..20] {
                pipeline.submit_block(block);
                let acked = Arc::clone(&acked);
                let h = block.height;
                pipeline.on_durable(
                    h,
                    Box::new(move || {
                        acked.fetch_max(h + 1, Ordering::SeqCst);
                    }),
                );
            }
            pipeline.flush();
            // These blocks are submitted but never covered by an fsync
            // before the kill — they may or may not survive; nothing
            // acked them.
            for block in &blocks[20..] {
                pipeline.submit_block(block);
            }
            pipeline.kill();
        }
        let acked = acked.load(Ordering::SeqCst);
        assert_eq!(acked, 20, "flush barrier acked exactly the prefix");
        let (_, replayed) = WalBlockLog::open(dir.path(), pipelined_config()).unwrap();
        assert!(
            replayed.len() as u64 >= acked,
            "acknowledged blocks survive the kill: {} < {acked}",
            replayed.len()
        );
        assert_eq!(replayed, blocks[..replayed.len()].to_vec());
    }

    #[test]
    fn reset_adopts_checkpoint_and_restarts_the_wal() {
        let dir = TempDir::new("pipeline-reset");
        let blocks = chain(12);
        let shard = fides_store::AuthenticatedShard::new(vec![(
            fides_store::Key::new("k"),
            fides_store::Value::from_i64(1),
        )]);
        {
            let (log, _) = WalBlockLog::open(dir.join("wal"), pipelined_config()).unwrap();
            let snapshots = FileSnapshotStore::open(dir.join("snapshots")).unwrap();
            let pipeline = CommitPipeline::new(
                Box::new(log),
                Box::new(snapshots),
                0,
                PipelineConfig::default(),
            );
            // A short prefix exists, then a checkpoint at height 8 is
            // adopted via state transfer and appends continue from there.
            for block in &blocks[..3] {
                pipeline.submit_block(block);
            }
            pipeline.flush();
            let snapshot =
                ShardSnapshot::capture(&shard, 8, blocks[7].hash(), fides_store::Timestamp::ZERO);
            pipeline.reset_to(snapshot);
            assert_eq!(pipeline.durable_height(), 8);
            for block in &blocks[8..] {
                pipeline.submit_block(block);
            }
            pipeline.submit_mirror(
                3,
                ShardSnapshot::capture(&shard, 2, blocks[1].hash(), fides_store::Timestamp::ZERO),
            );
            pipeline.flush();
            assert_eq!(pipeline.durable_height(), 12);
            assert_eq!(pipeline.load_latest_snapshot().unwrap().height, 8);
        }
        // Reopen: the WAL is a suffix starting at the adopted height,
        // bound to the saved checkpoint; the mirror survived too.
        let (_, replayed) = WalBlockLog::open(dir.join("wal"), pipelined_config()).unwrap();
        assert_eq!(replayed.first().unwrap().height, 8);
        assert_eq!(replayed.len(), 4);
        let snapshots = FileSnapshotStore::open(dir.join("snapshots")).unwrap();
        let latest = snapshots.load_latest().unwrap().unwrap();
        assert_eq!(latest.height, 8);
        let recovered =
            crate::recovery::recover_ledger(replayed, Some(latest), &[], false).unwrap();
        assert_eq!(recovered.log.next_height(), 12);
        assert_eq!(recovered.log.tip_hash(), blocks[11].hash());
        let mirrors = snapshots.load_mirrors().unwrap();
        assert_eq!(mirrors.len(), 1);
        assert_eq!(mirrors[0].0, 3);
    }

    #[test]
    fn gather_window_coalesces_appends_into_one_fsync() {
        let disk = MemoryBlockLog::new();
        let pipeline = CommitPipeline::new(
            Box::new(disk.handle()),
            Box::new(MemorySnapshotStore::new()),
            0,
            PipelineConfig {
                prune_wal: true,
                gather_window: Duration::from_millis(500),
            },
        );
        let metrics = PipelineMetrics::default();
        pipeline.set_metrics(metrics.clone());
        // Trickle blocks in slower than the writer drains but well
        // inside the gather window: without the window each would get
        // its own fsync; with it they share one.
        let blocks = chain(5);
        for block in &blocks {
            pipeline.submit_block(block);
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(pipeline.wait_durable(4, Duration::from_secs(10)));
        let batches = metrics.batch_blocks.snapshot();
        assert_eq!(batches.count, 1, "all appends gathered into one fsync");
        assert!(
            batches.mean() >= 5.0 - f64::EPSILON,
            "batch covered every block: mean {}",
            batches.mean()
        );
        assert_eq!(disk.blocks().len(), 5);
    }

    #[test]
    fn flush_barrier_cuts_the_gather_window_short() {
        let disk = MemoryBlockLog::new();
        let pipeline = CommitPipeline::new(
            Box::new(disk.handle()),
            Box::new(MemorySnapshotStore::new()),
            0,
            PipelineConfig {
                prune_wal: true,
                gather_window: Duration::from_secs(30),
            },
        );
        let t0 = Instant::now();
        for block in &chain(3) {
            pipeline.submit_block(block);
        }
        pipeline.flush();
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "flush must not wait out the gather window"
        );
        assert_eq!(pipeline.durable_height(), 3);
        assert_eq!(disk.blocks().len(), 3);
    }

    #[test]
    fn snapshot_saved_only_after_covering_fsync_then_pruned() {
        let dir = TempDir::new("pipeline-snap");
        let wal_dir = dir.join("wal");
        let blocks = chain(40);
        let (log, _) = WalBlockLog::open(
            &wal_dir,
            WalConfig {
                segment_bytes: 512, // force rotations so pruning can bite
                sync: SyncPolicy::Pipelined,
            },
        )
        .unwrap();
        let snapshots = MemorySnapshotStore::new();
        let snap_reader = snapshots.handle();
        let pipeline = CommitPipeline::new(
            Box::new(log),
            Box::new(snapshots),
            0,
            PipelineConfig {
                prune_wal: true,
                ..PipelineConfig::default()
            },
        );
        for block in &blocks[..32] {
            pipeline.submit_block(block);
        }
        // Snapshot at height 32 (tip hash of block 31).
        let shard = fides_store::AuthenticatedShard::new(vec![(
            fides_store::Key::new("k"),
            fides_store::Value::from_i64(1),
        )]);
        let snapshot =
            ShardSnapshot::capture(&shard, 32, blocks[31].hash(), fides_store::Timestamp::ZERO);
        pipeline.submit_snapshot(snapshot);
        for block in &blocks[32..] {
            pipeline.submit_block(block);
        }
        pipeline.flush();
        assert_eq!(snap_reader.load_latest().unwrap().unwrap().height, 32);
        drop(pipeline);

        // The WAL was pruned below 32 — and still recovers with the
        // snapshot via the suffix path.
        let (_, surviving) = WalBlockLog::open(&wal_dir, pipelined_config()).unwrap();
        assert!(surviving[0].height > 0, "prefix segments were pruned");
        assert!(surviving[0].height <= 32);
        let snapshot = snap_reader.load_latest().unwrap();
        let recovered = crate::recovery::recover_ledger(surviving, snapshot, &[], false).unwrap();
        assert_eq!(recovered.log.next_height(), 40);
        assert_eq!(recovered.log.tip_hash(), blocks[39].hash());
        assert_eq!(recovered.replay_from(), 32);
        assert_eq!(recovered.replay_blocks().len(), 8);
    }
}
