//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the
//! per-record checksum of the write-ahead log.
//!
//! CRC-32 detects the corruption the WAL actually faces — bit rot,
//! torn sectors, truncated writes — at a fraction of a hash's cost.
//! It is **not** tamper-evidence: cryptographic integrity of the log
//! contents comes from the hash chain and collective signatures that
//! recovery re-validates on top ([`crate::recovery`]).

/// The 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value from the CRC catalogue.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"fides wal record payload".to_vec();
        let reference = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at byte {i} bit {bit}");
            }
        }
    }
}
