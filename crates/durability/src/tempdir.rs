//! A minimal scratch-directory helper for tests, benchmarks and
//! examples (the build environment has no `tempfile` crate).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory under the system temp dir, removed on
/// drop (best effort).
///
/// # Example
///
/// ```
/// use fides_durability::testutil::TempDir;
///
/// let dir = TempDir::new("doc");
/// assert!(dir.path().exists());
/// ```
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `"<tmp>/fides-<prefix>-<pid>-<n>"`.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created.
    pub fn new(prefix: &str) -> TempDir {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("fides-{prefix}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path inside the directory.
    pub fn join(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes() {
        let path = {
            let dir = TempDir::new("unit");
            assert!(dir.path().is_dir());
            std::fs::write(dir.join("f"), b"x").unwrap();
            dir.path().to_path_buf()
        };
        assert!(!path.exists(), "removed on drop");
    }

    #[test]
    fn unique_names() {
        let a = TempDir::new("uniq");
        let b = TempDir::new("uniq");
        assert_ne!(a.path(), b.path());
    }
}
