//! The segmented append-only write-ahead log.
//!
//! A WAL directory holds a sequence of **segment** files named
//! `wal-<first-record>.seg`. Each segment starts with a fixed header
//! (magic, format version, index of its first record) followed by
//! length-prefixed, CRC-32-checksummed records:
//!
//! ```text
//! segment  := magic(8) version(u32) first_record(u64) record*
//! record   := len(u32) crc32(u32) payload(len bytes)
//! ```
//!
//! Appends are buffered and flushed with one `fsync` per [`sync`] call
//! (group commit): callers append a batch of records and pay the disk
//! round-trip once. When a segment grows past the configured size, the
//! writer seals it with a final `fsync` and rotates to a fresh segment,
//! so old segments are immutable and recovery reads them strictly
//! sequentially.
//!
//! On [`open`], every record of every segment is read back and
//! CRC-verified:
//!
//! * an **incomplete record at the end of the newest segment** — the
//!   signature of a crash mid-write (torn write) — is repaired by
//!   truncating the segment back to the last complete record;
//! * any other anomaly (a checksum mismatch anywhere, a short record in
//!   a sealed segment, a bad header) is **corruption**: open fails with
//!   a descriptive [`WalError`] naming the segment and offset, and the
//!   caller is expected to refuse startup.
//!
//! [`open`]: SegmentedWal::open
//! [`sync`]: SegmentedWal::sync

use core::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crc32::crc32;

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"FIDESWAL";
/// On-disk format version.
pub const WAL_VERSION: u32 = 1;
/// Bytes of segment header: magic + version + first-record index.
pub const SEGMENT_HEADER_BYTES: u64 = 8 + 4 + 8;
/// Bytes of record framing: length + CRC-32.
pub const RECORD_HEADER_BYTES: u64 = 4 + 4;

/// When appended records are forced to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Every [`SegmentedWal::append`] flushes and `fsync`s immediately.
    Always,
    /// Records accumulate until an explicit [`SegmentedWal::sync`] —
    /// the group-commit mode servers run in (one fsync per block).
    Batch,
    /// Asynchronous group commit: appends are batched **across rounds**
    /// by a dedicated writer thread (see
    /// [`CommitPipeline`](crate::pipeline::CommitPipeline)) and commits
    /// are acknowledged only after the covering fsync. At the WAL layer
    /// this behaves exactly like [`SyncPolicy::Batch`] — the asynchrony
    /// lives in the pipeline that owns the log.
    Pipelined,
    /// Flush to the OS but never `fsync` (tests and benchmarks only;
    /// a power failure may lose acknowledged records).
    NoFsync,
}

/// WAL tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct WalConfig {
    /// Rotate to a new segment once the current one exceeds this size.
    pub segment_bytes: u64,
    /// Durability of appends.
    pub sync: SyncPolicy,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_bytes: 8 * 1024 * 1024,
            sync: SyncPolicy::Batch,
        }
    }
}

/// Why the WAL could not be opened or written.
#[derive(Debug)]
pub enum WalError {
    /// An I/O failure (with the path it happened on).
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A segment file exists but its header is not a valid WAL header.
    BadHeader {
        /// The offending segment.
        segment: PathBuf,
        /// What was wrong.
        reason: &'static str,
    },
    /// A record failed its integrity check somewhere tail-truncation is
    /// not allowed to repair — the log was corrupted or tampered with.
    Corrupt {
        /// The offending segment.
        segment: PathBuf,
        /// Byte offset of the offending record within the segment.
        offset: u64,
        /// Zero-based index of the offending record within the WAL.
        record: u64,
        /// What failed.
        reason: &'static str,
    },
}

impl WalError {
    fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        WalError::Io {
            path: path.into(),
            source,
        }
    }
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io { path, source } => write!(f, "wal i/o on {}: {source}", path.display()),
            WalError::BadHeader { segment, reason } => {
                write!(
                    f,
                    "bad wal segment header in {}: {reason}",
                    segment.display()
                )
            }
            WalError::Corrupt {
                segment,
                offset,
                record,
                reason,
            } => write!(
                f,
                "corrupt wal record #{record} at {}+{offset}: {reason}",
                segment.display()
            ),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// What [`SegmentedWal::open`] found on disk.
#[derive(Debug)]
pub struct WalOpenReport {
    /// Every surviving record payload, in append order, starting at
    /// WAL-wide index [`WalOpenReport::first_record`].
    pub records: Vec<Vec<u8>>,
    /// WAL-wide index of `records[0]` — 0 for a never-pruned log,
    /// higher when segments below a snapshot were pruned away.
    pub first_record: u64,
    /// Number of segment files.
    pub segments: usize,
    /// `(first record index, path)` per segment, ascending — maps a
    /// record index back to the segment file holding it.
    pub segment_starts: Vec<(u64, PathBuf)>,
    /// Bytes discarded by torn-tail truncation (0 for a clean log).
    pub repaired_bytes: u64,
}

impl WalOpenReport {
    /// The segment file holding record `index`, if any.
    pub fn segment_of(&self, index: u64) -> Option<&Path> {
        self.segment_starts
            .iter()
            .rev()
            .find(|(first, _)| *first <= index)
            .map(|(_, path)| path.as_path())
    }
}

/// The segmented append-only write-ahead log (see module docs).
#[derive(Debug)]
pub struct SegmentedWal {
    dir: PathBuf,
    config: WalConfig,
    /// Writer over the active (newest) segment.
    writer: BufWriter<File>,
    /// Path of the active segment (for error reporting).
    active_path: PathBuf,
    /// Bytes written to the active segment, header included.
    active_len: u64,
    /// Index the next appended record will get.
    next_record: u64,
    /// `true` when buffered/unsynced records exist.
    dirty: bool,
}

fn segment_path(dir: &Path, first_record: u64) -> PathBuf {
    dir.join(format!("wal-{first_record:020}.seg"))
}

/// Lists segment files in ascending first-record order.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, WalError> {
    let mut segments = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| WalError::io(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| WalError::io(dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(number) = name
            .strip_prefix("wal-")
            .and_then(|n| n.strip_suffix(".seg"))
        {
            if let Ok(first) = number.parse::<u64>() {
                segments.push((first, entry.path()));
            }
        }
    }
    segments.sort_unstable_by_key(|(first, _)| *first);
    Ok(segments)
}

/// `fsync` a directory so a just-created/renamed file survives a crash.
fn sync_dir(dir: &Path) -> Result<(), WalError> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| WalError::io(dir, e))
}

/// The parse of one segment's bytes.
struct SegmentScan {
    records: Vec<Vec<u8>>,
    /// Offset one past the last complete, checksummed record.
    good_len: u64,
    /// `Some(reason, offset)` when the segment ends in an incomplete
    /// record (crash mid-write).
    torn: Option<(&'static str, u64)>,
}

/// Parses a segment, distinguishing torn tails from corruption.
///
/// `record_base` is the WAL-wide index of the segment's first record,
/// used for error reporting and header cross-checking.
fn scan_segment(path: &Path, bytes: &[u8], record_base: u64) -> Result<SegmentScan, WalError> {
    if bytes.len() < SEGMENT_HEADER_BYTES as usize {
        return Err(WalError::BadHeader {
            segment: path.to_path_buf(),
            reason: "file shorter than segment header",
        });
    }
    if &bytes[..8] != SEGMENT_MAGIC {
        return Err(WalError::BadHeader {
            segment: path.to_path_buf(),
            reason: "magic bytes missing",
        });
    }
    let version = u32::from_be_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != WAL_VERSION {
        return Err(WalError::BadHeader {
            segment: path.to_path_buf(),
            reason: "unsupported format version",
        });
    }
    let first_record = u64::from_be_bytes(bytes[12..20].try_into().expect("8 bytes"));
    if first_record != record_base {
        return Err(WalError::BadHeader {
            segment: path.to_path_buf(),
            reason: "first-record index disagrees with preceding segments",
        });
    }

    let mut records = Vec::new();
    let mut offset = SEGMENT_HEADER_BYTES as usize;
    let mut torn = None;
    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        if remaining < RECORD_HEADER_BYTES as usize {
            torn = Some(("incomplete record header", offset as u64));
            break;
        }
        let len =
            u32::from_be_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        let expected_crc =
            u32::from_be_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes"));
        let payload_start = offset + RECORD_HEADER_BYTES as usize;
        if bytes.len() - payload_start < len {
            torn = Some(("incomplete record payload", offset as u64));
            break;
        }
        let payload = &bytes[payload_start..payload_start + len];
        if crc32(payload) != expected_crc {
            return Err(WalError::Corrupt {
                segment: path.to_path_buf(),
                offset: offset as u64,
                record: record_base + records.len() as u64,
                reason: "crc-32 mismatch",
            });
        }
        records.push(payload.to_vec());
        offset = payload_start + len;
    }
    Ok(SegmentScan {
        records,
        good_len: torn.map_or(offset as u64, |(_, at)| at),
        torn,
    })
}

impl SegmentedWal {
    /// Opens (or creates) the WAL in `dir`, reading back every record.
    ///
    /// A torn tail in the **newest** segment is repaired by truncating
    /// the file to its last complete record; the repair is reported in
    /// [`WalOpenReport::repaired_bytes`]. The writer resumes appending
    /// after the last surviving record.
    ///
    /// # Errors
    ///
    /// [`WalError::Corrupt`] / [`WalError::BadHeader`] when any record
    /// outside the repairable tail fails its integrity checks — the
    /// caller must treat the log as tampered and refuse to start — and
    /// [`WalError::Io`] for filesystem failures.
    pub fn open(
        dir: impl Into<PathBuf>,
        config: WalConfig,
    ) -> Result<(Self, WalOpenReport), WalError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| WalError::io(&dir, e))?;
        let segments = list_segments(&dir)?;

        let mut records = Vec::new();
        let mut segment_starts = Vec::with_capacity(segments.len());
        let mut repaired_bytes = 0u64;
        // A pruned WAL legitimately starts above record 0; gaps between
        // segments are still corruption.
        let first_record = segments.first().map_or(0, |(first, _)| *first);
        let mut record_base = first_record;
        let mut active: Option<(PathBuf, u64)> = None;

        for (i, (first, path)) in segments.iter().enumerate() {
            segment_starts.push((*first, path.clone()));
            let mut bytes = Vec::new();
            File::open(path)
                .and_then(|mut f| f.read_to_end(&mut bytes))
                .map_err(|e| WalError::io(path, e))?;
            if *first != record_base {
                return Err(WalError::BadHeader {
                    segment: path.clone(),
                    reason: "segment numbering has a gap or overlap",
                });
            }
            let scan = scan_segment(path, &bytes, record_base)?;
            let is_last = i + 1 == segments.len();
            if let Some((_reason, at)) = scan.torn {
                if !is_last {
                    // Sealed segments were fsynced before rotation; an
                    // incomplete record there is not a crash artifact.
                    return Err(WalError::Corrupt {
                        segment: path.clone(),
                        offset: at,
                        record: record_base + scan.records.len() as u64,
                        reason: "incomplete record in sealed segment",
                    });
                }
                // Torn tail: truncate back to the last complete record.
                repaired_bytes = bytes.len() as u64 - scan.good_len;
                let file = OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(|e| WalError::io(path, e))?;
                file.set_len(scan.good_len)
                    .map_err(|e| WalError::io(path, e))?;
                file.sync_all().map_err(|e| WalError::io(path, e))?;
            }
            record_base += scan.records.len() as u64;
            records.extend(scan.records);
            if is_last {
                active = Some((path.clone(), scan.good_len));
            }
        }

        let (active_path, active_len) = match active {
            Some(existing) => existing,
            None => {
                // Fresh WAL: create the first segment.
                let path = segment_path(&dir, 0);
                let mut file = File::create(&path).map_err(|e| WalError::io(&path, e))?;
                write_segment_header(&mut file, 0).map_err(|e| WalError::io(&path, e))?;
                file.sync_all().map_err(|e| WalError::io(&path, e))?;
                sync_dir(&dir)?;
                (path, SEGMENT_HEADER_BYTES)
            }
        };

        let mut file = OpenOptions::new()
            .write(true)
            .open(&active_path)
            .map_err(|e| WalError::io(&active_path, e))?;
        file.seek(SeekFrom::Start(active_len))
            .map_err(|e| WalError::io(&active_path, e))?;

        let segments_found = segments.len().max(1);
        let wal = SegmentedWal {
            dir,
            config,
            writer: BufWriter::new(file),
            active_path,
            active_len,
            next_record: record_base,
            dirty: false,
        };
        if segment_starts.is_empty() {
            segment_starts.push((0, wal.active_path.clone()));
        }
        Ok((
            wal,
            WalOpenReport {
                records,
                first_record,
                segments: segments_found,
                segment_starts,
                repaired_bytes,
            },
        ))
    }

    /// Index the next appended record will get (= records written).
    pub fn next_record(&self) -> u64 {
        self.next_record
    }

    /// The WAL directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one record. With [`SyncPolicy::Always`] the record is
    /// durable on return; otherwise it becomes durable at the next
    /// [`SegmentedWal::sync`] (group commit).
    pub fn append(&mut self, payload: &[u8]) -> Result<(), WalError> {
        self.append_inner(payload, true)
    }

    /// Appends a batch of records and makes the whole batch durable
    /// with a single flush (one fsync under [`SyncPolicy::Batch`] /
    /// [`SyncPolicy::Always`]).
    pub fn append_batch<'a>(
        &mut self,
        payloads: impl IntoIterator<Item = &'a [u8]>,
    ) -> Result<(), WalError> {
        // Only the *per-record* eager sync is suppressed; a rotation
        // occurring mid-batch still seals the outgoing segment with its
        // fsync (open() relies on sealed segments being durable).
        payloads
            .into_iter()
            .try_for_each(|p| self.append_inner(p, false))?;
        match self.config.sync {
            SyncPolicy::NoFsync => self.flush(),
            _ => self.sync(),
        }
    }

    /// The shared append path; `eager_sync` gates the per-record
    /// [`SyncPolicy::Always`] fsync (suppressed inside a batch).
    fn append_inner(&mut self, payload: &[u8], eager_sync: bool) -> Result<(), WalError> {
        if self.active_len >= self.config.segment_bytes && self.active_len > SEGMENT_HEADER_BYTES {
            self.rotate()?;
        }
        let len = u32::try_from(payload.len()).expect("record longer than u32::MAX");
        let crc = crc32(payload);
        let path = self.active_path.clone();
        self.writer
            .write_all(&len.to_be_bytes())
            .and_then(|()| self.writer.write_all(&crc.to_be_bytes()))
            .and_then(|()| self.writer.write_all(payload))
            .map_err(|e| WalError::io(path, e))?;
        self.active_len += RECORD_HEADER_BYTES + payload.len() as u64;
        self.next_record += 1;
        self.dirty = true;
        if eager_sync && self.config.sync == SyncPolicy::Always {
            self.sync()?;
        }
        Ok(())
    }

    /// Flushes buffered records to the OS without `fsync`.
    fn flush(&mut self) -> Result<(), WalError> {
        let path = self.active_path.clone();
        self.writer.flush().map_err(|e| WalError::io(path, e))
    }

    /// Forces all appended records to stable storage — the group-commit
    /// point. A no-op when nothing is pending or under
    /// [`SyncPolicy::NoFsync`].
    pub fn sync(&mut self) -> Result<(), WalError> {
        if !self.dirty {
            return Ok(());
        }
        self.flush()?;
        if self.config.sync != SyncPolicy::NoFsync {
            let path = self.active_path.clone();
            self.writer
                .get_ref()
                .sync_data()
                .map_err(|e| WalError::io(path, e))?;
        }
        self.dirty = false;
        Ok(())
    }

    /// Removes sealed segments whose records all lie **strictly below**
    /// `record` — the bounded-disk half of checkpointing: once a shard
    /// snapshot covers a prefix of the log, the WAL bytes for that
    /// prefix are dead weight for recovery.
    ///
    /// The active segment is never pruned, so the WAL always remains
    /// openable. When an `archive` hook is given, each evicted segment
    /// is handed to it **before** the file leaves the WAL directory (an
    /// auditor can then still request pruned history; see
    /// [`DirArchive`]); without a hook the segment is deleted and the
    /// disk stays bounded.
    ///
    /// Returns the `(first record, path)` of every pruned segment.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] when a segment cannot be archived or removed;
    /// already-pruned segments stay pruned (the operation is
    /// re-runnable).
    pub fn prune_segments_below(
        &mut self,
        record: u64,
        mut archive: Option<&mut dyn SegmentArchive>,
    ) -> Result<Vec<(u64, PathBuf)>, WalError> {
        let segments = list_segments(&self.dir)?;
        let mut pruned = Vec::new();
        for pair in segments.windows(2) {
            let (first, path) = &pair[0];
            let (next_first, _) = &pair[1];
            // Records of this segment span [first, next_first); all of
            // them are below `record` iff next_first <= record. The
            // active (last) segment never appears as pair[0].
            if *next_first > record {
                break;
            }
            if let Some(hook) = archive.as_deref_mut() {
                hook.archive(*first, path)
                    .map_err(|e| WalError::io(path, e))?;
            }
            // The hook may have moved the file already (DirArchive).
            if path.exists() {
                fs::remove_file(path).map_err(|e| WalError::io(path, e))?;
            }
            pruned.push((*first, path.clone()));
        }
        if !pruned.is_empty() {
            sync_dir(&self.dir)?;
        }
        Ok(pruned)
    }

    /// Supersedes **everything** and restarts the WAL at record index
    /// `next_record` — the durable half of adopting a transferred
    /// checkpoint: the existing records belong to a history prefix the
    /// checkpoint replaces, and subsequent appends must carry record
    /// indices starting at the checkpoint height (the WAL invariant
    /// that a block's height is its record index). The caller persists
    /// the checkpoint itself **before** relying on the reset WAL, so a
    /// crash mid-adoption recovers either the old state or the new one,
    /// never a gap.
    ///
    /// The old segments are **not destroyed**: they are parked under
    /// `<dir>/superseded/` (invisible to [`SegmentedWal::open`], which
    /// only scans files in the WAL directory itself). A reset driven by
    /// a checkpoint whose trust later fails to confirm must not have
    /// erased genuinely co-signed durable history — an operator (or the
    /// auditor) can still recover the superseded records.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] when segments cannot be parked or the fresh
    /// segment cannot be created.
    pub fn reset_to(&mut self, next_record: u64) -> Result<(), WalError> {
        let parked = self.dir.join("superseded");
        fs::create_dir_all(&parked).map_err(|e| WalError::io(&parked, e))?;
        for (first, path) in list_segments(&self.dir)? {
            let name = path.file_name().expect("segment files have names");
            let mut target = parked.join(name);
            let mut attempt = 1u32;
            while target.exists() {
                // A later reset can supersede a segment with the same
                // first-record index; keep both copies.
                target = parked.join(format!("wal-{first:020}.seg.{attempt}"));
                attempt += 1;
            }
            fs::rename(&path, &target).map_err(|e| WalError::io(&path, e))?;
        }
        let path = segment_path(&self.dir, next_record);
        let mut file = File::create(&path).map_err(|e| WalError::io(&path, e))?;
        write_segment_header(&mut file, next_record).map_err(|e| WalError::io(&path, e))?;
        if self.config.sync != SyncPolicy::NoFsync {
            file.sync_all().map_err(|e| WalError::io(&path, e))?;
            sync_dir(&self.dir)?;
        }
        // Dropping the old writer may flush buffered bytes into the
        // now-unlinked segment; harmless.
        self.writer = BufWriter::new(file);
        self.active_path = path;
        self.active_len = SEGMENT_HEADER_BYTES;
        self.next_record = next_record;
        self.dirty = false;
        Ok(())
    }

    /// Seals the active segment and starts a new one.
    fn rotate(&mut self) -> Result<(), WalError> {
        // Seal: everything in the old segment becomes durable.
        self.flush()?;
        if self.config.sync != SyncPolicy::NoFsync {
            let path = self.active_path.clone();
            self.writer
                .get_ref()
                .sync_data()
                .map_err(|e| WalError::io(path, e))?;
        }
        self.dirty = false;

        let path = segment_path(&self.dir, self.next_record);
        let mut file = File::create(&path).map_err(|e| WalError::io(&path, e))?;
        write_segment_header(&mut file, self.next_record).map_err(|e| WalError::io(&path, e))?;
        if self.config.sync != SyncPolicy::NoFsync {
            file.sync_all().map_err(|e| WalError::io(&path, e))?;
            sync_dir(&self.dir)?;
        }
        self.writer = BufWriter::new(file);
        self.active_path = path;
        self.active_len = SEGMENT_HEADER_BYTES;
        Ok(())
    }
}

fn write_segment_header(file: &mut File, first_record: u64) -> std::io::Result<()> {
    file.write_all(SEGMENT_MAGIC)?;
    file.write_all(&WAL_VERSION.to_be_bytes())?;
    file.write_all(&first_record.to_be_bytes())
}

/// Reads a contiguous run of **sealed** segments — e.g. an archive
/// directory's contents — into a [`WalOpenReport`]. Unlike
/// [`SegmentedWal::open`] there is no repairable tail here: sealed
/// segments were fsynced before rotation, so an incomplete record
/// anywhere is corruption.
///
/// # Errors
///
/// [`WalError`] on I/O failure, a numbering gap, or any integrity
/// violation.
pub fn read_sealed_segments(segments: &[(u64, PathBuf)]) -> Result<WalOpenReport, WalError> {
    let first_record = segments.first().map_or(0, |(first, _)| *first);
    let mut record_base = first_record;
    let mut records = Vec::new();
    let mut segment_starts = Vec::with_capacity(segments.len());
    for (first, path) in segments {
        if *first != record_base {
            return Err(WalError::BadHeader {
                segment: path.clone(),
                reason: "segment numbering has a gap or overlap",
            });
        }
        segment_starts.push((*first, path.clone()));
        let mut bytes = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| WalError::io(path, e))?;
        let scan = scan_segment(path, &bytes, record_base)?;
        if let Some((_, at)) = scan.torn {
            return Err(WalError::Corrupt {
                segment: path.clone(),
                offset: at,
                record: record_base + scan.records.len() as u64,
                reason: "incomplete record in sealed segment",
            });
        }
        record_base += scan.records.len() as u64;
        records.extend(scan.records);
    }
    Ok(WalOpenReport {
        records,
        first_record,
        segments: segments.len(),
        segment_starts,
        repaired_bytes: 0,
    })
}

/// Receives sealed segments evicted by
/// [`SegmentedWal::prune_segments_below`] before they leave the WAL
/// directory — the hook through which an auditor can still obtain
/// pruned history.
pub trait SegmentArchive: Send {
    /// Takes custody of `segment` (whose first record is
    /// `first_record`). The implementation may move the file; if it is
    /// still present afterwards, the pruner deletes it.
    fn archive(&mut self, first_record: u64, segment: &Path) -> std::io::Result<()>;
}

/// A [`SegmentArchive`] that moves pruned segments into a directory,
/// preserving their names — recovery and audit tooling can read them
/// back with the same scanner that reads live segments (see
/// [`crate::blocklog::WalBlockLog::open_with_archive`]).
#[derive(Debug)]
pub struct DirArchive {
    dir: PathBuf,
}

impl DirArchive {
    /// Opens (creating if needed) the archive directory.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<DirArchive, WalError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| WalError::io(&dir, e))?;
        Ok(DirArchive { dir })
    }

    /// The archive directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Archived segments, ascending by first record — what an auditor
    /// requests when it needs history below the live WAL.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] when the directory cannot be listed.
    pub fn segments(&self) -> Result<Vec<(u64, PathBuf)>, WalError> {
        list_segments(&self.dir)
    }
}

impl SegmentArchive for DirArchive {
    fn archive(&mut self, _first_record: u64, segment: &Path) -> std::io::Result<()> {
        let name = segment.file_name().expect("segment files have names");
        let target = self.dir.join(name);
        // Same filesystem in practice; fall back to copy+delete across
        // devices.
        match fs::rename(segment, &target) {
            Ok(()) => {}
            Err(_) => {
                fs::copy(segment, &target)?;
                fs::remove_file(segment)?;
            }
        }
        File::open(&self.dir).and_then(|d| d.sync_all())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    fn tiny_config() -> WalConfig {
        WalConfig {
            segment_bytes: 256,
            sync: SyncPolicy::Batch,
        }
    }

    fn payloads(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("record-{i:04}-{}", "x".repeat(i % 40)).into_bytes())
            .collect()
    }

    #[test]
    fn roundtrip_across_reopen() {
        let dir = TempDir::new("wal-roundtrip");
        let data = payloads(50);
        {
            let (mut wal, report) = SegmentedWal::open(dir.path(), tiny_config()).unwrap();
            assert!(report.records.is_empty());
            for p in &data {
                wal.append(p).unwrap();
            }
            wal.sync().unwrap();
        }
        let (wal, report) = SegmentedWal::open(dir.path(), tiny_config()).unwrap();
        assert_eq!(report.records, data);
        assert_eq!(report.repaired_bytes, 0);
        assert!(report.segments > 1, "tiny segments must rotate");
        assert_eq!(wal.next_record(), 50);
    }

    #[test]
    fn append_resumes_after_reopen() {
        let dir = TempDir::new("wal-resume");
        let data = payloads(10);
        {
            let (mut wal, _) = SegmentedWal::open(dir.path(), tiny_config()).unwrap();
            for p in &data[..6] {
                wal.append(p).unwrap();
            }
            wal.sync().unwrap();
        }
        {
            let (mut wal, report) = SegmentedWal::open(dir.path(), tiny_config()).unwrap();
            assert_eq!(report.records.len(), 6);
            for p in &data[6..] {
                wal.append(p).unwrap();
            }
            wal.sync().unwrap();
        }
        let (_, report) = SegmentedWal::open(dir.path(), tiny_config()).unwrap();
        assert_eq!(report.records, data);
    }

    #[test]
    fn append_batch_groups_records() {
        let dir = TempDir::new("wal-batch");
        let data = payloads(20);
        let (mut wal, _) = SegmentedWal::open(dir.path(), tiny_config()).unwrap();
        wal.append_batch(data.iter().map(Vec::as_slice)).unwrap();
        drop(wal);
        let (_, report) = SegmentedWal::open(dir.path(), tiny_config()).unwrap();
        assert_eq!(report.records, data);
    }

    /// The newest segment's path, by name ordering.
    fn last_segment(dir: &Path) -> PathBuf {
        let mut segs = list_segments(dir).unwrap();
        segs.pop().unwrap().1
    }

    #[test]
    fn torn_tail_is_truncated() {
        let dir = TempDir::new("wal-torn");
        let data = payloads(8);
        {
            let (mut wal, _) = SegmentedWal::open(
                dir.path(),
                WalConfig {
                    segment_bytes: 1 << 20, // keep one segment
                    sync: SyncPolicy::Batch,
                },
            )
            .unwrap();
            for p in &data {
                wal.append(p).unwrap();
            }
            wal.sync().unwrap();
        }
        // Crash mid-write: chop bytes off the final record.
        let seg = last_segment(dir.path());
        let len = fs::metadata(&seg).unwrap().len();
        let file = OpenOptions::new().write(true).open(&seg).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);

        let (mut wal, report) = SegmentedWal::open(dir.path(), tiny_config()).unwrap();
        assert_eq!(report.records, data[..7].to_vec(), "last record dropped");
        assert!(report.repaired_bytes > 0);
        assert_eq!(wal.next_record(), 7);

        // The log keeps working after the repair.
        wal.append(&data[7]).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, report) = SegmentedWal::open(dir.path(), tiny_config()).unwrap();
        assert_eq!(report.records, data);
    }

    #[test]
    fn flipped_byte_is_corruption_not_torn_tail() {
        let dir = TempDir::new("wal-flip");
        let data = payloads(8);
        {
            let (mut wal, _) = SegmentedWal::open(dir.path(), tiny_config()).unwrap();
            for p in &data {
                wal.append(p).unwrap();
            }
            wal.sync().unwrap();
        }
        // Flip one payload byte in the *first* segment.
        let seg = list_segments(dir.path()).unwrap()[0].1.clone();
        let mut bytes = fs::read(&seg).unwrap();
        let target = SEGMENT_HEADER_BYTES as usize + RECORD_HEADER_BYTES as usize + 2;
        bytes[target] ^= 0x40;
        fs::write(&seg, &bytes).unwrap();

        let err = SegmentedWal::open(dir.path(), tiny_config()).unwrap_err();
        match err {
            WalError::Corrupt { record, reason, .. } => {
                assert_eq!(record, 0);
                assert_eq!(reason, "crc-32 mismatch");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn short_record_in_sealed_segment_is_corruption() {
        let dir = TempDir::new("wal-sealed");
        let data = payloads(30);
        {
            let (mut wal, _) = SegmentedWal::open(dir.path(), tiny_config()).unwrap();
            for p in &data {
                wal.append(p).unwrap();
            }
            wal.sync().unwrap();
        }
        let segs = list_segments(dir.path()).unwrap();
        assert!(segs.len() >= 2);
        // Truncate a sealed (non-final) segment mid-record.
        let sealed = segs[0].1.clone();
        let len = fs::metadata(&sealed).unwrap().len();
        let file = OpenOptions::new().write(true).open(&sealed).unwrap();
        file.set_len(len - 2).unwrap();
        drop(file);

        let err = SegmentedWal::open(dir.path(), tiny_config()).unwrap_err();
        assert!(
            matches!(err, WalError::Corrupt { reason, .. } if reason.contains("sealed")),
            "{err:?}"
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let dir = TempDir::new("wal-magic");
        {
            let (mut wal, _) = SegmentedWal::open(dir.path(), tiny_config()).unwrap();
            wal.append(b"x").unwrap();
            wal.sync().unwrap();
        }
        let seg = last_segment(dir.path());
        let mut bytes = fs::read(&seg).unwrap();
        bytes[0] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();
        assert!(matches!(
            SegmentedWal::open(dir.path(), tiny_config()),
            Err(WalError::BadHeader { .. })
        ));
    }

    #[test]
    fn missing_segment_detected() {
        let dir = TempDir::new("wal-gap");
        let data = payloads(30);
        {
            let (mut wal, _) = SegmentedWal::open(dir.path(), tiny_config()).unwrap();
            for p in &data {
                wal.append(p).unwrap();
            }
            wal.sync().unwrap();
        }
        let segs = list_segments(dir.path()).unwrap();
        assert!(segs.len() >= 3);
        fs::remove_file(&segs[1].1).unwrap();
        let err = SegmentedWal::open(dir.path(), tiny_config()).unwrap_err();
        assert!(
            matches!(err, WalError::BadHeader { reason, .. } if reason.contains("gap")),
            "{err:?}"
        );
    }

    #[test]
    fn empty_payloads_roundtrip() {
        let dir = TempDir::new("wal-empty");
        {
            let (mut wal, _) = SegmentedWal::open(dir.path(), tiny_config()).unwrap();
            wal.append(b"").unwrap();
            wal.append(b"x").unwrap();
            wal.append(b"").unwrap();
            wal.sync().unwrap();
        }
        let (_, report) = SegmentedWal::open(dir.path(), tiny_config()).unwrap();
        assert_eq!(
            report.records,
            vec![b"".to_vec(), b"x".to_vec(), b"".to_vec()]
        );
    }

    #[test]
    fn prune_below_removes_sealed_segments_and_reopens() {
        let dir = TempDir::new("wal-prune");
        let data = payloads(40);
        let (mut wal, _) = SegmentedWal::open(dir.path(), tiny_config()).unwrap();
        for p in &data {
            wal.append(p).unwrap();
        }
        wal.sync().unwrap();
        let before = list_segments(dir.path()).unwrap();
        assert!(before.len() >= 3, "tiny segments must rotate");

        // Prune everything below record 20: only segments wholly below
        // 20 go; the segment containing 20 stays.
        let pruned = wal.prune_segments_below(20, None).unwrap();
        assert!(!pruned.is_empty());
        let after = list_segments(dir.path()).unwrap();
        assert!(after.len() < before.len());
        assert!(after[0].0 <= 20, "record 20 still readable");
        drop(wal);

        // Reopen: the suffix survives, indexed from its true base.
        let (wal, report) = SegmentedWal::open(dir.path(), tiny_config()).unwrap();
        assert_eq!(report.first_record, after[0].0);
        assert_eq!(
            report.records,
            data[report.first_record as usize..].to_vec()
        );
        assert_eq!(wal.next_record(), 40);
    }

    #[test]
    fn prune_never_touches_active_segment() {
        let dir = TempDir::new("wal-prune-active");
        let (mut wal, _) = SegmentedWal::open(dir.path(), tiny_config()).unwrap();
        wal.append(b"only").unwrap();
        wal.sync().unwrap();
        assert!(wal.prune_segments_below(u64::MAX, None).unwrap().is_empty());
        assert_eq!(list_segments(dir.path()).unwrap().len(), 1);
    }

    #[test]
    fn prune_archives_segments_for_the_auditor() {
        let dir = TempDir::new("wal-prune-archive");
        let archive_dir = TempDir::new("wal-prune-archive-store");
        let data = payloads(40);
        let (mut wal, _) = SegmentedWal::open(dir.path(), tiny_config()).unwrap();
        for p in &data {
            wal.append(p).unwrap();
        }
        wal.sync().unwrap();
        let mut archive = DirArchive::open(archive_dir.path()).unwrap();
        let pruned = wal
            .prune_segments_below(u64::MAX, Some(&mut archive))
            .unwrap();
        assert!(pruned.len() >= 2);

        // The archived segments still scan cleanly: an auditor can read
        // the pruned history back record by record.
        let archived = archive.segments().unwrap();
        assert_eq!(archived.len(), pruned.len());
        let mut recovered = Vec::new();
        for (first, path) in &archived {
            let bytes = fs::read(path).unwrap();
            let scan = scan_segment(path, &bytes, *first).unwrap();
            assert!(scan.torn.is_none(), "sealed segments are complete");
            recovered.extend(scan.records);
        }
        assert_eq!(recovered, data[..recovered.len()].to_vec());
        // And the live WAL still opens over the suffix.
        drop(wal);
        let (_, report) = SegmentedWal::open(dir.path(), tiny_config()).unwrap();
        assert_eq!(
            report.records,
            data[report.first_record as usize..].to_vec()
        );
    }

    #[test]
    fn error_display_is_descriptive() {
        let err = WalError::Corrupt {
            segment: PathBuf::from("/tmp/wal-00.seg"),
            offset: 42,
            record: 7,
            reason: "crc-32 mismatch",
        };
        let msg = err.to_string();
        assert!(msg.contains("record #7"));
        assert!(msg.contains("crc-32 mismatch"));
    }
}
