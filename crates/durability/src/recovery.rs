//! Verified crash recovery: rebuild and re-authenticate a server's
//! ledger state from its WAL and newest snapshot.
//!
//! Persistence alone is not enough on untrusted infrastructure: the
//! bytes read back after a restart are exactly as untrusted as a log
//! surrendered to the auditor (paper §4.4). Recovery therefore treats
//! the WAL like an audit input:
//!
//! 1. the blocks are re-chained through
//!    [`TamperProofLog::from_blocks`], which re-checks every height and
//!    hash pointer (Lemma 6's structural half);
//! 2. the collective signatures of the whole chain are re-verified with
//!    the batched fast path ([`validate_chain`] →
//!    [`fides_crypto::cosi::verify_batch`]) — one
//!    random-linear-combination multi-scalar check for the entire log;
//! 3. the snapshot, if any, is bound to the verified chain: its height
//!    must lie inside the log and its recorded tip hash must equal the
//!    hash of the block at that height, and the restored shard must
//!    reproduce the snapshot's Merkle root.
//!
//! Any failure yields a descriptive [`RecoveryError`] and the server
//! **refuses to start** — a corrupted or tampered disk can lose
//! availability, never integrity.

use core::fmt;

use fides_crypto::schnorr::PublicKey;
use fides_ledger::block::Block;
use fides_ledger::log::{LogError, TamperProofLog};
use fides_ledger::validate::{validate_chain, ChainFault};

use crate::snapshot::{ShardSnapshot, SnapshotError};
use crate::wal::WalError;

/// Why recovery refused to bring the server up.
#[derive(Debug)]
pub enum RecoveryError {
    /// The WAL could not be read (I/O, corruption, torn non-tail).
    Wal(WalError),
    /// The snapshot could not be read or failed its integrity checks.
    Snapshot(SnapshotError),
    /// The WAL's blocks do not form a height-continuous hash chain.
    BrokenChain(LogError),
    /// The chain's collective signatures do not verify — the persisted
    /// log was tampered with (Lemma 6 applied at startup).
    Tampered(ChainFault),
    /// The snapshot claims a height beyond the recovered log.
    SnapshotAheadOfLog {
        /// The snapshot's height.
        snapshot: u64,
        /// The recovered log's length.
        log: u64,
    },
    /// The WAL starts above height 0 (its prefix was pruned) but no
    /// snapshot exists to vouch for the missing history.
    PrunedWithoutSnapshot {
        /// First height present in the WAL.
        first: u64,
    },
    /// The WAL starts above the newest snapshot's height — blocks in
    /// `[snapshot, first)` are gone from both the WAL and the snapshot.
    PrunedAboveSnapshot {
        /// The snapshot's height.
        snapshot: u64,
        /// First height present in the WAL.
        first: u64,
    },
    /// The snapshot's tip hash does not match the verified chain at its
    /// height — it checkpoints a different history.
    SnapshotUnlinked {
        /// The snapshot's height.
        height: u64,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Wal(e) => write!(f, "refusing startup: {e}"),
            RecoveryError::Snapshot(e) => write!(f, "refusing startup: {e}"),
            RecoveryError::BrokenChain(e) => {
                write!(f, "refusing startup: recovered log is not a chain: {e}")
            }
            RecoveryError::Tampered(fault) => {
                write!(
                    f,
                    "refusing startup: recovered log fails verification: {fault}"
                )
            }
            RecoveryError::SnapshotAheadOfLog { snapshot, log } => write!(
                f,
                "refusing startup: snapshot height {snapshot} exceeds recovered log length {log}"
            ),
            RecoveryError::SnapshotUnlinked { height } => write!(
                f,
                "refusing startup: snapshot at height {height} is not linked to the recovered chain"
            ),
            RecoveryError::PrunedWithoutSnapshot { first } => write!(
                f,
                "refusing startup: log starts at pruned height {first} but no snapshot covers \
                 the missing prefix"
            ),
            RecoveryError::PrunedAboveSnapshot { snapshot, first } => write!(
                f,
                "refusing startup: log starts at pruned height {first}, above the newest \
                 snapshot at height {snapshot} — blocks in between are unrecoverable"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Wal(e) => Some(e),
            RecoveryError::Snapshot(e) => Some(e),
            RecoveryError::BrokenChain(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WalError> for RecoveryError {
    fn from(e: WalError) -> Self {
        RecoveryError::Wal(e)
    }
}

impl From<SnapshotError> for RecoveryError {
    fn from(e: SnapshotError) -> Self {
        RecoveryError::Snapshot(e)
    }
}

/// The verified outcome of [`recover_ledger`].
#[derive(Debug)]
pub struct RecoveredLedger {
    /// The re-validated tamper-proof log.
    pub log: TamperProofLog,
    /// The verified snapshot, when one was found: the restored shard
    /// plus the metadata needed to replay the log suffix above
    /// [`ShardSnapshot::height`].
    pub snapshot: Option<ShardSnapshot>,
}

impl RecoveredLedger {
    /// Height above which log blocks still need replaying into the
    /// shard (0 when no snapshot was found).
    pub fn replay_from(&self) -> u64 {
        self.snapshot.as_ref().map_or(0, |s| s.height)
    }

    /// The blocks above [`RecoveredLedger::replay_from`], correctly
    /// offset for suffix logs (whose first block sits above height 0).
    pub fn replay_blocks(&self) -> &[Block] {
        let skip = self.replay_from().saturating_sub(self.log.base_height()) as usize;
        &self.log.blocks()[skip.min(self.log.len())..]
    }
}

/// Rebuilds and verifies a server's ledger from WAL blocks and an
/// optional snapshot (see module docs for the verification steps).
///
/// `verify_cosign` disables the collective-signature pass for
/// deployments whose blocks are unsigned (the trusted 2PC baseline);
/// the hash chain is always checked.
///
/// # Errors
///
/// A descriptive [`RecoveryError`]; callers must refuse to serve
/// traffic when recovery fails.
pub fn recover_ledger(
    blocks: Vec<Block>,
    snapshot: Option<ShardSnapshot>,
    witness_keys: &[PublicKey],
    verify_cosign: bool,
) -> Result<RecoveredLedger, RecoveryError> {
    let first = blocks.first().map_or(0, |b| b.height);
    let log = if first == 0 {
        TamperProofLog::from_blocks(blocks).map_err(RecoveryError::BrokenChain)?
    } else {
        // A WAL starting above height 0 had its prefix pruned below a
        // snapshot. The suffix is only trustworthy when a snapshot
        // vouches for the missing history: the chain is checked
        // internally here, then **pinned** to the snapshot's
        // checkpointed tip hash below. Tampering anywhere at or below
        // the snapshot height breaks the pin; the pruned blocks
        // themselves are vouched for by the (verified) snapshot image.
        let Some(snap) = snapshot.as_ref() else {
            return Err(RecoveryError::PrunedWithoutSnapshot { first });
        };
        if snap.height < first {
            return Err(RecoveryError::PrunedAboveSnapshot {
                snapshot: snap.height,
                first,
            });
        }
        let base_tip = blocks[0].prev_hash;
        TamperProofLog::from_suffix(first, base_tip, blocks).map_err(RecoveryError::BrokenChain)?
    };
    if verify_cosign {
        validate_chain(&log, witness_keys).map_err(RecoveryError::Tampered)?;
    }

    let snapshot = match snapshot {
        None => None,
        Some(snap) => {
            if snap.height > log.next_height() {
                return Err(RecoveryError::SnapshotAheadOfLog {
                    snapshot: snap.height,
                    log: log.next_height(),
                });
            }
            let expected_tip = if snap.height == log.base_height() {
                log.base_tip()
            } else {
                log.get(snap.height - 1)
                    .expect("base < height <= next_height checked above")
                    .hash()
            };
            if snap.tip_hash != expected_tip {
                return Err(RecoveryError::SnapshotUnlinked {
                    height: snap.height,
                });
            }
            // Cross-check payload against metadata before trusting it.
            snap.restore_verified().map_err(RecoveryError::Snapshot)?;
            Some(snap)
        }
    };

    Ok(RecoveredLedger { log, snapshot })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fides_crypto::cosi::{self, Witness};
    use fides_crypto::schnorr::KeyPair;
    use fides_crypto::Digest;
    use fides_ledger::block::{BlockBuilder, Decision};
    use fides_store::authenticated::AuthenticatedShard;
    use fides_store::types::{Key, Timestamp, Value};

    fn keys(n: u8) -> Vec<KeyPair> {
        (0..n).map(|i| KeyPair::from_seed(&[i, 0x55])).collect()
    }

    fn pks(keys: &[KeyPair]) -> Vec<PublicKey> {
        keys.iter().map(|k| k.public_key()).collect()
    }

    fn signed_chain(n: u64, keys: &[KeyPair]) -> Vec<Block> {
        let mut log = TamperProofLog::new();
        for h in 0..n {
            let unsigned = BlockBuilder::new(h, log.tip_hash())
                .decision(Decision::Commit)
                .build_unsigned();
            let record = unsigned.signing_bytes();
            let witnesses: Vec<Witness> = keys
                .iter()
                .map(|k| Witness::commit(k, &h.to_be_bytes(), &record))
                .collect();
            let agg = cosi::aggregate_commitments(witnesses.iter().map(|w| w.commitment()));
            let c = cosi::challenge(&agg, &record);
            let sig =
                cosi::CollectiveSignature::assemble(agg, witnesses.iter().map(|w| w.respond(&c)));
            log.append(Block {
                cosign: sig,
                ..unsigned
            })
            .unwrap();
        }
        log.to_blocks()
    }

    fn shard() -> AuthenticatedShard {
        AuthenticatedShard::new(vec![
            (Key::new("a"), Value::from_i64(1)),
            (Key::new("b"), Value::from_i64(2)),
        ])
    }

    #[test]
    fn honest_log_recovers() {
        let ks = keys(3);
        let blocks = signed_chain(5, &ks);
        let recovered = recover_ledger(blocks, None, &pks(&ks), true).unwrap();
        assert_eq!(recovered.log.len(), 5);
        assert_eq!(recovered.replay_from(), 0);
    }

    #[test]
    fn tampered_block_refused() {
        let ks = keys(3);
        let mut blocks = signed_chain(5, &ks);
        blocks[2].cosign = cosi::CollectiveSignature::placeholder();
        let err = recover_ledger(blocks, None, &pks(&ks), true).unwrap_err();
        assert!(matches!(err, RecoveryError::Tampered(f) if f.height == 2));
        assert!(err.to_string().contains("refusing startup"));
    }

    #[test]
    fn broken_chain_refused() {
        let ks = keys(3);
        let mut blocks = signed_chain(5, &ks);
        blocks.remove(1);
        assert!(matches!(
            recover_ledger(blocks, None, &pks(&ks), true),
            Err(RecoveryError::BrokenChain(_))
        ));
    }

    #[test]
    fn unsigned_blocks_recover_without_cosign_check() {
        let ks = keys(2);
        let mut log = TamperProofLog::new();
        for h in 0..3 {
            log.append(
                BlockBuilder::new(h, log.tip_hash())
                    .decision(Decision::Commit)
                    .build_unsigned(),
            )
            .unwrap();
        }
        // With verification on, placeholder signatures fail...
        assert!(matches!(
            recover_ledger(log.to_blocks(), None, &pks(&ks), true),
            Err(RecoveryError::Tampered(_))
        ));
        // ...with it off (the 2PC baseline), the chain still recovers.
        assert_eq!(
            recover_ledger(log.to_blocks(), None, &pks(&ks), false)
                .unwrap()
                .log
                .len(),
            3
        );
    }

    #[test]
    fn snapshot_binds_to_chain() {
        let ks = keys(3);
        let blocks = signed_chain(4, &ks);
        let tip_at_2 = blocks[1].hash();
        let snap = ShardSnapshot::capture(&shard(), 2, tip_at_2, Timestamp::new(5, 0));
        let recovered =
            recover_ledger(blocks.clone(), Some(snap.clone()), &pks(&ks), true).unwrap();
        assert_eq!(recovered.replay_from(), 2);

        // Unlinked tip hash → refused.
        let mut bad = snap.clone();
        bad.tip_hash = Digest::new([9; 32]);
        assert!(matches!(
            recover_ledger(blocks.clone(), Some(bad), &pks(&ks), true),
            Err(RecoveryError::SnapshotUnlinked { height: 2 })
        ));

        // Height beyond the log → refused.
        let mut ahead = snap.clone();
        ahead.height = 9;
        assert!(matches!(
            recover_ledger(blocks.clone(), Some(ahead), &pks(&ks), true),
            Err(RecoveryError::SnapshotAheadOfLog {
                snapshot: 9,
                log: 4
            })
        ));

        // Forged shard contents → root mismatch → refused.
        let mut forged = snap;
        forged.checkpoint.items[0].versions.last_mut().unwrap().1 = Value::from_i64(999);
        assert!(matches!(
            recover_ledger(blocks, Some(forged), &pks(&ks), true),
            Err(RecoveryError::Snapshot(SnapshotError::RootMismatch { .. }))
        ));
    }

    #[test]
    fn zero_height_snapshot_links_to_empty_prefix() {
        let ks = keys(2);
        let blocks = signed_chain(2, &ks);
        let snap = ShardSnapshot::capture(&shard(), 0, Digest::ZERO, Timestamp::ZERO);
        let recovered = recover_ledger(blocks, Some(snap), &pks(&ks), true).unwrap();
        assert_eq!(recovered.replay_from(), 0);
    }
}
