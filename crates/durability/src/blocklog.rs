//! [`DurableLog`]: the persistence interface servers write blocks
//! through, with a WAL-backed and an in-memory implementation.
//!
//! Every terminated block (commit *and* abort) is appended before the
//! server acts on it; [`DurableLog::sync`] is the group-commit point.
//! [`WalBlockLog`] frames each block as one CRC-checksummed record of a
//! [`SegmentedWal`]; [`MemoryBlockLog`] keeps the same sequence in
//! memory — the pre-durability behavior — and supports shared handles
//! so tests can simulate a crash (drop the server, keep the "disk").

use core::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use fides_crypto::encoding::{Decodable, Encodable};
use fides_ledger::block::Block;

use crate::wal::{DirArchive, SegmentArchive, SegmentedWal, WalConfig, WalError, WalOpenReport};

/// A durable, append-only sequence of log blocks.
pub trait DurableLog: Send + fmt::Debug {
    /// Appends one block. Durability is deferred to [`DurableLog::sync`]
    /// unless the backend syncs eagerly.
    fn append_block(&mut self, block: &Block) -> Result<(), WalError>;

    /// Forces every appended block to stable storage (group commit).
    fn sync(&mut self) -> Result<(), WalError>;

    /// Number of blocks appended over the log's lifetime.
    fn block_count(&self) -> u64;

    /// Releases storage for blocks **strictly below** `height` — called
    /// once a shard snapshot covers that prefix, so the log's disk
    /// footprint stays bounded. Backends that cannot (or need not)
    /// prune simply keep everything; pruned blocks go through the
    /// backend's archive hook when one is configured.
    ///
    /// Returns how many storage units (segments, blocks) were evicted.
    ///
    /// # Errors
    ///
    /// Backend-specific I/O failures.
    fn prune_below(&mut self, height: u64) -> Result<usize, WalError> {
        let _ = height;
        Ok(0)
    }

    /// Discards every stored block and restarts the log at `height` —
    /// the durable half of adopting a transferred checkpoint during
    /// anti-entropy repair. The caller persists the checkpoint (which
    /// vouches for everything below `height`) before appending through
    /// the reset log.
    ///
    /// # Errors
    ///
    /// Backend-specific I/O failures.
    fn reset_to(&mut self, height: u64) -> Result<(), WalError>;

    /// Blocks this backend parked in its archive when pruning (the
    /// [`crate::wal::SegmentArchive`] hook) — what a repair peer serves
    /// when a lagging server asks for history below the live log.
    /// `None` when the backend keeps no archive.
    ///
    /// # Errors
    ///
    /// [`WalError`] when the archived segments fail their integrity
    /// checks — archived history is as untrusted as any other disk
    /// bytes.
    fn read_archived(&self) -> Result<Option<Vec<Block>>, WalError> {
        Ok(None)
    }
}

/// A [`DurableLog`] persisting blocks to a [`SegmentedWal`].
///
/// One record = one block, appended in height order, so a block's
/// height **is** its WAL-wide record index — pruning below a height
/// maps directly onto [`SegmentedWal::prune_segments_below`].
#[derive(Debug)]
pub struct WalBlockLog {
    wal: SegmentedWal,
    /// Receives pruned segments (None = delete on prune).
    archive: Option<DirArchive>,
}

/// Decodes every record of a WAL scan into blocks, attributing a bad
/// record to its segment.
fn decode_records(report: &WalOpenReport, dir: &Path) -> Result<Vec<Block>, WalError> {
    let mut blocks = Vec::with_capacity(report.records.len());
    for (i, record) in report.records.iter().enumerate() {
        let index = report.first_record + i as u64;
        match Block::decode(record) {
            Ok(block) => blocks.push(block),
            Err(_) => {
                let segment = report
                    .segment_of(index)
                    .map_or_else(|| dir.to_path_buf(), Path::to_path_buf);
                return Err(WalError::Corrupt {
                    segment,
                    offset: 0,
                    record: index,
                    reason: "record is not a valid block encoding",
                });
            }
        }
    }
    Ok(blocks)
}

impl WalBlockLog {
    /// Opens the WAL in `dir` and decodes every surviving record as a
    /// [`Block`], in append order. For a pruned WAL the returned blocks
    /// start at the first surviving height (`blocks[0].height > 0`);
    /// recovery then binds them to a snapshot covering the gap.
    ///
    /// Torn tails are repaired by the underlying WAL
    /// ([`SegmentedWal::open`]); a record that decodes to garbage is
    /// corruption.
    ///
    /// # Errors
    ///
    /// Any [`WalError`] from the WAL itself, or [`WalError::Corrupt`]
    /// when a record is not a valid block encoding.
    pub fn open(
        dir: impl Into<PathBuf>,
        config: WalConfig,
    ) -> Result<(WalBlockLog, Vec<Block>), WalError> {
        let dir = dir.into();
        let (wal, report): (SegmentedWal, WalOpenReport) = SegmentedWal::open(&dir, config)?;
        let blocks = decode_records(&report, &dir)?;
        Ok((WalBlockLog { wal, archive: None }, blocks))
    }

    /// [`WalBlockLog::open`], additionally reading **archived** segments
    /// so the returned blocks cover the full history even after pruning:
    /// records below the live WAL's first segment are loaded from
    /// `archive_dir` (where [`DirArchive`] parked them), then the live
    /// suffix follows. Future prunes archive into the same directory.
    ///
    /// This is the auditor-friendly configuration: the WAL directory
    /// stays bounded while the complete chain remains requestable.
    ///
    /// # Errors
    ///
    /// Any [`WalError`]; a gap between the archived records and the live
    /// WAL's first record is corruption (someone deleted archived
    /// history).
    pub fn open_with_archive(
        dir: impl Into<PathBuf>,
        archive_dir: impl Into<PathBuf>,
        config: WalConfig,
    ) -> Result<(WalBlockLog, Vec<Block>), WalError> {
        let dir = dir.into();
        let archive = DirArchive::open(archive_dir)?;
        let (wal, report): (SegmentedWal, WalOpenReport) = SegmentedWal::open(&dir, config)?;

        let mut blocks = Vec::new();
        if report.first_record > 0 {
            let archived = crate::wal::read_sealed_segments(&archive.segments()?)?;
            if archived.first_record != 0
                || archived.first_record + archived.records.len() as u64 != report.first_record
            {
                return Err(WalError::BadHeader {
                    segment: archive.dir().to_path_buf(),
                    reason: "archived segments do not cover the pruned prefix",
                });
            }
            blocks = decode_records(&archived, archive.dir())?;
        }
        blocks.extend(decode_records(&report, &dir)?);
        Ok((
            WalBlockLog {
                wal,
                archive: Some(archive),
            },
            blocks,
        ))
    }

    /// The underlying WAL (for inspection in tests/benchmarks).
    pub fn wal(&self) -> &SegmentedWal {
        &self.wal
    }

    /// The archive receiving pruned segments, if configured.
    pub fn archive(&self) -> Option<&DirArchive> {
        self.archive.as_ref()
    }
}

impl DurableLog for WalBlockLog {
    fn append_block(&mut self, block: &Block) -> Result<(), WalError> {
        self.wal.append(&block.encode())
    }

    fn sync(&mut self) -> Result<(), WalError> {
        self.wal.sync()
    }

    fn block_count(&self) -> u64 {
        self.wal.next_record()
    }

    fn prune_below(&mut self, height: u64) -> Result<usize, WalError> {
        let hook = self.archive.as_mut().map(|a| a as &mut dyn SegmentArchive);
        Ok(self.wal.prune_segments_below(height, hook)?.len())
    }

    fn reset_to(&mut self, height: u64) -> Result<(), WalError> {
        self.wal.reset_to(height)
    }

    fn read_archived(&self) -> Result<Option<Vec<Block>>, WalError> {
        let Some(archive) = &self.archive else {
            return Ok(None);
        };
        let segments = archive.segments()?;
        if segments.is_empty() {
            return Ok(None);
        }
        let report = crate::wal::read_sealed_segments(&segments)?;
        decode_records(&report, archive.dir()).map(Some)
    }
}

/// The shared "disk" behind [`MemoryBlockLog`] handles: the retained
/// blocks plus the monotone append watermark (`next_height` survives
/// pruning, like a WAL's record numbering does).
#[derive(Debug, Default)]
struct MemoryLogState {
    blocks: Vec<Block>,
    next_height: u64,
}

type SharedBlocks = Arc<Mutex<MemoryLogState>>;

/// An in-memory [`DurableLog`] — the original no-persistence behavior.
///
/// Handles created with [`MemoryBlockLog::handle`] share one block
/// sequence, so a test can drop a server ("crash"), then reopen the
/// same handle and replay — exercising the recovery machinery without
/// a filesystem.
#[derive(Debug, Default)]
pub struct MemoryBlockLog {
    blocks: SharedBlocks,
}

impl MemoryBlockLog {
    /// A fresh, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// A handle sharing this log's storage.
    pub fn handle(&self) -> MemoryBlockLog {
        MemoryBlockLog {
            blocks: Arc::clone(&self.blocks),
        }
    }

    /// All retained blocks (the "reopen" path for tests).
    pub fn blocks(&self) -> Vec<Block> {
        self.blocks.lock().expect("memory log lock").blocks.clone()
    }
}

impl DurableLog for MemoryBlockLog {
    fn append_block(&mut self, block: &Block) -> Result<(), WalError> {
        let mut state = self.blocks.lock().expect("memory log lock");
        state.next_height = state.next_height.max(block.height + 1);
        state.blocks.push(block.clone());
        Ok(())
    }

    fn sync(&mut self) -> Result<(), WalError> {
        Ok(())
    }

    fn block_count(&self) -> u64 {
        self.blocks.lock().expect("memory log lock").next_height
    }

    fn prune_below(&mut self, height: u64) -> Result<usize, WalError> {
        let mut state = self.blocks.lock().expect("memory log lock");
        let before = state.blocks.len();
        state.blocks.retain(|b| b.height >= height);
        Ok(before - state.blocks.len())
    }

    fn reset_to(&mut self, height: u64) -> Result<(), WalError> {
        let mut state = self.blocks.lock().expect("memory log lock");
        state.blocks.clear();
        state.next_height = height;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;
    use crate::wal::SyncPolicy;
    use fides_ledger::block::{BlockBuilder, Decision};
    use fides_ledger::log::TamperProofLog;

    fn chain(n: u64) -> Vec<Block> {
        let mut log = TamperProofLog::new();
        for h in 0..n {
            let block = BlockBuilder::new(h, log.tip_hash())
                .decision(Decision::Commit)
                .build_unsigned();
            log.append(block).unwrap();
        }
        log.to_blocks()
    }

    #[test]
    fn wal_block_log_roundtrip() {
        let dir = TempDir::new("blocklog");
        let blocks = chain(10);
        let config = WalConfig {
            segment_bytes: 512,
            sync: SyncPolicy::Batch,
        };
        {
            let (mut log, existing) = WalBlockLog::open(dir.path(), config).unwrap();
            assert!(existing.is_empty());
            for b in &blocks {
                log.append_block(b).unwrap();
            }
            log.sync().unwrap();
            assert_eq!(log.block_count(), 10);
        }
        let (_, replayed) = WalBlockLog::open(dir.path(), config).unwrap();
        assert_eq!(replayed, blocks);
    }

    #[test]
    fn reset_to_restarts_record_numbering() {
        let dir = TempDir::new("blocklog-reset");
        let blocks = chain(8);
        let config = WalConfig {
            segment_bytes: 256,
            sync: SyncPolicy::Batch,
        };
        {
            let (mut log, _) = WalBlockLog::open(dir.path(), config).unwrap();
            for b in &blocks[..5] {
                log.append_block(b).unwrap();
            }
            log.sync().unwrap();
            // Adopt a checkpoint at height 6: everything below is now
            // vouched for elsewhere; the WAL restarts there.
            log.reset_to(6).unwrap();
            assert_eq!(log.block_count(), 6);
            for b in &blocks[6..] {
                log.append_block(b).unwrap();
            }
            log.sync().unwrap();
        }
        let (log, replayed) = WalBlockLog::open(dir.path(), config).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].height, 6);
        assert_eq!(log.block_count(), 8);

        // The superseded pre-reset records were parked, not destroyed.
        let parked = dir.join("superseded");
        assert!(
            std::fs::read_dir(&parked).unwrap().count() > 0,
            "superseded segments are preserved for forensics"
        );
    }

    #[test]
    fn archived_blocks_read_back_for_repair() {
        let dir = TempDir::new("blocklog-archive-read");
        let blocks = chain(40);
        let config = WalConfig {
            segment_bytes: 512,
            sync: SyncPolicy::Batch,
        };
        let (mut log, _) =
            WalBlockLog::open_with_archive(dir.join("wal"), dir.join("archive"), config).unwrap();
        for b in &blocks {
            log.append_block(b).unwrap();
        }
        log.sync().unwrap();
        assert!(log.prune_below(30).unwrap() > 0, "segments were pruned");
        let archived = log.read_archived().unwrap().expect("archive has blocks");
        assert_eq!(archived[0].height, 0, "archive starts at genesis");
        assert_eq!(archived, blocks[..archived.len()].to_vec());
        assert!(
            archived.len() >= 20,
            "a meaningful prefix was archived: {}",
            archived.len()
        );

        // A log without an archive reports none.
        let (plain, _) = WalBlockLog::open(dir.join("wal2"), config).unwrap();
        assert!(plain.read_archived().unwrap().is_none());
    }

    #[test]
    fn memory_block_log_survives_drop_via_handle() {
        let disk = MemoryBlockLog::new();
        let blocks = chain(3);
        {
            let mut log = disk.handle();
            for b in &blocks {
                log.append_block(b).unwrap();
            }
            log.sync().unwrap();
        } // server crashes
        assert_eq!(disk.blocks(), blocks);
        assert_eq!(disk.block_count(), 3);
    }
}
