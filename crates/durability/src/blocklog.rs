//! [`DurableLog`]: the persistence interface servers write blocks
//! through, with a WAL-backed and an in-memory implementation.
//!
//! Every terminated block (commit *and* abort) is appended before the
//! server acts on it; [`DurableLog::sync`] is the group-commit point.
//! [`WalBlockLog`] frames each block as one CRC-checksummed record of a
//! [`SegmentedWal`]; [`MemoryBlockLog`] keeps the same sequence in
//! memory — the pre-durability behavior — and supports shared handles
//! so tests can simulate a crash (drop the server, keep the "disk").

use core::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use fides_crypto::encoding::{Decodable, Encodable};
use fides_ledger::block::Block;

use crate::wal::{SegmentedWal, WalConfig, WalError, WalOpenReport};

/// A durable, append-only sequence of log blocks.
pub trait DurableLog: Send + fmt::Debug {
    /// Appends one block. Durability is deferred to [`DurableLog::sync`]
    /// unless the backend syncs eagerly.
    fn append_block(&mut self, block: &Block) -> Result<(), WalError>;

    /// Forces every appended block to stable storage (group commit).
    fn sync(&mut self) -> Result<(), WalError>;

    /// Number of blocks appended over the log's lifetime.
    fn block_count(&self) -> u64;
}

/// A [`DurableLog`] persisting blocks to a [`SegmentedWal`].
#[derive(Debug)]
pub struct WalBlockLog {
    wal: SegmentedWal,
}

impl WalBlockLog {
    /// Opens the WAL in `dir` and decodes every surviving record as a
    /// [`Block`], in append order.
    ///
    /// Torn tails are repaired by the underlying WAL
    /// ([`SegmentedWal::open`]); a record that decodes to garbage is
    /// corruption.
    ///
    /// # Errors
    ///
    /// Any [`WalError`] from the WAL itself, or [`WalError::Corrupt`]
    /// when a record is not a valid block encoding.
    pub fn open(
        dir: impl Into<PathBuf>,
        config: WalConfig,
    ) -> Result<(WalBlockLog, Vec<Block>), WalError> {
        let dir = dir.into();
        let (wal, report): (SegmentedWal, WalOpenReport) = SegmentedWal::open(&dir, config)?;
        let mut blocks = Vec::with_capacity(report.records.len());
        for (i, record) in report.records.iter().enumerate() {
            match Block::decode(record) {
                Ok(block) => blocks.push(block),
                Err(_) => {
                    let segment = report.segment_of(i as u64).map_or(dir, Path::to_path_buf);
                    return Err(WalError::Corrupt {
                        segment,
                        offset: 0,
                        record: i as u64,
                        reason: "record is not a valid block encoding",
                    });
                }
            }
        }
        Ok((WalBlockLog { wal }, blocks))
    }

    /// The underlying WAL (for inspection in tests/benchmarks).
    pub fn wal(&self) -> &SegmentedWal {
        &self.wal
    }
}

impl DurableLog for WalBlockLog {
    fn append_block(&mut self, block: &Block) -> Result<(), WalError> {
        self.wal.append(&block.encode())
    }

    fn sync(&mut self) -> Result<(), WalError> {
        self.wal.sync()
    }

    fn block_count(&self) -> u64 {
        self.wal.next_record()
    }
}

/// The shared "disk" behind [`MemoryBlockLog`] handles.
type SharedBlocks = Arc<Mutex<Vec<Block>>>;

/// An in-memory [`DurableLog`] — the original no-persistence behavior.
///
/// Handles created with [`MemoryBlockLog::handle`] share one block
/// sequence, so a test can drop a server ("crash"), then reopen the
/// same handle and replay — exercising the recovery machinery without
/// a filesystem.
#[derive(Debug, Default)]
pub struct MemoryBlockLog {
    blocks: SharedBlocks,
}

impl MemoryBlockLog {
    /// A fresh, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// A handle sharing this log's storage.
    pub fn handle(&self) -> MemoryBlockLog {
        MemoryBlockLog {
            blocks: Arc::clone(&self.blocks),
        }
    }

    /// All blocks appended so far (the "reopen" path for tests).
    pub fn blocks(&self) -> Vec<Block> {
        self.blocks.lock().expect("memory log lock").clone()
    }
}

impl DurableLog for MemoryBlockLog {
    fn append_block(&mut self, block: &Block) -> Result<(), WalError> {
        self.blocks
            .lock()
            .expect("memory log lock")
            .push(block.clone());
        Ok(())
    }

    fn sync(&mut self) -> Result<(), WalError> {
        Ok(())
    }

    fn block_count(&self) -> u64 {
        self.blocks.lock().expect("memory log lock").len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;
    use crate::wal::SyncPolicy;
    use fides_ledger::block::{BlockBuilder, Decision};
    use fides_ledger::log::TamperProofLog;

    fn chain(n: u64) -> Vec<Block> {
        let mut log = TamperProofLog::new();
        for h in 0..n {
            let block = BlockBuilder::new(h, log.tip_hash())
                .decision(Decision::Commit)
                .build_unsigned();
            log.append(block).unwrap();
        }
        log.to_blocks()
    }

    #[test]
    fn wal_block_log_roundtrip() {
        let dir = TempDir::new("blocklog");
        let blocks = chain(10);
        let config = WalConfig {
            segment_bytes: 512,
            sync: SyncPolicy::Batch,
        };
        {
            let (mut log, existing) = WalBlockLog::open(dir.path(), config).unwrap();
            assert!(existing.is_empty());
            for b in &blocks {
                log.append_block(b).unwrap();
            }
            log.sync().unwrap();
            assert_eq!(log.block_count(), 10);
        }
        let (_, replayed) = WalBlockLog::open(dir.path(), config).unwrap();
        assert_eq!(replayed, blocks);
    }

    #[test]
    fn memory_block_log_survives_drop_via_handle() {
        let disk = MemoryBlockLog::new();
        let blocks = chain(3);
        {
            let mut log = disk.handle();
            for b in &blocks {
                log.append_block(b).unwrap();
            }
            log.sync().unwrap();
        } // server crashes
        assert_eq!(disk.blocks(), blocks);
        assert_eq!(disk.block_count(), 3);
    }
}
