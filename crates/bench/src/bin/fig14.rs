//! Figure 14: varying the number of servers (100 txns per block,
//! 10 000 items per shard).
//!
//! Paper claims: throughput +47% and latency −33% from 3 to 9 servers;
//! the per-server MHT update time falls as the 500 operations per
//! block spread across more shards.
//!
//! ```text
//! cargo run --release -p fides-bench --bin fig14
//! ```

use fides_bench::{print_header, run_averaged, ExperimentParams};

fn main() {
    print_header(
        "Figure 14: number of servers (100 txns per block)",
        "throughput +47%, latency -33%, MHT update time falls, 3 -> 9 servers",
        "servers  throughput(tps)  latency(ms)  mht-update(ms/server/block)",
    );
    let mut first: Option<(f64, f64)> = None;
    let mut last: Option<(f64, f64)> = None;
    for n in 3..=9u32 {
        let mut params = ExperimentParams::paper_base(n);
        params.batch_size = 100;
        let r = run_averaged(&params);
        println!(
            "{n:>7}  {:>15.1}  {:>11.3}  {:>27.4}",
            r.throughput_tps, r.commit_latency_ms, r.mht_update_ms
        );
        if first.is_none() {
            first = Some((r.throughput_tps, r.commit_latency_ms));
        }
        last = Some((r.throughput_tps, r.commit_latency_ms));
    }
    let (tps0, lat0) = first.expect("ran");
    let (tps1, lat1) = last.expect("ran");
    println!(
        "\n3 → 9 servers: throughput {:+.0}% (paper: +47%), latency {:+.0}% (paper: -33%)",
        (tps1 / tps0 - 1.0) * 100.0,
        (lat1 / lat0 - 1.0) * 100.0
    );
}
