//! Closed-loop multi-client throughput driver — the perf-trajectory
//! harness behind `BENCH_PR3.json`.
//!
//! Each client thread runs read-modify-write transactions back to back
//! (closed loop) against a cluster with durability on, for a fixed wall
//! duration, recording per-transaction latency. The driver reports
//! committed txns/s plus p50/p99 latency, optionally as one JSON object
//! for machine consumption, and can gate CI against a checked-in
//! baseline (`--check-baseline`).
//!
//! ```text
//! throughput --servers 4 --clients 8 --duration 5 --batch 100 \
//!            --policy pipelined --json
//! ```

use std::time::{Duration, Instant};

use fides_core::client::{finalize_outcomes, PendingCommit, ReadStats, UnverifiedOutcome};
use fides_core::messages::CommitProtocol;
use fides_core::recovery::PersistenceConfig;
use fides_core::system::{ClusterConfig, FidesCluster};
use fides_core::{Behavior, ReadConsistency};
use fides_durability::{SyncPolicy, WalConfig};
use fides_telemetry::trace::{assemble, to_chrome_json};
use fides_telemetry::{log_error, log_info, Histogram, MetricsSnapshot, Span, Stage, Stall};
use fides_workload::{KeyChooser, WorkloadConfig, WorkloadGenerator};

#[derive(Clone, Debug)]
struct Args {
    servers: u32,
    clients: u32,
    duration: Duration,
    batch: usize,
    items_per_shard: usize,
    policy: Policy,
    json: bool,
    label: String,
    zipf: Option<f64>,
    snapshot_interval: u64,
    dir: Option<String>,
    check_baseline: Option<String>,
    /// Transactions each client keeps in flight (1 = classic closed
    /// loop; >1 = a pipelined client using `commit_async` +
    /// batch-verified outcomes).
    inflight: usize,
    /// Coordinator batch-formation window.
    flush: Duration,
    /// Fault injection: after this many seconds, kill a non-coordinator
    /// server (`kill -9` semantics: durability torn, thread gone),
    /// restart it over its surviving disk, and measure the repair
    /// plane's rejoin latency plus post-rejoin throughput.
    kill_restart: Option<Duration>,
    /// Percentage of transactions that are read-only (served by the
    /// verified read plane, or forced through commit rounds with
    /// `--reads-via-commit`).
    read_pct: u32,
    /// Consistency policy for verified reads.
    consistency: ReadConsistency,
    /// Baseline mode: run read-only transactions as commit-round
    /// transactions (begin → read_all → commit) instead of verified
    /// snapshot reads — what the read plane is measured against.
    reads_via_commit: bool,
    /// Pin the process-wide thread pool to this many workers (sets
    /// `FIDES_POOL_THREADS` before the pool initializes).
    workers: Option<u32>,
    /// Multicore scaling rig: run the same workload once per worker
    /// count (each in a fresh child process, since the pool width is
    /// fixed at first use) and emit a combined txns/s-vs-cores JSON
    /// with the primitive microbenches.
    sweep_workers: Option<Vec<u32>>,
    /// Write the sweep JSON here (e.g. `BENCH_PR6.json`) instead of
    /// stdout only.
    out: Option<String>,
    /// Rotate commit leadership by block height (`height % n`) and
    /// overlap consecutive rounds across leaders.
    rotate: bool,
    /// Pipelined WAL writer gather window: how long the writer keeps
    /// collecting appends past its greedy drain before the covering
    /// fsync (raises `fsync_batch_mean` under overlapped rounds).
    gather: Duration,
    /// Trace 1-in-N committed transactions (sets `FIDES_TRACE_SAMPLE`
    /// before any client starts; 0 = off). Defaults to the environment.
    trace_sample: Option<u64>,
    /// Write the N slowest committed-txn traces here as Chrome
    /// trace-event JSON, plus every retained span at `FILE.all`.
    trace_out: Option<String>,
    /// Write the merged cluster metrics here in Prometheus text format.
    prom_out: Option<String>,
    /// Tracing-cost rig: re-run the workload with tracing off, 1/64,
    /// and 1/1 (child process per point), measure watchdog detection
    /// latency on a stalled leader, and emit one combined JSON document
    /// (`BENCH_PR10.json` shape).
    trace_sweep: bool,
}

fn consistency_str(c: ReadConsistency) -> String {
    match c {
        ReadConsistency::Fresh => "fresh".into(),
        ReadConsistency::BoundedStaleness(k) => format!("bounded:{k}"),
        ReadConsistency::AtHeight(h) => format!("at:{h}"),
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Policy {
    /// No persistence at all (the pre-durability engine).
    None,
    /// Inline group commit: one fsync per block on the commit path.
    Batch,
    /// Asynchronous group commit: appends batched across rounds on a
    /// dedicated writer thread, acks after the covering fsync.
    Pipelined,
    /// Persistence without fsync (lower bound; not crash-safe).
    NoFsync,
}

impl Policy {
    fn as_str(self) -> &'static str {
        match self {
            Policy::None => "none",
            Policy::Batch => "batch",
            Policy::Pipelined => "pipelined",
            Policy::NoFsync => "nofsync",
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: throughput [--servers N] [--clients N] [--duration SECS] [--batch N]\n\
         \x20                 [--items N] [--policy none|batch|pipelined|nofsync]\n\
         \x20                 [--zipf THETA] [--snapshot-interval N] [--dir PATH]\n\
         \x20                 [--inflight D] [--kill-restart SECS] [--label NAME] [--json]\n\
         \x20                 [--read-pct P] [--consistency fresh|bounded:K|at:H]\n\
         \x20                 [--reads-via-commit] [--check-baseline FILE]\n\
         \x20                 [--workers N] [--sweep-workers N,N,...] [--out FILE]\n\
         \x20                 [--rotate] [--gather-ms MS]\n\
         \x20                 [--trace-sample N] [--trace-out FILE] [--prom-out FILE]\n\
         \x20                 [--trace-sweep]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        servers: 4,
        clients: 8,
        duration: Duration::from_secs(5),
        batch: 100,
        items_per_shard: 10_000,
        policy: Policy::Pipelined,
        json: false,
        label: String::new(),
        zipf: None,
        snapshot_interval: 0,
        dir: None,
        check_baseline: None,
        inflight: 8,
        flush: Duration::from_millis(10),
        kill_restart: None,
        read_pct: 0,
        consistency: ReadConsistency::BoundedStaleness(64),
        reads_via_commit: false,
        workers: None,
        sweep_workers: None,
        out: None,
        rotate: false,
        gather: Duration::ZERO,
        trace_sample: None,
        trace_out: None,
        prom_out: None,
        trace_sweep: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = |it: &mut dyn Iterator<Item = String>| match it.next() {
            Some(v) => v,
            None => usage(),
        };
        match flag.as_str() {
            "--servers" => args.servers = value(&mut it).parse().unwrap_or_else(|_| usage()),
            "--clients" => args.clients = value(&mut it).parse().unwrap_or_else(|_| usage()),
            "--duration" => {
                args.duration =
                    Duration::from_secs_f64(value(&mut it).parse().unwrap_or_else(|_| usage()))
            }
            "--batch" => args.batch = value(&mut it).parse().unwrap_or_else(|_| usage()),
            "--items" => args.items_per_shard = value(&mut it).parse().unwrap_or_else(|_| usage()),
            "--policy" => {
                args.policy = match value(&mut it).as_str() {
                    "none" => Policy::None,
                    "batch" => Policy::Batch,
                    "pipelined" => Policy::Pipelined,
                    "nofsync" => Policy::NoFsync,
                    _ => usage(),
                }
            }
            "--zipf" => args.zipf = Some(value(&mut it).parse().unwrap_or_else(|_| usage())),
            "--snapshot-interval" => {
                args.snapshot_interval = value(&mut it).parse().unwrap_or_else(|_| usage())
            }
            "--dir" => args.dir = Some(value(&mut it)),
            "--flush" => {
                args.flush =
                    Duration::from_millis(value(&mut it).parse().unwrap_or_else(|_| usage()))
            }
            "--inflight" => {
                args.inflight = value(&mut it)
                    .parse::<usize>()
                    .unwrap_or_else(|_| usage())
                    .max(1)
            }
            "--kill-restart" => {
                args.kill_restart = Some(Duration::from_secs_f64(
                    value(&mut it).parse().unwrap_or_else(|_| usage()),
                ))
            }
            "--read-pct" => {
                args.read_pct = value(&mut it)
                    .parse::<u32>()
                    .unwrap_or_else(|_| usage())
                    .min(100)
            }
            "--consistency" => {
                let v = value(&mut it);
                args.consistency = if v == "fresh" {
                    ReadConsistency::Fresh
                } else if let Some(k) = v.strip_prefix("bounded:") {
                    ReadConsistency::BoundedStaleness(k.parse().unwrap_or_else(|_| usage()))
                } else if let Some(h) = v.strip_prefix("at:") {
                    ReadConsistency::AtHeight(h.parse().unwrap_or_else(|_| usage()))
                } else {
                    usage()
                };
            }
            "--reads-via-commit" => args.reads_via_commit = true,
            "--workers" => {
                args.workers = Some(
                    value(&mut it)
                        .parse::<u32>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--sweep-workers" => {
                let list: Option<Vec<u32>> = value(&mut it)
                    .split(',')
                    .map(|s| s.trim().parse::<u32>().ok().filter(|&n| n >= 1))
                    .collect();
                args.sweep_workers = Some(match list {
                    Some(l) if !l.is_empty() => l,
                    _ => usage(),
                });
            }
            "--rotate" => args.rotate = true,
            "--gather-ms" => {
                let ms: f64 = value(&mut it).parse().unwrap_or_else(|_| usage());
                args.gather = Duration::from_secs_f64(ms.max(0.0) / 1e3);
            }
            "--trace-sample" => {
                args.trace_sample = Some(value(&mut it).parse().unwrap_or_else(|_| usage()))
            }
            "--trace-out" => args.trace_out = Some(value(&mut it)),
            "--prom-out" => args.prom_out = Some(value(&mut it)),
            "--trace-sweep" => args.trace_sweep = true,
            "--out" => args.out = Some(value(&mut it)),
            "--label" => args.label = value(&mut it),
            "--json" => args.json = true,
            "--check-baseline" => args.check_baseline = Some(value(&mut it)),
            _ => usage(),
        }
    }
    args
}

#[derive(Debug)]
struct RunResult {
    committed: usize,
    aborted: usize,
    elapsed: Duration,
    /// All completed transactions (write commits + read-only) per
    /// second — identical to the old definition when `--read-pct 0`.
    txns_per_sec: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    blocks: usize,
    rounds: u64,
    /// Mean coordinator round time (the in-protocol cost per block).
    round_ms: f64,
    /// Fault-injection results (`--kill-restart`): the killed server
    /// and how long the repair plane took to rejoin it (restart →
    /// repaired-at-tip), plus the throughput measured after rejoin.
    repair: Option<RepairResult>,
    /// Read-plane results (`--read-pct > 0`).
    reads: Option<ReadResult>,
    /// Cluster-wide metrics snapshot (every server merged), captured
    /// after settle and before shutdown — the source of the per-stage
    /// latency breakdown and durability numbers in the JSON.
    metrics: MetricsSnapshot,
    /// Every retained fides-trace span, server sinks + client sinks
    /// (empty unless `FIDES_TRACE_SAMPLE` was set).
    spans: Vec<Span>,
}

#[derive(Debug)]
struct ReadResult {
    /// Read-only transactions completed.
    completed: usize,
    /// Read-only transactions that failed (refused/timed out/refuted).
    failed: usize,
    /// Server-side refusals observed by the clients (a subset of
    /// `failed` unless retries succeeded).
    refused: u64,
    read_txns_per_sec: f64,
    read_p50_ms: f64,
    /// Client-side proof verification cost, µs per key (0 in
    /// `--reads-via-commit` mode, where no proofs exist).
    verify_us_per_key: f64,
    /// Client root-registry header cache hits/misses.
    registry_hits: u64,
    registry_misses: u64,
    /// Observed staleness histogram entries (heights behind tip →
    /// count), at telemetry-histogram bucket resolution.
    staleness: Vec<(u64, u64)>,
}

/// One client thread's tallies.
#[derive(Default)]
struct ClientOut {
    committed: usize,
    aborted: usize,
    /// Client-observed commit latency in nanoseconds.
    latency: Histogram,
    reads: usize,
    read_failed: usize,
    read_latencies_ms: Vec<f64>,
    read_stats: ReadStats,
    /// The client's retained trace spans (empty when sampling is off).
    spans: Vec<Span>,
}

#[derive(Debug)]
struct RepairResult {
    victim: u32,
    /// restart → verified rejoin at the fleet tip.
    repair_ms: f64,
    /// Committed txns/s over the post-rejoin window.
    post_rejoin_txns_per_sec: f64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let rank = (p * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

fn run(args: &Args) -> RunResult {
    let mut config = ClusterConfig::new(args.servers)
        .items_per_shard(args.items_per_shard)
        .batch_size(args.batch)
        .protocol(CommitProtocol::TfCommit)
        .rotate_leaders(args.rotate)
        .max_clients(args.clients)
        .flush_interval(args.flush);
    if args.kill_restart.is_some() {
        if args.policy == Policy::None {
            log_error!(
                "bench",
                "--kill-restart requires a persistent --policy (the victim restarts from disk)"
            );
            std::process::exit(2);
        }
        // While the victim is dead every round stalls on its missing
        // vote; a short phase timeout keeps the dead window readable
        // instead of multiplying it by 5 s per round.
        config = config.round_timeout(Duration::from_millis(300));
    }

    // Durability: a scratch directory per run unless --dir pins one.
    let scratch;
    if args.policy != Policy::None {
        let dir = match &args.dir {
            Some(d) => std::path::PathBuf::from(d),
            None => {
                scratch = fides_durability::testutil::TempDir::new("throughput");
                scratch.path().to_path_buf()
            }
        };
        let sync = match args.policy {
            Policy::Batch => SyncPolicy::Batch,
            Policy::Pipelined => SyncPolicy::Pipelined,
            Policy::NoFsync => SyncPolicy::NoFsync,
            Policy::None => unreachable!(),
        };
        config = config.persistence(
            PersistenceConfig::files(dir)
                .wal(WalConfig {
                    sync,
                    ..WalConfig::default()
                })
                .snapshot_interval(args.snapshot_interval)
                .gather_window(args.gather),
        );
    }

    let mut cluster = FidesCluster::start(config);
    let deadline = Instant::now() + args.duration;
    let start = Instant::now();

    let mut handles = Vec::new();
    for c in 0..args.clients {
        let mut client = cluster.client(c);
        if args.kill_restart.is_some() {
            // Reads sent to the dead server must fail fast so the
            // closed loop keeps probing and recovers promptly at
            // rejoin, instead of sleeping through 10 s timeouts.
            client.set_op_timeout(Duration::from_millis(500));
        }
        let workload = WorkloadConfig::paper_default(args.servers, args.items_per_shard)
            .seed(0x5EED_0000 + c as u64);
        let workload = match args.zipf {
            Some(theta) => workload.chooser(KeyChooser::Zipfian { theta }),
            None => workload,
        };
        let mut generator = WorkloadGenerator::new(workload, FidesCluster::key_name);
        let depth = args.inflight;
        let server_pks = cluster.server_pks().to_vec();
        let protocol = cluster.config().protocol;
        let read_pct = args.read_pct as u64;
        let consistency = args.consistency;
        let reads_via_commit = args.reads_via_commit;
        handles.push(std::thread::spawn(move || {
            let mut out = ClientOut::default();
            // Deterministic per-client coin for the read/write mix.
            let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ ((c as u64) << 17);
            let mut roll_read = move || {
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (rng >> 33) % 100 < read_pct
            };
            // One read-only transaction: the verified read plane, or
            // the same read set forced through a commit round (the
            // baseline the plane is measured against).
            let run_read = |client: &mut fides_core::ClientSession,
                            keys: &[fides_store::Key],
                            out: &mut ClientOut| {
                let t0 = Instant::now();
                let ok = if reads_via_commit {
                    let mut txn = client.begin();
                    client.read_all(&mut txn, keys).is_ok()
                        && client.commit(txn).map(|o| o.committed()).unwrap_or(false)
                } else {
                    client.read_only(keys, consistency).is_ok()
                };
                if ok {
                    out.reads += 1;
                    out.read_latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                } else {
                    out.read_failed += 1;
                }
            };
            if depth == 1 {
                // Classic closed loop: one transaction at a time,
                // outcome verified synchronously (batched exec phase).
                while Instant::now() < deadline {
                    let spec = generator.next_txn();
                    if roll_read() {
                        run_read(&mut client, &spec.keys, &mut out);
                        continue;
                    }
                    let t0 = Instant::now();
                    match client.run_rmw_batched(&spec.keys, 1) {
                        Ok(outcome) if outcome.committed() => {
                            out.committed += 1;
                            out.latency.record_duration(t0.elapsed());
                        }
                        _ => out.aborted += 1,
                    }
                }
                out.read_stats = client.take_read_stats();
                out.spans = client.spans();
                return out;
            }
            // Pipelined client: keep `depth` commits in flight; verify
            // outcome signatures in batches (`finalize_outcomes`).
            // Read-only transactions run synchronously between fills —
            // they occupy no commit slot (they enter no round).
            let mut pending: Vec<PendingCommit> = Vec::new();
            let mut started: Vec<(fides_core::messages::TxnHandle, Instant)> = Vec::new();
            let mut unverified: Vec<UnverifiedOutcome> = Vec::new();
            let mut submitted = 0usize;
            loop {
                let now = Instant::now();
                let accepting = now < deadline;
                if !accepting && pending.is_empty() {
                    break;
                }
                // Fill the window with fresh transactions. Reads and
                // writes go out as one batch each (burst-verified
                // responses) instead of `ops` sequential round trips.
                while accepting && pending.len() < depth {
                    let spec = generator.next_txn();
                    if roll_read() {
                        run_read(&mut client, &spec.keys, &mut out);
                        continue;
                    }
                    let t0 = Instant::now();
                    let mut txn = client.begin();
                    let Ok(values) = client.read_all(&mut txn, &spec.keys) else {
                        out.aborted += 1;
                        continue;
                    };
                    let writes: Vec<(fides_store::Key, fides_store::Value)> = spec
                        .keys
                        .iter()
                        .zip(values)
                        .map(|(key, value)| {
                            let next =
                                fides_store::Value::from_i64(value.as_i64().unwrap_or(0) + 1);
                            (key.clone(), next)
                        })
                        .collect();
                    if client.write_all(&mut txn, &writes).is_err() {
                        out.aborted += 1;
                        continue;
                    }
                    let commit = client.commit_async(txn);
                    started.push((commit.handle, t0));
                    pending.push(commit);
                    submitted += 1;
                }
                // Service in-flight commits briefly, then refill.
                let drain_until = Instant::now() + Duration::from_millis(2);
                let drain_until = if accepting {
                    drain_until
                } else {
                    // Past the deadline: give stragglers a real grace
                    // period, then stop.
                    Instant::now() + Duration::from_millis(500)
                };
                let resolved = client.drain_outcomes(&mut pending, drain_until);
                if !accepting && resolved.is_empty() {
                    break;
                }
                for outcome in &resolved {
                    if let Some(at) = started.iter().position(|(h, _)| *h == outcome.handle) {
                        let (_, t0) = started.swap_remove(at);
                        out.latency.record_duration(t0.elapsed());
                    }
                }
                unverified.extend(resolved);
            }
            let outcomes = finalize_outcomes(unverified, &server_pks, protocol);
            out.committed += outcomes.iter().filter(|o| o.committed()).count();
            out.aborted += submitted - outcomes.len().min(submitted)
                + outcomes.iter().filter(|o| !o.committed()).count();
            out.read_stats = client.take_read_stats();
            out.spans = client.spans();
            out
        }));
    }

    // Fault injection: kill a non-coordinator mid-run, restart it, and
    // time the repair plane's verified rejoin while the clients keep
    // hammering the cluster.
    let mut repair_marker: Option<(u32, f64, Instant, u64)> = None;
    if let Some(kill_after) = args.kill_restart {
        let victim = args.servers - 1;
        let kill_at = start + kill_after;
        let now = Instant::now();
        if kill_at > now {
            std::thread::sleep(kill_at - now);
        }
        cluster.crash_server(victim);
        // A beat of downtime so the kill is observable as a dip.
        std::thread::sleep(Duration::from_millis(200));
        let restart_at = Instant::now();
        cluster.restart_server(victim).expect("victim restart");
        let rejoined = cluster.await_rejoin(victim, Duration::from_secs(30));
        assert!(rejoined, "victim failed to rejoin within 30 s");
        let repair_ms = restart_at.elapsed().as_secs_f64() * 1e3;
        let committed_at_rejoin = cluster.round_stats().committed_txns;
        repair_marker = Some((victim, repair_ms, Instant::now(), committed_at_rejoin));
    }

    let mut committed = 0usize;
    let mut aborted = 0usize;
    let latency = Histogram::new();
    let mut reads = 0usize;
    let mut read_failed = 0usize;
    let mut read_latencies_ms: Vec<f64> = Vec::new();
    let mut read_stats = ReadStats::default();
    let mut spans: Vec<Span> = Vec::new();
    for h in handles {
        let out = h.join().expect("client thread");
        committed += out.committed;
        aborted += out.aborted;
        latency.merge(&out.latency);
        reads += out.reads;
        read_failed += out.read_failed;
        read_latencies_ms.extend(out.read_latencies_ms);
        read_stats.merge(&out.read_stats);
        spans.extend(out.spans);
    }
    let elapsed = start.elapsed();
    // Snapshot the commit counter *before* the flush/settle drain so
    // the post-rejoin rate's numerator and denominator cover the same
    // interval (client start → client join).
    let rounds_at_join = cluster.round_stats();
    cluster.flush();
    let blocks = cluster.settle(Duration::from_secs(10)).unwrap_or(0);
    let rounds = cluster.round_stats();
    let repair = repair_marker.map(|(victim, repair_ms, rejoined_at, committed_at_rejoin)| {
        let window = elapsed
            .saturating_sub(rejoined_at.duration_since(start))
            .as_secs_f64()
            .max(1e-6);
        let post = rounds_at_join
            .committed_txns
            .saturating_sub(committed_at_rejoin);
        RepairResult {
            victim,
            repair_ms,
            post_rejoin_txns_per_sec: post as f64 / window,
        }
    });
    // Server-side metrics must be read before shutdown tears the
    // states down; taken after settle so stage counts are final.
    let metrics = cluster.metrics();
    spans.extend(cluster.dump_traces());
    cluster.shutdown();

    read_latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let lat = latency.snapshot();
    let read_result = (args.read_pct > 0).then(|| ReadResult {
        completed: reads,
        failed: read_failed,
        refused: read_stats.refusals,
        read_txns_per_sec: reads as f64 / elapsed.as_secs_f64(),
        read_p50_ms: percentile(&read_latencies_ms, 0.50),
        verify_us_per_key: if read_stats.keys_read > 0 {
            read_stats.verify_nanos() as f64 / 1e3 / read_stats.keys_read as f64
        } else {
            0.0
        },
        registry_hits: read_stats.registry.hits,
        registry_misses: read_stats.registry.misses,
        staleness: read_stats.staleness.snapshot().entries(),
    });
    RunResult {
        committed,
        aborted,
        elapsed,
        txns_per_sec: (committed + reads) as f64 / elapsed.as_secs_f64(),
        p50_ms: lat.percentile(50.0) as f64 / 1e6,
        p95_ms: lat.percentile(95.0) as f64 / 1e6,
        p99_ms: lat.percentile(99.0) as f64 / 1e6,
        blocks,
        rounds: rounds.rounds,
        round_ms: if rounds.rounds > 0 {
            rounds.round_nanos as f64 / 1e6 / rounds.rounds as f64
        } else {
            f64::NAN
        },
        repair,
        reads: read_result,
        metrics,
        spans,
    }
}

/// The per-stage latency breakdown as a JSON object: for each commit
/// stage, sample count, p50/p99 in µs and total time spent in ms,
/// summed across every server (coordinator + cohorts).
fn stages_json(m: &MetricsSnapshot) -> String {
    let per_stage: Vec<String> = Stage::ALL
        .iter()
        .map(|s| {
            let h = m.histogram(s.metric_name());
            format!(
                "    \"{}\": {{\"samples\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
                 \"total_ms\": {:.3}}}",
                s.name(),
                h.count,
                h.percentile(50.0) as f64 / 1e3,
                h.percentile(99.0) as f64 / 1e3,
                h.sum as f64 / 1e6,
            )
        })
        .collect();
    format!("{{\n{}\n  }}", per_stage.join(",\n"))
}

/// The sample rate the clients actually saw (`main` folds
/// `--trace-sample` into the environment before any client starts).
fn effective_trace_sample() -> u64 {
    std::env::var("FIDES_TRACE_SAMPLE")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// How many of the slowest committed-txn traces `--trace-out` keeps in
/// the exemplar file.
const SLOWEST_TRACES: usize = 5;

/// Writes the run's trace exemplars: the `SLOWEST_TRACES` slowest
/// traces that retained their `client.commit` root to `path` (the file
/// to open in `chrome://tracing`), and every retained span to
/// `path.all`.
fn write_trace_out(path: &str, spans: &[Span]) {
    let trees = assemble(spans);
    let mut commits: Vec<_> = trees
        .iter()
        .filter(|t| t.span("client.commit").is_some())
        .collect();
    commits.sort_by_key(|t| std::cmp::Reverse(t.duration_ns()));
    let slowest: Vec<Span> = commits
        .iter()
        .take(SLOWEST_TRACES)
        .flat_map(|t| t.spans.iter().cloned())
        .collect();
    for t in commits.iter().take(SLOWEST_TRACES) {
        log_info!(
            "bench",
            "  slow trace {:#x}: {:.3} ms across {} spans",
            t.trace_id,
            t.duration_ns() as f64 / 1e6,
            t.spans.len()
        );
    }
    let write = |file: &str, json: String| {
        std::fs::write(file, format!("{json}\n")).unwrap_or_else(|e| {
            log_error!("bench", "cannot write {file}: {e}");
            std::process::exit(1);
        });
    };
    write(path, to_chrome_json(&slowest));
    write(&format!("{path}.all"), to_chrome_json(spans));
    log_info!(
        "bench",
        "wrote {path} ({} slowest of {} traces) and {path}.all ({} spans)",
        commits.len().min(SLOWEST_TRACES),
        commits.len(),
        spans.len()
    );
}

/// A failed child's stderr is its `FIDES_LOG` stream. Replay the raw
/// bytes — not a lossy re-decode through the parent's logger — so the
/// failure is diagnosable from the sweep output alone.
fn replay_child_stderr(what: &str, stderr: &[u8]) {
    use std::io::Write;
    log_error!("bench", "{what} failed; replaying its stderr:");
    let err = std::io::stderr();
    let mut err = err.lock();
    let _ = err.write_all(stderr);
    let _ = err.flush();
}

fn emit_json(args: &Args, r: &RunResult) -> String {
    let reads = r.reads.as_ref().map_or(String::new(), |rr| {
        let hist: Vec<String> = rr
            .staleness
            .iter()
            .map(|(bucket, count)| format!("\"{bucket}\": {count}"))
            .collect();
        format!(
            ",\n  \"read_pct\": {},\n  \"consistency\": \"{}\",\n  \
             \"reads_via_commit\": {},\n  \"reads_completed\": {},\n  \
             \"reads_failed\": {},\n  \"reads_refused\": {},\n  \
             \"read_txns_per_sec\": {:.1},\n  \
             \"read_p50_ms\": {:.3},\n  \"read_verify_us_per_key\": {:.3},\n  \
             \"registry_hits\": {},\n  \"registry_misses\": {},\n  \
             \"staleness_hist\": {{{}}}",
            args.read_pct,
            consistency_str(args.consistency),
            args.reads_via_commit,
            rr.completed,
            rr.failed,
            rr.refused,
            rr.read_txns_per_sec,
            rr.read_p50_ms,
            rr.verify_us_per_key,
            rr.registry_hits,
            rr.registry_misses,
            hist.join(", "),
        )
    });
    let repair = r.repair.as_ref().map_or(String::new(), |rep| {
        format!(
            ",\n  \"kill_restart_s\": {:.3},\n  \"victim\": {},\n  \"repair_ms\": {:.3},\n  \
             \"post_rejoin_txns_per_sec\": {:.1}",
            args.kill_restart.unwrap_or_default().as_secs_f64(),
            rep.victim,
            rep.repair_ms,
            rep.post_rejoin_txns_per_sec,
        )
    });
    let fsync = r.metrics.histogram("durability.fsync_ns");
    let batch_blocks = r.metrics.histogram("durability.batch_blocks");
    let queue_peak = r
        .metrics
        .gauges
        .get("durability.queue_depth")
        .map_or(0, |g| g.max);
    format!(
        "{{\n  \"label\": \"{}\",\n  \"servers\": {},\n  \"clients\": {},\n  \"batch\": {},\n  \
         \"items_per_shard\": {},\n  \"policy\": \"{}\",\n  \"rotate\": {},\n  \
         \"gather_ms\": {:.3},\n  \"trace_sample\": {},\n  \"trace_spans\": {},\n  \
         \"duration_s\": {:.3},\n  \
         \"committed\": {},\n  \"aborted\": {},\n  \"txns_per_sec\": {:.1},\n  \
         \"p50_ms\": {:.3},\n  \"p95_ms\": {:.3},\n  \"p99_ms\": {:.3},\n  \"blocks\": {},\n  \
         \"rounds\": {},\n  \"round_ms\": {:.3},\n  \"round_timeouts\": {},\n  \
         \"stages\": {},\n  \
         \"fsync_p50_us\": {:.1},\n  \"fsync_p99_us\": {:.1},\n  \
         \"fsync_batch_mean\": {:.2},\n  \"wal_queue_peak\": {}{reads}{repair}\n}}",
        args.label,
        args.servers,
        args.clients,
        args.batch,
        args.items_per_shard,
        args.policy.as_str(),
        args.rotate,
        args.gather.as_secs_f64() * 1e3,
        effective_trace_sample(),
        r.spans.len(),
        r.elapsed.as_secs_f64(),
        r.committed,
        r.aborted,
        r.txns_per_sec,
        r.p50_ms,
        r.p95_ms,
        r.p99_ms,
        r.blocks,
        r.rounds,
        r.round_ms,
        r.metrics.counter("commit.round.timeouts"),
        stages_json(&r.metrics),
        fsync.percentile(50.0) as f64 / 1e3,
        fsync.percentile(99.0) as f64 / 1e3,
        batch_blocks.mean(),
        queue_peak,
    )
}

/// Extracts `"key": <number>` from our own JSON output format — enough
/// of a parser for the CI baseline gate, with no external crates.
fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One worker-count point of the scaling sweep, parsed back out of a
/// child run's JSON.
struct SweepPoint {
    workers: u32,
    txns_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    committed: f64,
}

/// The multicore scaling rig: re-runs this binary once per requested
/// worker count and combines the points with the primitive
/// microbenches into one JSON document (`BENCH_PR6.json` shape).
///
/// A child process per point is mandatory, not a convenience — the
/// process-wide thread pool fixes its width on first use, so a single
/// process cannot measure two widths.
fn run_sweep(args: &Args, worker_counts: &[u32]) {
    let exe = std::env::current_exe().expect("own executable path");
    // Child args: everything we were invoked with, minus the sweep
    // control flags, plus the pinned worker count and --json.
    let mut base: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--sweep-workers" | "--out" | "--workers" | "--check-baseline" | "--trace-out"
            | "--prom-out" => {
                let _ = it.next();
            }
            "--json" | "--trace-sweep" => {}
            _ => base.push(flag),
        }
    }

    // Headline point: one child at the invoked worker configuration
    // (no pinned pool width), whose numbers land at the top level of
    // the document — directly comparable with earlier BENCH_PR*.json
    // single-run files.
    log_info!("bench", "headline run...");
    let headline_out = std::process::Command::new(&exe)
        .args(&base)
        .arg("--json")
        .output()
        .expect("spawn headline child");
    let headline = String::from_utf8_lossy(&headline_out.stdout).into_owned();
    if !headline_out.status.success() {
        replay_child_stderr("headline child", &headline_out.stderr);
        std::process::exit(1);
    }
    let headline_field = |key: &str| {
        json_number(&headline, key).unwrap_or_else(|| {
            log_error!("bench", "headline child emitted no {key}:\n{headline}");
            std::process::exit(1);
        })
    };
    let headline_txns = headline_field("txns_per_sec");
    let headline_committed = headline_field("committed");
    let headline_aborted = headline_field("aborted");
    let headline_p50 = headline_field("p50_ms");
    let headline_p99 = headline_field("p99_ms");
    let headline_fsync_mean = headline_field("fsync_batch_mean");
    log_info!(
        "bench",
        "  headline: {headline_txns:.0} txns/s (p50 {headline_p50:.2} ms, \
         fsync batch x{headline_fsync_mean:.2})"
    );

    log_info!("bench", "primitive microbenches (before/after)...");
    let primitives = fides_bench::primitives::run();
    for p in &primitives {
        log_info!(
            "bench",
            "  {}: {:.0} ns -> {:.0} ns ({:.2}x)",
            p.name,
            p.before_ns,
            p.after_ns,
            p.speedup()
        );
    }

    let mut points: Vec<SweepPoint> = Vec::new();
    for &workers in worker_counts {
        log_info!("bench", "sweep: {workers} worker(s)...");
        let output = std::process::Command::new(&exe)
            .args(&base)
            .args(["--workers", &workers.to_string(), "--json"])
            .output()
            .expect("spawn sweep child");
        let stdout = String::from_utf8_lossy(&output.stdout);
        if !output.status.success() {
            replay_child_stderr(&format!("sweep child ({workers} workers)"), &output.stderr);
            std::process::exit(1);
        }
        let field = |key: &str| {
            json_number(&stdout, key).unwrap_or_else(|| {
                log_error!(
                    "bench",
                    "sweep child ({workers} workers) emitted no {key}:\n{stdout}"
                );
                std::process::exit(1);
            })
        };
        let point = SweepPoint {
            workers,
            txns_per_sec: field("txns_per_sec"),
            p50_ms: field("p50_ms"),
            p99_ms: field("p99_ms"),
            committed: field("committed"),
        };
        log_info!(
            "bench",
            "  {} workers: {:.0} txns/s (p50 {:.2} ms)",
            workers,
            point.txns_per_sec,
            point.p50_ms
        );
        points.push(point);
    }

    let sweep_json: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"workers\": {}, \"txns_per_sec\": {:.1}, \"p50_ms\": {:.3}, \
                 \"p99_ms\": {:.3}, \"committed\": {:.0}}}",
                p.workers, p.txns_per_sec, p.p50_ms, p.p99_ms, p.committed
            )
        })
        .collect();
    let base_rate = points.first().map_or(0.0, |p| p.txns_per_sec);
    let scaling: Vec<String> = points
        .iter()
        .map(|p| format!("{:.2}", p.txns_per_sec / base_rate.max(1e-9)))
        .collect();
    let json = format!(
        "{{\n  \"label\": \"{}\",\n  \"servers\": {},\n  \"clients\": {},\n  \
         \"policy\": \"{}\",\n  \"rotate\": {},\n  \"gather_ms\": {:.3},\n  \
         \"duration_s\": {:.1},\n  \
         \"txns_per_sec\": {:.1},\n  \"committed\": {:.0},\n  \"aborted\": {:.0},\n  \
         \"p50_ms\": {:.3},\n  \"p99_ms\": {:.3},\n  \"fsync_batch_mean\": {:.2},\n  \
         \"sweep\": [\n{}\n  ],\n  \
         \"speedup_vs_1_worker\": [{}],\n  \"primitives\": {}\n}}",
        args.label,
        args.servers,
        args.clients,
        args.policy.as_str(),
        args.rotate,
        args.gather.as_secs_f64() * 1e3,
        args.duration.as_secs_f64(),
        headline_txns,
        headline_committed,
        headline_aborted,
        headline_p50,
        headline_p99,
        headline_fsync_mean,
        sweep_json.join(",\n"),
        scaling.join(", "),
        fides_bench::primitives::to_json(&primitives),
    );
    println!("{json}");
    if let Some(path) = &args.out {
        std::fs::write(path, format!("{json}\n")).unwrap_or_else(|e| {
            log_error!("bench", "cannot write {path}: {e}");
            std::process::exit(1);
        });
        log_info!("bench", "wrote {path}");
    }
}

/// One tracing-cost point of the trace sweep, parsed back out of a
/// child run's JSON.
struct TracePoint {
    sample: u64,
    txns_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    committed: f64,
    spans: f64,
}

/// Watchdog detection latency measured against a real stalled leader.
struct WatchdogResult {
    round_timeout: Duration,
    /// Commit submission → first cohort `Stall` report.
    detect: Duration,
    stall: Stall,
    /// Whether a flight-recorder dump names the stalled height.
    dump_names_height: bool,
}

/// Stalls a 4-server cluster's leader after vote collection
/// (`Behavior::stall_after_votes`) and times how long the cohorts'
/// round-progress watchdogs take to declare the stall. The stall
/// timeout follows the round timeout (the `ClusterConfig` default), so
/// detection within 2× the round timeout is the acceptance bar.
fn measure_watchdog_detection() -> WatchdogResult {
    let round_timeout = Duration::from_millis(100);
    let servers = 4u32;
    let items = 256usize;
    let config = ClusterConfig::new(servers)
        .items_per_shard(items)
        .batch_size(1)
        .protocol(CommitProtocol::TfCommit)
        .flush_interval(Duration::from_millis(5))
        .round_timeout(round_timeout)
        .behavior(
            0,
            Behavior {
                stall_after_votes: true,
                ..Behavior::default()
            },
        );
    let cluster = FidesCluster::start(config);
    let mut client = cluster.client(0);
    let workload = WorkloadConfig::paper_default(servers, items).seed(0xD06);
    let mut generator = WorkloadGenerator::new(workload, FidesCluster::key_name);
    let spec = generator.next_txn();
    let mut txn = client.begin();
    let values = client
        .read_all(&mut txn, &spec.keys)
        .expect("warm-up reads");
    let writes: Vec<(fides_store::Key, fides_store::Value)> = spec
        .keys
        .iter()
        .zip(values)
        .map(|(key, value)| {
            let next = fides_store::Value::from_i64(value.as_i64().unwrap_or(0) + 1);
            (key.clone(), next)
        })
        .collect();
    client.write_all(&mut txn, &writes).expect("writes");
    let t0 = Instant::now();
    // The leader collects every vote for this transaction's round and
    // then goes silent; the outcome never arrives.
    let _abandoned = client.commit_async(txn);
    let deadline = t0 + Duration::from_secs(10);
    let stall = loop {
        let found = (1..servers).find_map(|s| cluster.stall_log(s).stalls().into_iter().next());
        if let Some(stall) = found {
            break stall;
        }
        assert!(
            Instant::now() < deadline,
            "watchdog never fired on the stalled leader"
        );
        std::thread::sleep(Duration::from_millis(1));
    };
    let detect = t0.elapsed();
    let needle = format!("height {}", stall.height);
    let dump_names_height = (1..servers)
        .flat_map(|s| cluster.stall_log(s).dumps())
        .any(|d| d.render().contains(&needle));
    cluster.shutdown();
    WatchdogResult {
        round_timeout,
        detect,
        stall,
        dump_names_height,
    }
}

/// The tracing-cost rig behind `BENCH_PR10.json`: one child run per
/// sampling rate — off, 1/64, 1/1 — so each point's clients read a
/// fresh `FIDES_TRACE_SAMPLE`, plus the stalled-leader watchdog rig
/// for detection latency.
fn run_trace_sweep(args: &Args) {
    let exe = std::env::current_exe().expect("own executable path");
    let mut base: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--trace-sample" | "--out" | "--check-baseline" | "--trace-out" | "--prom-out"
            | "--sweep-workers" => {
                let _ = it.next();
            }
            "--json" | "--trace-sweep" => {}
            _ => base.push(flag),
        }
    }

    let mut points: Vec<TracePoint> = Vec::new();
    for sample in [0u64, 64, 1] {
        let rate = if sample == 0 {
            "off".to_string()
        } else {
            format!("1-in-{sample}")
        };
        log_info!("bench", "trace sweep: sampling {rate}...");
        let output = std::process::Command::new(&exe)
            .args(&base)
            .args(["--trace-sample", &sample.to_string(), "--json"])
            .output()
            .expect("spawn trace-sweep child");
        let stdout = String::from_utf8_lossy(&output.stdout);
        if !output.status.success() {
            replay_child_stderr(&format!("trace-sweep child ({rate})"), &output.stderr);
            std::process::exit(1);
        }
        let field = |key: &str| {
            json_number(&stdout, key).unwrap_or_else(|| {
                log_error!(
                    "bench",
                    "trace-sweep child ({rate}) emitted no {key}:\n{stdout}"
                );
                std::process::exit(1);
            })
        };
        let point = TracePoint {
            sample,
            txns_per_sec: field("txns_per_sec"),
            p50_ms: field("p50_ms"),
            p99_ms: field("p99_ms"),
            committed: field("committed"),
            spans: field("trace_spans"),
        };
        if sample > 0 && point.spans == 0.0 {
            log_error!("bench", "traced run ({rate}) retained no spans");
            std::process::exit(1);
        }
        log_info!(
            "bench",
            "  {rate}: {:.0} txns/s (p50 {:.2} ms, {:.0} spans)",
            point.txns_per_sec,
            point.p50_ms,
            point.spans
        );
        points.push(point);
    }
    let off = points[0].txns_per_sec.max(1e-9);

    log_info!("bench", "watchdog rig: stalling the leader after votes...");
    let wd = measure_watchdog_detection();
    log_info!(
        "bench",
        "  stall declared in {:.1} ms (round timeout {:.0} ms): height {}, leader {}",
        wd.detect.as_secs_f64() * 1e3,
        wd.round_timeout.as_secs_f64() * 1e3,
        wd.stall.height,
        wd.stall.leader
    );

    let curve: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"sample\": {}, \"txns_per_sec\": {:.1}, \"p50_ms\": {:.3}, \
                 \"p99_ms\": {:.3}, \"committed\": {:.0}, \"spans\": {:.0}, \
                 \"vs_off\": {:.3}}}",
                p.sample,
                p.txns_per_sec,
                p.p50_ms,
                p.p99_ms,
                p.committed,
                p.spans,
                p.txns_per_sec / off
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"label\": \"{}\",\n  \"servers\": {},\n  \"clients\": {},\n  \"batch\": {},\n  \
         \"policy\": \"{}\",\n  \"rotate\": {},\n  \"duration_s\": {:.1},\n  \
         \"txns_per_sec\": {:.1},\n  \
         \"trace_overhead\": [\n{}\n  ],\n  \
         \"watchdog\": {{\"round_timeout_ms\": {:.0}, \"detect_ms\": {:.1}, \
         \"detect_vs_timeout\": {:.2}, \"stalled_height\": {}, \"leader\": {}, \
         \"waited_ms\": {}, \"dump_names_height\": {}}}\n}}",
        args.label,
        args.servers,
        args.clients,
        args.batch,
        args.policy.as_str(),
        args.rotate,
        args.duration.as_secs_f64(),
        off,
        curve.join(",\n"),
        wd.round_timeout.as_secs_f64() * 1e3,
        wd.detect.as_secs_f64() * 1e3,
        wd.detect.as_secs_f64() / wd.round_timeout.as_secs_f64().max(1e-9),
        wd.stall.height,
        wd.stall.leader,
        wd.stall.waited_ms,
        wd.dump_names_height,
    );
    println!("{json}");
    if let Some(path) = &args.out {
        std::fs::write(path, format!("{json}\n")).unwrap_or_else(|e| {
            log_error!("bench", "cannot write {path}: {e}");
            std::process::exit(1);
        });
        log_info!("bench", "wrote {path}");
    }
}

fn main() {
    let args = parse_args();
    if args.trace_sweep {
        run_trace_sweep(&args);
        return;
    }
    if let Some(counts) = args.sweep_workers.clone() {
        run_sweep(&args, &counts);
        return;
    }
    if let Some(workers) = args.workers {
        // Must precede the first thread-pool use anywhere in the
        // process; the pool reads this once and fixes its width.
        std::env::set_var("FIDES_POOL_THREADS", workers.to_string());
    }
    if let Some(every) = args.trace_sample {
        // Must precede the first ClientSession construction; each
        // client's sampler reads this once.
        std::env::set_var("FIDES_TRACE_SAMPLE", every.to_string());
    } else if args.trace_out.is_some() && std::env::var_os("FIDES_TRACE_SAMPLE").is_none() {
        // A trace file with no sampled traffic helps nobody.
        std::env::set_var("FIDES_TRACE_SAMPLE", "1");
    }
    let result = run(&args);
    let json = emit_json(&args, &result);
    if let Some(path) = &args.out {
        std::fs::write(path, format!("{json}\n")).unwrap_or_else(|e| {
            log_error!("bench", "cannot write {path}: {e}");
            std::process::exit(1);
        });
        log_info!("bench", "wrote {path}");
    }
    if let Some(path) = &args.trace_out {
        write_trace_out(path, &result.spans);
    }
    if let Some(path) = &args.prom_out {
        std::fs::write(path, result.metrics.to_prometheus()).unwrap_or_else(|e| {
            log_error!("bench", "cannot write {path}: {e}");
            std::process::exit(1);
        });
        log_info!("bench", "wrote {path}");
    }
    if args.json {
        println!("{json}");
    } else {
        println!(
            "servers={} clients={} batch={} policy={}: {} committed ({} aborted) in {:.2}s \
             = {:.0} txns/s, p50 {:.2} ms, p99 {:.2} ms, {} blocks, {} rounds @ {:.2} ms",
            args.servers,
            args.clients,
            args.batch,
            args.policy.as_str(),
            result.committed,
            result.aborted,
            result.elapsed.as_secs_f64(),
            result.txns_per_sec,
            result.p50_ms,
            result.p99_ms,
            result.blocks,
            result.rounds,
            result.round_ms,
        );
        if let Some(reads) = &result.reads {
            println!(
                "reads ({}% of mix, {}, {}): {} completed ({} failed) = {:.0} read txns/s, \
                 p50 {:.2} ms, proof-verify {:.2} µs/key, staleness {:?}",
                args.read_pct,
                consistency_str(args.consistency),
                if args.reads_via_commit {
                    "via commit rounds"
                } else {
                    "verified read plane"
                },
                reads.completed,
                reads.failed,
                reads.read_txns_per_sec,
                reads.read_p50_ms,
                reads.verify_us_per_key,
                reads.staleness,
            );
        }
        if let Some(repair) = &result.repair {
            println!(
                "kill-restart: server {} repaired in {:.1} ms, post-rejoin {:.0} txns/s",
                repair.victim, repair.repair_ms, repair.post_rejoin_txns_per_sec,
            );
        }
    }

    if let Some(path) = &args.check_baseline {
        let baseline = std::fs::read_to_string(path).unwrap_or_else(|e| {
            log_error!("bench", "cannot read baseline {path}: {e}");
            std::process::exit(1);
        });
        let Some(expected) = json_number(&baseline, "txns_per_sec") else {
            log_error!("bench", "baseline {path} has no txns_per_sec field");
            std::process::exit(1);
        };
        // Sanity-check our own emission too: CI fails on malformed JSON.
        let Some(measured) = json_number(&json, "txns_per_sec") else {
            log_error!("bench", "emitted JSON is malformed");
            std::process::exit(1);
        };
        let floor = expected * 0.7;
        if measured < floor {
            log_error!(
                "bench",
                "throughput regression: measured {measured:.1} txns/s is below 70% of the \
                 baseline {expected:.1} txns/s (floor {floor:.1})"
            );
            std::process::exit(1);
        }
        log_info!(
            "bench",
            "baseline check passed: {measured:.1} txns/s >= {floor:.1} (70% of baseline)"
        );
    }
}
