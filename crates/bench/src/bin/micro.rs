//! Ad-hoc microbenchmarks for commit hot-path pieces (dev tool).
use std::time::Instant;

use fides_crypto::schnorr::KeyPair;
use fides_ledger::block::{BlockBuilder, Decision, TxnRecord};
use fides_net::{Envelope, NodeId};
use fides_store::rwset::{ReadEntry, WriteEntry};
use fides_store::{AuthenticatedShard, Key, Timestamp, Value};

fn time(label: &str, iters: u32, mut f: impl FnMut()) {
    let t = Instant::now();
    for _ in 0..iters {
        f();
    }
    println!(
        "{label}: {:.1} us",
        t.elapsed().as_secs_f64() / iters as f64 * 1e6
    );
}

fn main() {
    let kp = KeyPair::from_seed(b"x");
    let pk = kp.public_key();
    let payload = vec![7u8; 256];
    time("envelope sign (256B)", 2000, || {
        let _ = Envelope::sign(&kp, NodeId::new(0), NodeId::new(1), payload.clone());
    });
    let env = Envelope::sign(&kp, NodeId::new(0), NodeId::new(1), payload.clone());
    time("envelope verify (256B)", 2000, || {
        assert!(env.verify(&pk));
    });

    // A block shaped like the driver's rounds: 10 txns x 5 RMW entries.
    let txns: Vec<TxnRecord> = (0..10)
        .map(|i| TxnRecord {
            id: Timestamp::new(100 + i, 0),
            read_set: (0..5)
                .map(|k| ReadEntry {
                    key: Key::new(format!("s000:item-{:06}", i * 5 + k)),
                    value: Value::from_i64(100),
                    rts: Timestamp::ZERO,
                    wts: Timestamp::ZERO,
                })
                .collect(),
            write_set: (0..5)
                .map(|k| WriteEntry {
                    key: Key::new(format!("s000:item-{:06}", i * 5 + k)),
                    new_value: Value::from_i64(101),
                    old_value: Some(Value::from_i64(100)),
                    rts: Timestamp::ZERO,
                    wts: Timestamp::ZERO,
                })
                .collect(),
        })
        .collect();
    let block = BlockBuilder::new(0, fides_crypto::Digest::ZERO)
        .txns(txns.clone())
        .decision(Decision::Commit)
        .build_unsigned();
    time("block clone (10x5)", 2000, || {
        let _ = block.clone();
    });
    time("block signing_bytes", 2000, || {
        let _ = block.signing_bytes();
    });
    time("block hash", 2000, || {
        let _ = block.hash();
    });
    use fides_crypto::encoding::Encodable;
    time("block encode", 2000, || {
        let _ = block.encode();
    });

    let items: Vec<(Key, Value)> = (0..10_000)
        .map(|i| (Key::new(format!("s000:item-{i:06}")), Value::from_i64(100)))
        .collect();
    let mut shard = AuthenticatedShard::new(items);
    let writes: Vec<(Key, Value)> = (0..50)
        .map(|i| {
            (
                Key::new(format!("s000:item-{:06}", i)),
                Value::from_i64(101),
            )
        })
        .collect();
    time("speculative_root (50 writes, 10k shard)", 500, || {
        let _ = shard.speculative_root(&writes);
    });
    time("apply_commit (50 writes)", 500, || {
        shard.apply_commit(Timestamp::new(1, 0), &[], &writes);
    });

    use fides_crypto::cosi::{self, Witness};
    let kps: Vec<KeyPair> = (0..4).map(|i| KeyPair::from_seed(&[i])).collect();
    let pks: Vec<_> = kps.iter().map(|k| k.public_key()).collect();
    let record = block.signing_bytes();
    time("witness commit", 1000, || {
        let _ = Witness::commit(&kp, b"round", &record);
    });
    let witnesses: Vec<Witness> = kps
        .iter()
        .map(|k| Witness::commit(k, b"round", &record))
        .collect();
    let agg = cosi::aggregate_commitments(witnesses.iter().map(|w| w.commitment()));
    let c = cosi::challenge(&agg, &record);
    let sig = cosi::CollectiveSignature::assemble(agg, witnesses.iter().map(|w| w.respond(&c)));
    time("cosi verify (n=4)", 1000, || {
        assert!(sig.verify(&record, &pks));
    });
}
