//! Figure 13: varying the number of transactions per block (5 servers,
//! 10 000 items per shard).
//!
//! Paper claims: per-transaction commit latency drops ≈ 2.6× and
//! throughput rises ≈ 2.5× once 80+ transactions are batched per
//! block.
//!
//! ```text
//! cargo run --release -p fides-bench --bin fig13
//! ```

use fides_bench::{print_header, run_averaged, ExperimentParams};

fn main() {
    print_header(
        "Figure 13: transactions per block (5 servers)",
        "latency drops ~2.6x and throughput rises ~2.5x by batch >= 80",
        "txns/block  throughput(tps)  latency(ms)",
    );
    let mut first: Option<(f64, f64)> = None;
    let mut last: Option<(f64, f64)> = None;
    for batch in [2usize, 20, 40, 60, 80, 100, 120] {
        let mut params = ExperimentParams::paper_base(5);
        params.batch_size = batch;
        let r = run_averaged(&params);
        println!(
            "{batch:>10}  {:>15.1}  {:>11.3}",
            r.throughput_tps, r.commit_latency_ms
        );
        if first.is_none() {
            first = Some((r.throughput_tps, r.commit_latency_ms));
        }
        last = Some((r.throughput_tps, r.commit_latency_ms));
    }
    let (tps0, lat0) = first.expect("ran");
    let (tps1, lat1) = last.expect("ran");
    println!(
        "\nbatch 2 → 120: throughput x{:.1} (paper: ~2.5x), latency x{:.2} (paper: ~1/2.6)",
        tps1 / tps0,
        lat1 / lat0
    );
}
