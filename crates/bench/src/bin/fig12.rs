//! Figure 12: 2PC vs. TFCommit — throughput and commit latency while
//! increasing the number of servers, one transaction per block.
//!
//! Paper claims: TFCommit latency ≈ 1.8× 2PC; 2PC throughput ≈ 2.1×
//! TFCommit; both roughly flat as servers increase.
//!
//! ```text
//! cargo run --release -p fides-bench --bin fig12
//! ```

use fides_bench::{print_header, run_averaged, ExperimentParams};
use fides_core::messages::CommitProtocol;

fn main() {
    print_header(
        "Figure 12: 2PC vs TFCommit (1 txn per block)",
        "TFC latency ~1.8x of 2PC; 2PC throughput ~2.1x of TFC",
        "servers  protocol  throughput(tps)  latency(ms)",
    );
    let mut ratios = Vec::new();
    for n in 3..=7u32 {
        let mut tfc = ExperimentParams::paper_base(n);
        tfc.batch_size = 1;
        let tfc_result = run_averaged(&tfc);
        println!(
            "{n:>7}  {:>8}  {:>15.1}  {:>11.3}",
            "TFC", tfc_result.throughput_tps, tfc_result.commit_latency_ms
        );

        let mut twopc = tfc.clone();
        twopc.protocol = CommitProtocol::TwoPhaseCommit;
        let twopc_result = run_averaged(&twopc);
        println!(
            "{n:>7}  {:>8}  {:>15.1}  {:>11.3}",
            "2PC", twopc_result.throughput_tps, twopc_result.commit_latency_ms
        );
        ratios.push((
            n,
            tfc_result.commit_latency_ms / twopc_result.commit_latency_ms,
            twopc_result.throughput_tps / tfc_result.throughput_tps,
        ));
    }
    println!("\nservers  TFC/2PC latency ratio  2PC/TFC throughput ratio");
    for (n, lat, tps) in &ratios {
        println!("{n:>7}  {lat:>21.2}  {tps:>24.2}");
    }
    let avg_lat: f64 = ratios.iter().map(|r| r.1).sum::<f64>() / ratios.len() as f64;
    let avg_tps: f64 = ratios.iter().map(|r| r.2).sum::<f64>() / ratios.len() as f64;
    println!("\naverage: TFC is {avg_lat:.2}x slower (paper: ~1.8x); 2PC throughput {avg_tps:.2}x higher (paper: ~2.1x)");
}
