//! Figure 15: varying the number of data items per shard (5 servers,
//! 100 txns per block).
//!
//! Paper claims: commit latency +15% and throughput −14% from 1000 to
//! 10 000 items per shard — the log-depth effect of Merkle-tree
//! updates (a 1000-leaf path touches ~10 nodes, a 10 000-leaf path
//! ~14).
//!
//! ```text
//! cargo run --release -p fides-bench --bin fig15
//! ```

use fides_bench::{print_header, run_averaged, ExperimentParams};

fn main() {
    print_header(
        "Figure 15: data items per shard (5 servers, 100 txns/block)",
        "latency +15%, throughput -14%, 1k -> 10k items per shard",
        "items/shard  throughput(tps)  latency(ms)  mht-update(ms/server/block)",
    );
    let mut first: Option<(f64, f64)> = None;
    let mut last: Option<(f64, f64)> = None;
    for thousands in 1..=10usize {
        let items = thousands * 1000;
        let mut params = ExperimentParams::paper_base(5);
        params.batch_size = 100;
        params.items_per_shard = items;
        let r = run_averaged(&params);
        println!(
            "{items:>11}  {:>15.1}  {:>11.3}  {:>27.4}",
            r.throughput_tps, r.commit_latency_ms, r.mht_update_ms
        );
        if first.is_none() {
            first = Some((r.throughput_tps, r.commit_latency_ms));
        }
        last = Some((r.throughput_tps, r.commit_latency_ms));
    }
    let (tps0, lat0) = first.expect("ran");
    let (tps1, lat1) = last.expect("ran");
    println!(
        "\n1k → 10k items: throughput {:+.0}% (paper: -14%), latency {:+.0}% (paper: +15%)",
        (tps1 / tps0 - 1.0) * 100.0,
        (lat1 / lat0 - 1.0) * 100.0
    );
}
